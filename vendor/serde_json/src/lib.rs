//! Offline, vendored stand-in for `serde_json`.
//!
//! Serializes the stand-in `serde` crate's [`Value`] data model to JSON text
//! and parses JSON text back into it. Provides the workspace's used surface:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`Error`], the
//! [`json!`] macro (object/array/expression forms with literal keys), and
//! `Value` with a compact-JSON `Display`.
//!
//! Float formatting uses Rust's shortest-round-trip `Display`, which is
//! what the real crate's `float_roundtrip` feature guarantees.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// Error from JSON encoding or decoding.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Decode a typed value out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(Error::from)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    v.to_value().write_json(&mut out, None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    v.to_value().write_json(&mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

/// Build a [`Value`] with JSON-ish syntax.
///
/// Supported forms (the subset this workspace uses): `json!(null)`,
/// `json!([expr, ...])`, `json!({"key": expr, ...})` with string-literal
/// keys, and `json!(expr)` for any `Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (::std::string::String::from($k), $crate::to_value(&$v)) ),*
        ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( $crate::to_value(&$v) ),* ])
    };
    ($v:expr) => { $crate::to_value(&$v) };
}
