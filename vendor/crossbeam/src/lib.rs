//! Offline, vendored stand-in for `crossbeam`'s scoped threads.
//!
//! Wraps `std::thread::scope` behind crossbeam's `scope(|s| ..)` API. The
//! one semantic difference: when a spawned thread panics, `std`'s scope
//! re-raises the panic in the parent instead of returning `Err`, so callers
//! that `.expect()` the result still abort with the panic payload — which
//! is the behavior the workspace's sweep runner wants.

#![forbid(unsafe_code)]

/// Scope handle passed to the closure given to [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to this scope. The closure receives the scope
    /// handle again (crossbeam convention), enabling nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Create a scope in which threads may borrow from the enclosing stack
/// frame. Blocks until all spawned threads finish.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}
