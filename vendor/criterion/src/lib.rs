//! Offline, vendored stand-in for `criterion`.
//!
//! Implements the API the workspace benches use — `Criterion`,
//! `benchmark_group` with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Each
//! benchmark is warmed up once and then timed over a handful of samples;
//! the mean time per iteration is printed to stderr.
//!
//! When the binary is invoked by `cargo test --benches` (the harness
//! receives `--test`), measurement collapses to a single iteration so test
//! runs stay fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a displayable benchmark label.
pub trait IntoLabel {
    /// Render as the label string.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `iters` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test --benches` the harness is passed `--test`;
        // measure minimally in that mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoLabel, f: F) {
        let label = id.into_label();
        let test_mode = self.test_mode;
        run_one("bench", &label, 10, test_mode, f);
    }
}

/// A group of benchmarks sharing a name and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples (compatibility; we run few anyway).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        f: F,
    ) -> &mut Self {
        let label = id.into_label();
        run_one(
            &self.name,
            &label,
            self.samples,
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Benchmark a closure over a borrowed input under this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = id.into_label();
        run_one(
            &self.name,
            &label,
            self.samples,
            self.criterion.test_mode,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    label: &str,
    samples: usize,
    test_mode: bool,
    mut f: F,
) {
    let samples = if test_mode { 1 } else { samples.clamp(1, 20) };
    let mut total = Duration::ZERO;
    let mut iters_total = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters_total += b.iters;
    }
    let per_iter = if iters_total > 0 {
        total / iters_total as u32
    } else {
        Duration::ZERO
    };
    eprintln!("{group}/{label}: {per_iter:?} per iter ({samples} samples)");
}

/// Declare a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Harness flags (`--bench`, `--test`, filters) are accepted and
            // ignored; `Criterion::default` inspects them as needed.
            $( $group(); )+
        }
    };
}
