//! Offline, vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! stand-in `serde` crate's `Value` data model — without `syn`/`quote`
//! (unavailable in this offline build environment). The token stream is
//! parsed by hand; generated impls are emitted as source strings and
//! re-parsed into a `TokenStream`.
//!
//! Supported shapes (everything this workspace derives):
//! * structs with named fields, tuple/newtype structs, unit structs;
//! * enums with unit, tuple, and struct variants.
//!
//! Not supported (and not needed here): generic parameters and
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Input {
    name: String,
    is_enum: bool,
    /// For structs: one entry. For enums: one entry per variant.
    items: Vec<(String, Shape)>,
}

/// Split a token list on top-level commas, tracking angle-bracket depth so
/// commas inside `HashMap<u64, String>` don't split.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Drop leading `#[...]` attribute pairs and `pub` / `pub(...)` visibility.
fn strip_prefix(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &tokens[i..],
        }
    }
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level(group_tokens)
        .iter()
        .filter_map(|chunk| {
            let chunk = strip_prefix(chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_tuple_arity(group_tokens: &[TokenTree]) -> usize {
    split_top_level(group_tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .count()
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Find the `struct` / `enum` keyword at top level (attributes and doc
    // comments keep their payload inside bracket groups, so a plain scan
    // that skips `#[...]` pairs is safe).
    let is_enum = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct/enum found in derive input"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported ({name})");
        }
    }

    if is_enum {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde_derive: expected enum body for {name}, got {other:?}"),
        };
        let body_tokens: Vec<TokenTree> = body.into_iter().collect();
        let mut variants = Vec::new();
        for chunk in split_top_level(&body_tokens) {
            let chunk = strip_prefix(&chunk);
            if chunk.is_empty() {
                continue;
            }
            let vname = match &chunk[0] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected variant name in {name}, got {other:?}"),
            };
            let shape = match chunk.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Shape::Tuple(parse_tuple_arity(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Shape::Named(parse_named_fields(&inner))
                }
                _ => Shape::Unit,
            };
            variants.push((vname, shape));
        }
        Input {
            name,
            is_enum: true,
            items: variants,
        }
    } else {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Tuple(parse_tuple_arity(&inner))
            }
            _ => Shape::Unit,
        };
        let name_clone = name.clone();
        Input {
            name,
            is_enum: false,
            items: vec![(name_clone, shape)],
        }
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut code = String::new();
    code.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n"
    ));
    if input.is_enum {
        code.push_str("        match self {\n");
        for (vname, shape) in &input.items {
            match shape {
                Shape::Unit => code.push_str(&format!(
                    "            {name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                )),
                Shape::Tuple(1) => code.push_str(&format!(
                    "            {name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__f0))]),\n"
                )),
                Shape::Tuple(n) => {
                    let pats: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                    let vals: Vec<String> = pats
                        .iter()
                        .map(|p| format!("::serde::Serialize::to_value({p})"))
                        .collect();
                    code.push_str(&format!(
                        "            {name}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Seq(::std::vec![{}]))]),\n",
                        pats.join(", "),
                        vals.join(", ")
                    ));
                }
                Shape::Named(fields) => {
                    let pats = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    code.push_str(&format!(
                        "            {name}::{vname} {{ {pats} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Map(::std::vec![{}]))]),\n",
                        entries.join(", ")
                    ));
                }
            }
        }
        code.push_str("        }\n");
    } else {
        match &input.items[0].1 {
            Shape::Unit => code.push_str("        ::serde::Value::Null\n"),
            Shape::Tuple(1) => {
                code.push_str("        ::serde::Serialize::to_value(&self.0)\n");
            }
            Shape::Tuple(n) => {
                let vals: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                code.push_str(&format!(
                    "        ::serde::Value::Seq(::std::vec![{}])\n",
                    vals.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                code.push_str(&format!(
                    "        ::serde::Value::Map(::std::vec![{}])\n",
                    entries.join(", ")
                ));
            }
        }
    }
    code.push_str("    }\n}\n");
    code
}

fn gen_named_de(name_path: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::__field(__m, \"{f}\"))?"))
        .collect();
    format!(
        "{{ let __m = {src}.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for {name_path}\"))?; ::std::result::Result::Ok({name_path} {{ {} }}) }}",
        inits.join(", ")
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut code = String::new();
    code.push_str(&format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
    ));
    if input.is_enum {
        // Unit variants arrive as strings.
        code.push_str("        if let ::std::option::Option::Some(__s) = __v.as_str() {\n");
        code.push_str("            return match __s {\n");
        for (vname, shape) in &input.items {
            if matches!(shape, Shape::Unit) {
                code.push_str(&format!(
                    "                \"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
        }
        code.push_str(&format!(
            "                __other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n"
        ));
        code.push_str("            };\n        }\n");
        // Data variants arrive as single-entry maps.
        code.push_str(&format!(
            "        let __m = __v.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected string or map for enum {name}\"))?;\n"
        ));
        code.push_str(&format!(
            "        let (__k, __inner) = __m.first().ok_or_else(|| ::serde::DeError::custom(\"empty map for enum {name}\"))?;\n"
        ));
        code.push_str("        match __k.as_str() {\n");
        for (vname, shape) in &input.items {
            match shape {
                Shape::Unit => {}
                Shape::Tuple(1) => code.push_str(&format!(
                    "            \"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
                )),
                Shape::Tuple(n) => {
                    let gets: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                        .collect();
                    code.push_str(&format!(
                        "            \"{vname}\" => {{ let __s = __inner.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for {name}::{vname}\"))?; if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}::{vname}\")); }} ::std::result::Result::Ok({name}::{vname}({})) }},\n",
                        gets.join(", ")
                    ));
                }
                Shape::Named(fields) => {
                    let body = gen_named_de(&format!("{name}::{vname}"), fields, "__inner");
                    code.push_str(&format!("            \"{vname}\" => {body},\n"));
                }
            }
        }
        code.push_str(&format!(
            "            __other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n"
        ));
        code.push_str("        }\n");
    } else {
        match &input.items[0].1 {
            Shape::Unit => {
                code.push_str(&format!("        ::std::result::Result::Ok({name})\n"));
            }
            Shape::Tuple(1) => {
                code.push_str(&format!(
                    "        ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n"
                ));
            }
            Shape::Tuple(n) => {
                let gets: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                    .collect();
                code.push_str(&format!(
                    "        let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for {name}\"))?;\n        if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}\")); }}\n        ::std::result::Result::Ok({name}({}))\n",
                    gets.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let body = gen_named_de(name, fields, "__v");
                code.push_str(&format!("        {body}\n"));
            }
        }
    }
    code.push_str("    }\n}\n");
    code
}

/// Derive `serde::Serialize` (vendored subset — see crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` (vendored subset — see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
