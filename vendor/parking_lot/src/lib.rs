//! Offline, vendored stand-in for `parking_lot`.
//!
//! Thin non-poisoning wrappers over `std::sync` primitives, exposing the
//! `parking_lot` API shape the workspace uses (`Mutex::lock` returning the
//! guard directly, `into_inner` returning the value directly).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
