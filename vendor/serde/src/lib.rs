//! Offline, vendored stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access and an
//! empty cargo registry, so the real `serde` cannot be fetched. This crate
//! provides the subset of the serde surface the workspace actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` for structs (named / tuple / unit)
//!   and enums (unit / tuple / struct variants), via the companion
//!   `serde_derive` proc-macro crate;
//! * `Serialize` / `Deserialize` traits defined over an owned [`Value`]
//!   tree (the same data model `serde_json` exposes), with impls for the
//!   std types the workspace serializes (integers, floats, bool, strings,
//!   `Option`, `Vec`, slices, arrays, tuples, `BTreeMap`, `HashMap`).
//!
//! The JSON conventions match upstream serde_json: unit variants become
//! strings, newtype variants `{ "Name": value }`, struct variants
//! `{ "Name": { .. } }`, newtype structs are transparent, and map keys are
//! stringified.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing data tree — the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    Int(i64),
    /// Unsigned integer (non-negative numbers).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key/value map (keys are strings, as in JSON).
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrow as a map of entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Coerce to `u64` if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Coerce to `i64` if this is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Coerce to `f64` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            _ => None,
        }
    }

    /// Borrow as a bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Look a key up in a map value (`None` for non-maps / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Write this value as JSON text. `pretty = Some(indent)` pretty-prints;
    /// `None` writes compact JSON. (Lives here so `Display` can use it; the
    /// `serde_json` facade delegates to it too.)
    pub fn write_json(&self, out: &mut String, pretty: Option<usize>, depth: usize) {
        fn escape(out: &mut String, s: &str) {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        fn nl(out: &mut String, indent: usize, depth: usize) {
            out.push('\n');
            for _ in 0..indent * depth {
                out.push(' ');
            }
        }
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // Keep floats recognizable as floats on re-parse.
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; match serde_json's Value behavior.
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape(out, s),
            Value::Seq(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(ind) = pretty {
                        nl(out, ind, depth + 1);
                    }
                    item.write_json(out, pretty, depth + 1);
                }
                if let Some(ind) = pretty {
                    nl(out, ind, depth);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(ind) = pretty {
                        nl(out, ind, depth + 1);
                    }
                    escape(out, k);
                    out.push(':');
                    if pretty.is_some() {
                        out.push(' ');
                    }
                    val.write_json(out, pretty, depth + 1);
                }
                if let Some(ind) = pretty {
                    nl(out, ind, depth);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering, matching `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        f.write_str(&out)
    }
}

/// Error produced when a [`Value`] cannot be decoded into the target type.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Error for a field that is absent from a struct map.
    pub fn missing(ty: &str, field: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}` for `{ty}`"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be decoded from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Decode an instance from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a struct field in a map, yielding `Null` when absent (so
/// `Option` fields decode as `None`). Used by derive-generated code.
#[doc(hidden)]
pub fn __field<'a>(map: &'a [(String, Value)], key: &str) -> &'a Value {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Render a map key [`Value`] as the string JSON requires.
#[doc(hidden)]
pub fn __key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(f) => f.to_string(),
        other => panic!("map key does not serialize to a string: {other:?}"),
    }
}

fn key_from_str<K: Deserialize>(k: &str) -> Result<K, DeError> {
    let as_str = Value::Str(k.to_owned());
    K::from_value(&as_str).or_else(|e| {
        if let Ok(n) = k.parse::<u64>() {
            K::from_value(&Value::UInt(n))
        } else if let Ok(n) = k.parse::<i64>() {
            K::from_value(&Value::Int(n))
        } else if let Ok(n) = k.parse::<f64>() {
            K::from_value(&Value::Float(n))
        } else {
            Err(e)
        }
    })
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (__key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (__key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(format!(
                        "expected unsigned integer, got {v:?}"
                    )))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(format!(
                        "expected integer, got {v:?}"
                    )))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {v:?}")))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom(format!("expected char, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(())
        } else {
            Err(DeError::custom(format!("expected null, got {v:?}")))
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v
                    .as_seq()
                    .ok_or_else(|| DeError::custom(format!("expected tuple, got {v:?}")))?;
                if s.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {}, got {}", $len, s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((key_from_str::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((key_from_str::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
