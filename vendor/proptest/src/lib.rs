//! Offline, vendored stand-in for `proptest`.
//!
//! Provides the subset of the proptest surface this workspace uses:
//! the [`Strategy`] trait with `prop_map`, range strategies for the
//! primitive numeric types, [`Just`], `proptest::bool::{ANY, weighted}`,
//! `proptest::collection::vec`, tuple strategies, `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike upstream there is no shrinking: failing cases panic with the
//! case number and the deterministic per-test seed, which is enough to
//! reproduce (generation is seeded from the test name, so a failure
//! replays exactly under `cargo test`).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from the test name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Runner configuration; `cases` is the number of generated inputs per test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo + off) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Uniform choice among boxed alternatives — built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Box a strategy for use in a [`Union`] (helper for `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Boolean strategies (`proptest::bool::ANY`, `proptest::bool::weighted`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding each boolean with probability 1/2.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy yielding `true` with probability `p`.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    /// `true` with probability `p`, `false` otherwise.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.p
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Convert into `(min, max_exclusive)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// Generate vectors whose length falls in `size` and whose elements
    /// come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![ $( $crate::boxed($s) ),+ ])
    };
}

/// Assert a condition inside a property body (fails the current case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}: {}", stringify!($cond), ::std::format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a property body (fails the current case).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{:?}` != `{:?}`: {}",
                            __l, __r, ::std::format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Assert inequality inside a property body (fails the current case).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
                    ));
                }
            }
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(__e) = __run() {
                    ::std::panic!("proptest case {}/{} failed: {}", __case + 1, __cfg.cases, __e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}
