#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test =="
cargo test --workspace -q

echo "== perf baseline (smoke) =="
# The tracked perf baseline must keep producing well-formed BENCH files.
# Smoke mode shrinks the workloads to seconds; the JSON is validated with
# the same parser the tooling uses.
cargo build --release -q -p bench --bin perfbase
target/release/perfbase --smoke --out-dir target/bench-smoke
for f in target/bench-smoke/BENCH_sim.json target/bench-smoke/BENCH_train.json; do
    [ -s "$f" ] || { echo "missing bench output: $f" >&2; exit 1; }
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$f" \
        || { echo "malformed bench output: $f" >&2; exit 1; }
done

echo "CI green."
