#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test =="
cargo test --workspace -q

echo "== scenario corpus (parse + validate + builtin pin) =="
# Every committed scenarios/*.toml must parse, validate, and stay in sync
# with the built-in corpus the named repro targets resolve to.
cargo build --release -q -p bench --bin repro
target/release/repro validate-scenarios scenarios

echo "== perf baseline (smoke) =="
# The tracked perf baseline must keep producing well-formed BENCH files.
# Smoke mode shrinks the workloads to seconds; the JSON is validated with
# the same parser the tooling uses.
cargo build --release -q -p bench --bin perfbase
target/release/perfbase --smoke --out-dir target/bench-smoke
for f in target/bench-smoke/BENCH_sim.json target/bench-smoke/BENCH_train.json \
         target/bench-smoke/BENCH_infer.json; do
    [ -s "$f" ] || { echo "missing bench output: $f" >&2; exit 1; }
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$f" \
        || { echo "malformed bench output: $f" >&2; exit 1; }
done
# The inference baseline must carry the digest fields the A/B comparison
# and the bit-identity pins key on, plus all three timing sections.
python3 - target/bench-smoke/BENCH_infer.json <<'EOF' \
    || { echo "BENCH_infer.json schema check failed" >&2; exit 1; }
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("mode", "rows", "reps", "scalar", "batched", "cached",
            "predictions_digest", "planner"):
    assert key in d, f"missing key: {key}"
for section in ("scalar", "batched", "cached"):
    assert "predictions_per_sec" in d[section], f"missing {section} rate"
assert "speedup_over_scalar" in d["batched"], "missing batched speedup"
assert "hit_rate" in d["cached"], "missing cache hit rate"
assert "planner_digest" in d["planner"], "missing planner digest"
int(d["predictions_digest"], 16)
int(d["planner"]["planner_digest"], 16)
EOF

echo "CI green."
