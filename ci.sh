#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test =="
cargo test --workspace -q

echo "== scenario corpus (parse + validate + builtin pin) =="
# Every committed scenarios/*.toml must parse, validate, and stay in sync
# with the built-in corpus the named repro targets resolve to.
cargo build --release -q -p bench --bin repro
target/release/repro validate-scenarios scenarios

echo "== perf baseline (smoke) =="
# The tracked perf baseline must keep producing well-formed BENCH files.
# Smoke mode shrinks the workloads to seconds; the JSON is validated with
# the same parser the tooling uses.
cargo build --release -q -p bench --bin perfbase
target/release/perfbase --smoke --out-dir target/bench-smoke
for f in target/bench-smoke/BENCH_sim.json target/bench-smoke/BENCH_train.json \
         target/bench-smoke/BENCH_infer.json target/bench-smoke/BENCH_planner.json; do
    [ -s "$f" ] || { echo "missing bench output: $f" >&2; exit 1; }
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$f" \
        || { echo "malformed bench output: $f" >&2; exit 1; }
done
# The inference baseline must carry the digest fields the A/B comparison
# and the bit-identity pins key on, plus all three timing sections.
python3 - target/bench-smoke/BENCH_infer.json <<'EOF' \
    || { echo "BENCH_infer.json schema check failed" >&2; exit 1; }
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("mode", "rows", "reps", "scalar", "batched", "cached",
            "predictions_digest", "planner"):
    assert key in d, f"missing key: {key}"
for section in ("scalar", "batched", "cached"):
    assert "predictions_per_sec" in d[section], f"missing {section} rate"
assert "speedup_over_scalar" in d["batched"], "missing batched speedup"
assert "hit_rate" in d["cached"], "missing cache hit rate"
assert "planner_digest" in d["planner"], "missing planner digest"
int(d["predictions_digest"], 16)
int(d["planner"]["planner_digest"], 16)
EOF
# The simulation baseline must carry its digest plus the interleaved
# min-of-N obs-overhead measurement, with a ratio inside the sane band
# perfbase itself asserts (re-checked here against the written file).
python3 - target/bench-smoke/BENCH_sim.json <<'EOF' \
    || { echo "BENCH_sim.json schema check failed" >&2; exit 1; }
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("mode", "threads", "sweep", "single_run", "obs_overhead",
            "sharded", "peak_rss_kb"):
    assert key in d, f"missing key: {key}"
for key in ("points", "n_messages", "wall_s", "msgs_per_sec", "results_digest"):
    assert key in d["sweep"], f"missing sweep key: {key}"
for key in ("n_messages", "wall_s", "msgs_per_sec"):
    assert key in d["single_run"], f"missing single_run key: {key}"
for key in ("reps", "untraced_wall_s", "noop_wall_s", "noop_over_untraced"):
    assert key in d["obs_overhead"], f"missing obs_overhead key: {key}"
int(d["sweep"]["results_digest"], 16)
assert d["obs_overhead"]["reps"] >= 3, "obs overhead needs min-of-N reps"
ratio = d["obs_overhead"]["noop_over_untraced"]
assert 0.75 <= ratio <= 2.5, f"obs overhead ratio {ratio} outside sane band"
# The sharded fleet-engine block: one row per measured thread count, plus
# the digest that pins all thread counts to one bit-identical outcome. The
# fleet engine is flow-level, so its rows carry flow_msgs_per_sec (NOT
# comparable to the per-message sweep/single_run rates) alongside the
# honest events_per_sec work rate.
for key in ("producers", "duration_s", "reps", "host_cores",
            "produced_flow_msgs", "events_fired", "rows", "results_digest",
            "speedup_4_over_1"):
    assert key in d["sharded"], f"missing sharded key: {key}"
int(d["sharded"]["results_digest"], 16)
rows = d["sharded"]["rows"]
assert [r["threads"] for r in rows] == [1, 2, 4, 8], "sharded thread grid"
for r in rows:
    assert r["wall_s"] > 0, "degenerate sharded row"
    assert r["flow_msgs_per_sec"] > 0 and r["events_per_sec"] > 0, \
        "degenerate sharded rates"
    assert "msgs_per_sec" not in r, "ambiguous sharded rate field resurfaced"
# The carried-forward baselines block, and a throughput floor on the
# single-run path: the refactored hot path must stay comfortably above the
# PR 8 baseline. The floor is 0.5x rather than the 2x stretch target
# because smoke mode times a 2k-message run on a shared 1-core CI host
# (single-shot, cold caches) — interleaved full-mode A/B numbers live in
# EXPERIMENTS.md; this assert exists to catch order-of-magnitude
# regressions, not to re-measure the speedup.
for key in ("pr8_single_run_msgs_per_sec", "pr8_sweep_msgs_per_sec"):
    assert key in d["baselines"], f"missing baselines key: {key}"
floor = 0.5 * d["baselines"]["pr8_single_run_msgs_per_sec"]
rate = d["single_run"]["msgs_per_sec"]
assert rate >= floor, (
    f"single-run throughput {rate:.0f} msgs/s fell below the regression "
    f"floor {floor:.0f} (0.5x the PR 8 baseline)")
EOF
# Memory regression band: warn (not fail — RSS depends on allocator and
# host) when the smoke run's peak RSS exceeds 1.5x the tracked full-mode
# baseline. Smoke workloads are strictly smaller than full ones, so a smoke
# RSS above the tracked full-mode peak means the arena/pool reuse regressed.
python3 - target/bench-smoke/BENCH_sim.json BENCH_sim.json <<'EOF'
import json, sys
smoke = json.load(open(sys.argv[1]))["peak_rss_kb"]
tracked = json.load(open(sys.argv[2]))["peak_rss_kb"]
if tracked and smoke > 1.5 * tracked:
    print(f"WARNING: smoke peak RSS {smoke} kB exceeds 1.5x the tracked "
          f"baseline {tracked} kB — check for per-message allocations",
          file=sys.stderr)
EOF
# The training baseline must carry the weights digest that pins training
# speedups to bit-identical results.
python3 - target/bench-smoke/BENCH_train.json <<'EOF' \
    || { echo "BENCH_train.json schema check failed" >&2; exit 1; }
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("mode", "samples", "epochs", "wall_s", "epochs_per_sec",
            "final_mse", "weights_digest", "peak_rss_kb"):
    assert key in d, f"missing key: {key}"
int(d["weights_digest"], 16)
assert d["epochs_per_sec"] > 0, "non-positive training rate"
EOF
# The control-plane baseline must carry all three policy blocks. The
# online block has to prove the refit path was actually timed (refits >= 1
# and a matching model generation); the bandit block has to report its arm
# count; every block pins its chosen-config digest so policy decisions
# stay bit-identical run to run.
python3 - target/bench-smoke/BENCH_planner.json <<'EOF' \
    || { echo "BENCH_planner.json schema check failed" >&2; exit 1; }
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("mode", "windows", "reps", "frozen", "online", "bandit",
            "peak_rss_kb"):
    assert key in d, f"missing key: {key}"
for section in ("frozen", "online", "bandit"):
    for key in ("decides", "wall_s", "decides_per_sec", "configs_digest"):
        assert key in d[section], f"missing {section} key: {key}"
    int(d[section]["configs_digest"], 16)
    assert d[section]["decides_per_sec"] > 0, f"non-positive {section} rate"
assert d["online"]["refits"] >= 1, "online policy never exercised a refit"
assert d["online"]["generation"] == d["online"]["refits"], \
    "model generation must track refit count"
assert d["bandit"]["arms"] > 0, "bandit reported an empty arm set"
EOF

echo "== sharded determinism gate (smoke, 1 vs 4 threads) =="
# Two full smoke baselines at different worker-thread counts must agree on
# every results digest: the sweep digest (run_sweep fans points out over a
# pool) and the sharded fleet digest (the sharded engine's bit-identity
# contract). A mismatch means thread count leaked into simulation results.
target/release/perfbase --smoke --threads 1 --out-dir target/bench-smoke-t1
target/release/perfbase --smoke --threads 4 --out-dir target/bench-smoke-t4
python3 - target/bench-smoke-t1/BENCH_sim.json target/bench-smoke-t4/BENCH_sim.json <<'EOF' \
    || { echo "thread-count determinism gate failed" >&2; exit 1; }
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a["sweep"]["results_digest"] == b["sweep"]["results_digest"], (
    f"sweep digest differs across thread counts: "
    f"{a['sweep']['results_digest']} vs {b['sweep']['results_digest']}")
assert a["sharded"]["results_digest"] == b["sharded"]["results_digest"], (
    f"sharded digest differs across thread counts: "
    f"{a['sharded']['results_digest']} vs {b['sharded']['results_digest']}")
EOF
# The control-plane policies decide on a single thread, so their chosen
# configurations must not move with the worker pool either.
python3 - target/bench-smoke-t1/BENCH_planner.json target/bench-smoke-t4/BENCH_planner.json <<'EOF' \
    || { echo "policy digest determinism gate failed" >&2; exit 1; }
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
for section in ("frozen", "online", "bandit"):
    assert a[section]["configs_digest"] == b[section]["configs_digest"], (
        f"{section} policy digest differs across thread counts: "
        f"{a[section]['configs_digest']} vs {b[section]['configs_digest']}")
EOF

echo "== span profiler (smoke) =="
# The profiled smoke run must keep emitting a loadable Chrome trace:
# valid JSON, balanced and well-nested B/E events, monotone timestamps.
target/release/repro profile --quick --out target/profile-smoke
python3 - target/profile-smoke/trace.json <<'EOF' \
    || { echo "Chrome trace validation failed" >&2; exit 1; }
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace is not a non-empty array"
depth, last_ts = 0, 0.0
for e in events:
    assert e["ph"] in ("B", "E"), f"unexpected phase {e['ph']}"
    assert e["ts"] >= last_ts, "timestamps must be non-decreasing"
    last_ts = e["ts"]
    depth += 1 if e["ph"] == "B" else -1
    assert depth >= 0, "E without matching B"
assert depth == 0, "unbalanced B/E events"
EOF
[ -s target/profile-smoke/profile.folded ] \
    || { echo "missing folded stacks" >&2; exit 1; }
[ -s target/profile-smoke/windows.csv ] \
    || { echo "missing windowed KPIs" >&2; exit 1; }

echo "CI green."
