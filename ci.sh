#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test =="
cargo test --workspace -q

echo "CI green."
