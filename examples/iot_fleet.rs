//! IoT fleet over a flaky wireless uplink.
//!
//! The paper's motivating scenario: sensor data crossing wireless links
//! where "network packet loss is very common for mobile and IoT devices".
//! This example sweeps the wireless conditions a fleet gateway might see
//! and shows, per condition, how much reliability the right configuration
//! buys compared to the naive one — the essence of the paper's Fig. 7
//! lesson ("batching can be effective").
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example iot_fleet
//! ```

use desim::SimDuration;
use kafkasim::config::DeliverySemantics;
use testbed::experiment::ExperimentPoint;
use testbed::sweep::run_sweep;
use testbed::Calibration;

fn main() {
    let cal = Calibration::paper();
    // Wireless uplink states, from a healthy link to a badly fading one.
    let conditions = [
        ("healthy        (D=20ms,  L=0%)", 20u64, 0.00),
        ("urban noise    (D=60ms,  L=5%)", 60, 0.05),
        ("fading         (D=100ms, L=13%)", 100, 0.13),
        ("deep fade      (D=150ms, L=25%)", 150, 0.25),
    ];

    // The naive configuration: fire-and-forget, unbatched.
    let naive = |d: u64, l: f64| ExperimentPoint {
        message_size: 120, // compact sensor readings
        timeliness: Some(SimDuration::from_secs(5)),
        delay: SimDuration::from_millis(d),
        loss_rate: l,
        semantics: DeliverySemantics::AtMostOnce,
        batch_size: 1,
        poll_interval: SimDuration::from_millis(80),
        message_timeout: SimDuration::from_millis(2_000),
        ..ExperimentPoint::default()
    };
    // The tuned configuration the paper's lessons suggest for lossy links:
    // at-least-once with a moderate batch.
    let tuned = |d: u64, l: f64| ExperimentPoint {
        semantics: DeliverySemantics::AtLeastOnce,
        batch_size: 4,
        ..naive(d, l)
    };

    let mut points = Vec::new();
    for &(_, d, l) in &conditions {
        points.push(naive(d, l));
        points.push(tuned(d, l));
    }
    println!("simulating {} fleet uplink scenarios...\n", points.len());
    let results = run_sweep(&points, &cal, 4_000, 2_024, 4);

    println!(
        "{:<34} {:>14} {:>14} {:>10}",
        "uplink state", "naive P_l", "tuned P_l", "saved"
    );
    for (i, &(label, _, _)) in conditions.iter().enumerate() {
        let naive_r = &results[2 * i];
        let tuned_r = &results[2 * i + 1];
        let saved = (naive_r.p_loss - tuned_r.p_loss).max(0.0) * naive_r.report.n_source as f64;
        println!(
            "{:<34} {:>13.2}% {:>13.2}% {:>7.0} msgs",
            label,
            naive_r.p_loss * 100.0,
            tuned_r.p_loss * 100.0,
            saved
        );
    }

    println!(
        "\nper the paper's takeaway: when the message size cannot change, \
         batching before sending significantly reduces the loss rate."
    );

    // Show the retry cost: duplicates under the tuned configuration.
    let worst = &results[results.len() - 1];
    println!(
        "cost on the worst link: P_d = {:.2}% duplicated messages (idempotent \
         consumers absorb these).",
        worst.p_dup * 100.0
    );
}
