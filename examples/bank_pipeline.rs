//! Banking pipeline: when duplicates are as scary as losses.
//!
//! The paper's introduction singles out banking: "all messages in the
//! stream should be processed exactly once without any exception" — a
//! duplicated bank transfer is processed twice (the paper's Case 5
//! failure). This example dissects the Table I case distribution of an
//! at-least-once pipeline under degrading networks, and shows how the
//! KPI weights of a loss-and-duplicate-averse application change the
//! recommended configuration.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bank_pipeline
//! ```

use desim::SimDuration;
use kafka_predict::kpi::KpiModel;
use kafka_predict::prelude::*;
use kafka_predict::recommend::{Recommender, SearchSpace};
use kafkasim::config::DeliverySemantics;
use kafkasim::state::DeliveryCase;
use testbed::experiment::ExperimentPoint;
use testbed::scenarios::KpiWeights;
use testbed::sweep::run_sweep;

fn main() {
    let cal = Calibration::paper();

    // A transfer record is a few hundred bytes; the bank tolerates latency
    // but not losses or duplicates.
    let point = |l: f64, timeout_ms: u64| ExperimentPoint {
        message_size: 350,
        timeliness: None,
        delay: SimDuration::from_millis(80),
        loss_rate: l,
        semantics: DeliverySemantics::AtLeastOnce,
        batch_size: 2,
        poll_interval: SimDuration::from_millis(100),
        message_timeout: SimDuration::from_millis(timeout_ms),
        ..ExperimentPoint::default()
    };

    let losses = [0.0, 0.10, 0.20, 0.30];
    let points: Vec<ExperimentPoint> = losses.iter().map(|&l| point(l, 3_000)).collect();
    println!("running the transfer pipeline across network states...\n");
    let results = run_sweep(&points, &cal, 5_000, 7, 4);

    println!(
        "{:>6} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "L", "P_l", "P_d", "Case1", "Case2", "Case3", "Case4", "Case5"
    );
    for r in &results {
        let c = |case: DeliveryCase| r.report.case_count(case);
        println!(
            "{:>5.0}% {:>8.2}% {:>8.2}% | {:>8} {:>8} {:>8} {:>8} {:>8}",
            r.point.loss_rate * 100.0,
            r.p_loss * 100.0,
            r.p_dup * 100.0,
            c(DeliveryCase::Case1),
            c(DeliveryCase::Case2),
            c(DeliveryCase::Case3),
            c(DeliveryCase::Case4),
            c(DeliveryCase::Case5),
        );
    }
    println!(
        "\nCase 4 = saved by retries; Case 5 = the duplicated transfers a \
         non-idempotent core bank must reconcile."
    );

    // A duplicate-averse KPI changes what "best" means: compare the
    // default weights with banking weights on the same lossy network.
    let predictor = trained_predictor(&cal);
    let kpi = KpiModel::from_calibration(&cal);
    let start = Features {
        message_size: 350,
        delay_ms: 80.0,
        loss_rate: 0.20,
        semantics: DeliverySemantics::AtLeastOnce,
        batch_size: 1,
        poll_interval_ms: 100.0,
        message_timeout_ms: 3_000.0,
        ..Features::default()
    };
    let bank_weights = KpiWeights::new(0.05, 0.10, 0.50, 0.35).expect("sums to 1");
    let default_weights = KpiWeights::paper_default();
    for (name, weights) in [("default", default_weights), ("banking", bank_weights)] {
        let recommender = Recommender::new(&kpi, &predictor, SearchSpace::default());
        let rec = recommender.recommend(&start, &weights, 0.92);
        println!(
            "{name:>8} weights -> {} B={} T_o={:.0}ms (gamma {:.3}, met: {})",
            rec.features.semantics,
            rec.features.batch_size,
            rec.features.message_timeout_ms,
            rec.gamma,
            rec.meets_requirement
        );
    }
}

/// Train a compact model on the quick grid so the recommendation is
/// driven by learned predictions, as in the paper.
fn trained_predictor(cal: &Calibration) -> ReliabilityModel {
    println!("\ntraining the reliability model for the recommender...");
    let results = quick_grid(cal, 1_500, 4);
    let trained = train_model(&results, &TrainOptions::fast(), 11).expect("enough data");
    println!("  held-out MAE (worst head): {:.4}\n", trained.worst_mae());
    trained.model
}
