//! Quickstart: measure, learn, predict, recommend.
//!
//! Walks the full pipeline of the reproduction in about a minute:
//!
//! 1. run a handful of testbed experiments (simulated Kafka + network),
//! 2. train a compact reliability model on the results,
//! 3. predict `P_l`/`P_d` for an unseen configuration,
//! 4. ask the stepwise recommender for a configuration that meets a KPI
//!    requirement under a lossy network.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kafka_predict::kpi::KpiModel;
use kafka_predict::prelude::*;
use kafka_predict::recommend::{Recommender, SearchSpace};
use kafkasim::config::DeliverySemantics;
use testbed::scenarios::KpiWeights;

fn main() {
    // 1. Collect training data: a small grid of simulated experiments.
    //    (The paper runs 10⁶ messages per point; 2 000 keeps this example
    //    fast while preserving the trends.)
    let cal = Calibration::paper();
    println!("running the experiment grid...");
    let results = quick_grid(&cal, 2_000, 4);
    println!("  {} experiments done", results.len());
    for r in results.iter().step_by(9) {
        println!(
            "  M={:>4}B L={:>4.0}% B={} {:<14} -> P_l={:>6.2}%  P_d={:>5.2}%",
            r.point.message_size,
            r.point.loss_rate * 100.0,
            r.point.batch_size,
            r.point.semantics.to_string(),
            r.p_loss * 100.0,
            r.p_dup * 100.0,
        );
    }

    // 2. Train the two-headed ANN (compact topology for speed).
    println!("\ntraining the reliability model...");
    let options = TrainOptions::fast();
    let trained = train_model(&results, &options, 7).expect("enough samples");
    println!(
        "  at-most-once head MAE:  {:.4}\n  at-least-once head MAE: {:.4}",
        trained.amo.test_mae, trained.alo.test_mae
    );

    // 3. Predict reliability for an unseen configuration.
    let features = Features {
        message_size: 300,
        loss_rate: 0.15,
        delay_ms: 60.0,
        semantics: DeliverySemantics::AtLeastOnce,
        batch_size: 3,
        poll_interval_ms: 60.0,
        message_timeout_ms: 2_000.0,
        ..Features::default()
    };
    let prediction = trained.model.predict(&features);
    println!(
        "\npredicted for M=300B, L=15%, B=3, at-least-once:\n  P_l = {:.2}%  P_d = {:.2}%",
        prediction.p_loss * 100.0,
        prediction.p_dup * 100.0
    );

    // 4. Recommend a configuration meeting a KPI requirement (Eq. 2).
    let kpi = KpiModel::from_calibration(&cal);
    let recommender = Recommender::new(&kpi, &trained.model, SearchSpace::default());
    let weights = KpiWeights::paper_default();
    let start = Features {
        loss_rate: 0.15,
        delay_ms: 100.0,
        semantics: DeliverySemantics::AtMostOnce,
        batch_size: 1,
        ..features
    };
    let rec = recommender.recommend(&start, &weights, 0.85);
    println!(
        "\nrecommended configuration (gamma = {:.3}, requirement met: {}):",
        rec.gamma, rec.meets_requirement
    );
    println!(
        "  semantics = {}, B = {}, delta = {:.0} ms, T_o = {:.0} ms ({} steps)",
        rec.features.semantics,
        rec.features.batch_size,
        rec.features.poll_interval_ms,
        rec.features.message_timeout_ms,
        rec.steps
    );
}
