//! Game telemetry over an unstable network, with dynamic configuration.
//!
//! The paper's hardest Table II workload: "any individual message in
//! online games is small … however, the game traffic message needs to be
//! delivered accurately in real-time". This example replays a Fig. 9-style
//! unstable network (Pareto delay + Gilbert–Elliott loss) against the game
//! workload twice — once with Kafka's static default configuration and
//! once with the paper's dynamic configuration driven by the prediction
//! model — and reports the overall rates of Eq. 3 plus staleness.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example game_telemetry
//! ```

use desim::{SimDuration, SimRng};
use kafka_predict::prelude::*;
use netsim::trace::{generate_trace, TraceConfig};
use testbed::dynamic::{default_static_config, run_scenario, StaticPlanner};
use testbed::scenarios::ApplicationScenario;

fn main() {
    let cal = Calibration::paper();
    let scenario = ApplicationScenario::game_traffic();

    // A 5-minute unstable network (Fig. 9 generator).
    let trace_cfg = TraceConfig {
        duration: SimDuration::from_secs(300),
        interval: SimDuration::from_secs(10),
        ..TraceConfig::default()
    };
    let trace =
        generate_trace(&trace_cfg, &mut SimRng::seed_from_u64(9)).expect("valid trace config");
    println!(
        "network trace: mean loss {:.1}%, {:.0}% of time in the bad state",
        trace.mean_loss() * 100.0,
        trace.bad_fraction() * 100.0
    );

    // Train the predictor that drives the planner.
    println!("training the reliability model...");
    let results = quick_grid(&cal, 1_500, 4);
    let trained = train_model(&results, &TrainOptions::fast(), 5).expect("enough data");
    println!("  held-out MAE (worst head): {:.4}", trained.worst_mae());

    let n_messages = 4_500; // ≈ mean rate × duration
    let interval = SimDuration::from_secs(30);

    println!("\nreplaying the trace with the static default configuration...");
    let default = run_scenario(
        &scenario,
        &trace.timeline,
        &StaticPlanner(default_static_config(&cal)),
        &cal,
        n_messages,
        interval,
        77,
    );

    println!("replaying the trace with dynamic configuration...");
    let planner = ModelPlanner::new(&trained.model, &cal, SearchSpace::default());
    let dynamic = run_scenario(
        &scenario,
        &trace.timeline,
        &planner,
        &cal,
        n_messages,
        interval,
        77,
    );

    println!("\n{:<28} {:>10} {:>10}", "", "default", "dynamic");
    for (label, d, y) in [
        ("overall loss rate R_l", default.r_loss, dynamic.r_loss),
        ("overall duplicate rate R_d", default.r_dup, dynamic.r_dup),
        (
            "stale deliveries (> S)",
            default.stale_fraction,
            dynamic.stale_fraction,
        ),
    ] {
        println!("{label:<28} {:>9.2}% {:>9.2}%", d * 100.0, y * 100.0);
    }
    println!(
        "{:<28} {:>10} {:>10}",
        "config switches", default.config_switches, dynamic.config_switches
    );
    println!(
        "\nKPI weights for game traffic: ω = ({}, {}, {}, {})",
        scenario.weights.bandwidth,
        scenario.weights.service_rate,
        scenario.weights.no_loss,
        scenario.weights.no_duplicate
    );
}
