//! Integration of the §V dynamic-configuration pipeline: trace generation,
//! planning, mid-run reconfiguration, and Table II-style comparison.

use desim::{SimDuration, SimRng};
use kafka_predict::planner::ModelPlanner;
use kafka_predict::prelude::*;
use kafka_predict::recommend::SearchSpace;
use netsim::trace::{generate_trace, TraceConfig};
use netsim::ConditionTimeline;
use testbed::dynamic::{build_schedule, default_static_config, run_scenario, StaticPlanner};
use testbed::scenarios::ApplicationScenario;

fn test_trace(seed: u64, secs: u64) -> ConditionTimeline {
    generate_trace(
        &TraceConfig {
            duration: SimDuration::from_secs(secs),
            interval: SimDuration::from_secs(10),
            ..TraceConfig::default()
        },
        &mut SimRng::seed_from_u64(seed),
    )
    .expect("valid")
    .timeline
}

#[test]
fn model_planner_beats_or_matches_the_default_on_loss() {
    let cal = Calibration::paper();
    // The synthetic predictor has the right monotone structure; it stands
    // in for a fully-trained ANN to keep the test fast and robust.
    let predictor = kafka_predict::model::FnPredictor(|f: &Features| {
        let base = (f.loss_rate * 3.0 / (1.0 + 0.7 * (f.batch_size as f64 - 1.0))).min(1.0);
        kafka_predict::model::Prediction {
            p_loss: match f.semantics {
                kafkasim::config::DeliverySemantics::AtMostOnce => base,
                kafkasim::config::DeliverySemantics::AtLeastOnce => base * 0.4,
                kafkasim::config::DeliverySemantics::All => base * 0.35,
            },
            p_dup: 0.0,
        }
    });
    let scenario = ApplicationScenario::web_access_records();
    let trace = test_trace(11, 180);
    let n = 1_500;
    let interval = SimDuration::from_secs(30);
    let default = run_scenario(
        &scenario,
        &trace,
        &StaticPlanner(default_static_config(&cal)),
        &cal,
        n,
        interval,
        3,
    );
    let planner = ModelPlanner::new(&predictor, &cal, SearchSpace::default());
    let dynamic = run_scenario(&scenario, &trace, &planner, &cal, n, interval, 3);
    assert!(
        dynamic.r_loss <= default.r_loss + 0.01,
        "dynamic {} vs default {}",
        dynamic.r_loss,
        default.r_loss
    );
    // Both runs account for every message.
    for report in [&default.report, &dynamic.report] {
        assert_eq!(
            report.delivered_once + report.lost + report.duplicated,
            report.n_source
        );
    }
}

#[test]
fn schedules_respond_to_the_trace() {
    let cal = Calibration::paper();
    let predictor =
        kafka_predict::model::FnPredictor(|f: &Features| kafka_predict::model::Prediction {
            p_loss: (f.loss_rate * 4.0 / f.batch_size as f64).min(1.0),
            p_dup: 0.0,
        });
    let planner = ModelPlanner::new(&predictor, &cal, SearchSpace::default());
    let scenario = ApplicationScenario::social_media();
    let trace = test_trace(13, 240);
    let schedule = build_schedule(
        &planner,
        &scenario,
        &trace,
        SimDuration::from_secs(20),
        trace.last_change(),
    );
    assert!(
        !schedule.is_empty(),
        "a plan must exist for the initial condition"
    );
    // Every scheduled configuration is valid and schedule times ascend.
    for window in schedule.windows(2) {
        assert!(window[0].0 < window[1].0);
    }
    for (_, cfg) in &schedule {
        cfg.validate().expect("planned configs validate");
    }
}

#[test]
fn all_three_table2_scenarios_run() {
    let cal = Calibration::paper();
    let trace = test_trace(17, 120);
    for scenario in ApplicationScenario::table2() {
        let report = run_scenario(
            &scenario,
            &trace,
            &StaticPlanner(default_static_config(&cal)),
            &cal,
            600,
            SimDuration::from_secs(60),
            5,
        );
        assert_eq!(report.scenario, scenario.name);
        assert!((0.0..=1.0).contains(&report.r_loss));
        assert!((0.0..=1.0).contains(&report.r_dup));
        assert!((0.0..=1.0).contains(&report.stale_fraction));
    }
}

#[test]
fn trained_model_drives_the_planner_end_to_end() {
    // The full paper pipeline at miniature scale: simulate → train →
    // plan → replay. Only smoke-level assertions; the full-scale result
    // is recorded in EXPERIMENTS.md.
    let cal = Calibration::paper();
    let results = quick_grid(&cal, 800, 4);
    let trained = train_model(&results, &TrainOptions::fast(), 21).expect("train");
    let planner = ModelPlanner::new(&trained.model, &cal, SearchSpace::default());
    let scenario = ApplicationScenario::game_traffic();
    let trace = test_trace(19, 120);
    let report = run_scenario(
        &scenario,
        &trace,
        &planner,
        &cal,
        1_000,
        SimDuration::from_secs(30),
        7,
    );
    let r = &report.report;
    assert_eq!(r.delivered_once + r.lost + r.duplicated, r.n_source);
}

#[test]
fn online_controller_matches_offline_planner_on_a_trace() {
    // EXT-3 end-to-end: the online controller never sees the network, only
    // the producer's own statistics, yet must land in the same ballpark as
    // the §V offline planner that is told the condition.
    use kafka_predict::online::OnlineModelController;
    use kafkasim::runtime::OnlineSpec;
    use std::sync::Arc;
    use testbed::dynamic::run_scenario_online;

    let cal = Calibration::paper();
    let predictor = kafka_predict::model::FnPredictor(|f: &Features| {
        let base = (f.loss_rate * 3.0 / (1.0 + 0.7 * (f.batch_size as f64 - 1.0))).min(1.0);
        kafka_predict::model::Prediction {
            p_loss: match f.semantics {
                kafkasim::config::DeliverySemantics::AtMostOnce => base,
                kafkasim::config::DeliverySemantics::AtLeastOnce => base * 0.4,
                kafkasim::config::DeliverySemantics::All => base * 0.35,
            },
            p_dup: 0.0,
        }
    });
    let scenario = ApplicationScenario::web_access_records();
    let trace = test_trace(23, 180);
    let n = 4_000;

    let default = run_scenario(
        &scenario,
        &trace,
        &StaticPlanner(default_static_config(&cal)),
        &cal,
        n,
        SimDuration::from_secs(60),
        5,
    );
    let controller = OnlineModelController::new(
        predictor,
        &cal,
        SearchSpace::default(),
        scenario.weights,
        scenario.gamma_requirement,
        scenario.mean_size(),
        scenario.timeliness.as_secs_f64() * 1e3,
    );
    let online = run_scenario_online(
        &scenario,
        &trace,
        default_static_config(&cal),
        OnlineSpec {
            interval: SimDuration::from_secs(20),
            controller: Arc::new(controller),
        },
        &cal,
        n,
        5,
    );
    assert!(
        online.r_loss < default.r_loss,
        "feedback control must beat the static default: {} vs {}",
        online.r_loss,
        default.r_loss
    );
    let r = &online.report;
    assert_eq!(r.delivered_once + r.lost + r.duplicated, r.n_source);
    assert!(
        online.config_switches >= 1,
        "the controller must have acted"
    );
}
