//! Property-based pins for the batched inference and planner paths: the
//! fast paths introduced for the Eq. 2 hot loop must be *bit-identical*
//! to the scalar implementations they replaced, for arbitrary
//! configurations, networks, and model seeds.

use annet::{Dataset, IncrementalTrainer, TrainConfig};
use desim::{SimDuration, SimRng};
use kafka_predict::kpi::KpiModel;
use kafka_predict::model::Topology;
use kafka_predict::online::{CachedPredictor, PredictionCache};
use kafka_predict::recommend::{Recommender, SearchSpace};
use kafka_predict::{Features, Predictor, ReliabilityModel};
use kafkasim::config::DeliverySemantics;
use proptest::prelude::*;
use testbed::experiment::ExperimentPoint;
use testbed::scenarios::KpiWeights;
use testbed::Calibration;

fn arb_semantics() -> impl Strategy<Value = DeliverySemantics> {
    prop_oneof![
        Just(DeliverySemantics::AtMostOnce),
        Just(DeliverySemantics::AtLeastOnce),
        Just(DeliverySemantics::All),
    ]
}

fn arb_features() -> impl Strategy<Value = Features> {
    (
        50u64..1_000, // message size
        0u64..200,    // delay ms
        0u32..40,     // loss percent
        arb_semantics(),
        1usize..10,    // batch
        0u64..120,     // poll ms
        300u64..4_000, // timeout ms
    )
        .prop_map(|(m, d, l, semantics, b, poll, t_o)| {
            Features::from(&ExperimentPoint {
                message_size: m,
                timeliness: None,
                delay: SimDuration::from_millis(d),
                loss_rate: f64::from(l) / 100.0,
                semantics,
                batch_size: b,
                poll_interval: SimDuration::from_millis(poll),
                message_timeout: SimDuration::from_millis(t_o),
                ..ExperimentPoint::default()
            })
        })
}

fn model(seed: u64) -> ReliabilityModel {
    let mut rng = SimRng::seed_from_u64(seed);
    ReliabilityModel::new(Topology::Paper, &mut rng)
}

/// A deliberately coarse space so the exhaustive grid stays small enough
/// for property testing (4 × 4 × 3 × 3 = 144 candidates per case).
fn coarse_space() -> SearchSpace {
    SearchSpace {
        batch: (1, 10),
        batch_step: 3,
        timeout_ms: (200.0, 5_000.0),
        timeout_step_ms: 1_600.0,
        poll_ms: (0.0, 200.0),
        poll_step_ms: 100.0,
        allow_semantics_switch: true,
        max_steps: 64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// `predict_batch` is bit-identical to calling `predict` per row —
    /// the contract every batched consumer (planner, grid scan, cache)
    /// relies on.
    #[test]
    fn predict_batch_matches_scalar_bitwise(
        feats in proptest::collection::vec(arb_features(), 1..40),
        seed in 0u64..500,
    ) {
        let model = model(seed);
        let batched = model.predict_batch(&feats);
        prop_assert_eq!(batched.len(), feats.len());
        for (i, (f, b)) in feats.iter().zip(&batched).enumerate() {
            let s = model.predict(f);
            prop_assert_eq!(s.p_loss.to_bits(), b.p_loss.to_bits(), "row {} p_loss", i);
            prop_assert_eq!(s.p_dup.to_bits(), b.p_dup.to_bits(), "row {} p_dup", i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The batched stepwise search selects the same configuration, γ (bit
    /// for bit), and step count as the scalar greedy search it replaced.
    #[test]
    fn batched_greedy_matches_scalar_reference(
        start in arb_features(),
        seed in 0u64..500,
        requirement in 0.0f64..1.2,
    ) {
        let model = model(seed);
        let kpi = KpiModel::from_calibration(&Calibration::paper());
        let rec = Recommender::new(&kpi, &model, SearchSpace::default());
        let weights = KpiWeights::paper_default();
        let fast = rec.recommend(&start, &weights, requirement);
        let reference = rec.recommend_reference(&start, &weights, requirement);
        prop_assert_eq!(fast.gamma.to_bits(), reference.gamma.to_bits());
        prop_assert_eq!(fast.features, reference.features);
        prop_assert_eq!(fast.meets_requirement, reference.meets_requirement);
        prop_assert_eq!(fast.steps, reference.steps);
    }

    /// The memo cache's generation-bump contract, exercised through the
    /// planner: a search over a warm [`PredictionCache`] is bit-identical
    /// to the uncached search both before AND after a refit mutates the
    /// model and bumps the generation. Were the bump not to evict, the
    /// post-refit cached plan would keep serving the pre-refit model's
    /// predictions and diverge from the uncached reference.
    #[test]
    fn cached_planner_is_bit_identical_across_a_generation_bump(
        start in arb_features(),
        seed in 0u64..500,
        requirement in 0.0f64..1.2,
        p_loss_obs in 0.0f64..0.5,
        p_dup_obs in 0.0f64..0.5,
        refit_steps in 1usize..12,
    ) {
        let mut model = model(seed);
        let kpi = KpiModel::from_calibration(&Calibration::paper());
        let weights = KpiWeights::paper_default();
        let space = coarse_space();
        let cache = PredictionCache::new(4096);

        let assert_cached_matches_uncached = |model: &ReliabilityModel, label: &str| {
            let reference =
                Recommender::new(&kpi, model, space.clone()).recommend(&start, &weights, requirement);
            // Twice: a cold pass that fills the cache, then a warm pass
            // served from it.
            for pass in ["cold", "warm"] {
                let cached = CachedPredictor::new(model, &cache);
                let got = Recommender::new(&kpi, &cached, space.clone())
                    .recommend(&start, &weights, requirement);
                prop_assert_eq!(
                    got.gamma.to_bits(),
                    reference.gamma.to_bits(),
                    "{} {} pass γ",
                    label,
                    pass
                );
                prop_assert_eq!(&got.features, &reference.features, "{} {} pass", label, pass);
            }
            Ok(())
        };

        assert_cached_matches_uncached(&model, "pre-refit")?;

        // Refit exactly as `OnlineAdaptivePolicy::refit` drives it:
        // deterministic incremental-SGD steps on the head the start
        // configuration uses, then a generation bump.
        let outputs = match start.semantics {
            DeliverySemantics::AtMostOnce => vec![p_loss_obs],
            DeliverySemantics::AtLeastOnce | DeliverySemantics::All => {
                vec![p_loss_obs, p_dup_obs]
            }
        };
        let data = Dataset::from_rows(
            vec![start.scaled_head_vector(); 8],
            vec![outputs; 8],
        )
        .expect("aligned refit rows");
        let train = TrainConfig {
            epochs: 1,
            learning_rate: 0.3,
            batch_size: 8,
            shuffle: false,
            momentum: 0.0,
        };
        let chunk: Vec<usize> = (0..data.len()).collect();
        let head = model.head_mut(start.semantics);
        let mut trainer = IncrementalTrainer::new(head);
        for _ in 0..refit_steps {
            trainer.step(head, &data, &chunk, &train);
        }
        cache.bump_generation();

        assert_cached_matches_uncached(&model, "post-refit")?;
    }

    /// The sharded exhaustive grid scan returns the same answer for any
    /// worker count, and matches the scalar sequential scan bit for bit.
    #[test]
    fn grid_scan_is_thread_invariant(
        start in arb_features(),
        seed in 0u64..500,
        requirement in 0.0f64..1.2,
    ) {
        let model = model(seed);
        let kpi = KpiModel::from_calibration(&Calibration::paper());
        let rec = Recommender::new(&kpi, &model, coarse_space());
        let weights = KpiWeights::paper_default();
        let reference = rec.recommend_grid_reference(&start, &weights, requirement);
        for threads in [1usize, 2, 8] {
            let got = rec.recommend_grid(&start, &weights, requirement, threads);
            prop_assert_eq!(got.gamma.to_bits(), reference.gamma.to_bits(), "threads {}", threads);
            prop_assert_eq!(got.features, reference.features, "threads {}", threads);
            prop_assert_eq!(got.meets_requirement, reference.meets_requirement);
            prop_assert_eq!(got.steps, reference.steps);
        }
    }
}
