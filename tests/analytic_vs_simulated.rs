//! Cross-validation between the analytic queueing model (`perfmodel`,
//! standing in for the paper's ref. [6]) and the discrete-event simulator:
//! in the regimes where the M/M/1 abstraction is valid, the two independent
//! implementations must agree.

use desim::SimDuration;
use kafkasim::config::DeliverySemantics;
use perfmodel::{MM1Queue, ServiceModel};
use testbed::experiment::ExperimentPoint;
use testbed::Calibration;

/// The analytic service model mirrors the simulator's host constants.
fn service_model(cal: &Calibration) -> ServiceModel {
    ServiceModel {
        per_request_s: cal.host.cpu_per_request.as_secs_f64(),
        per_message_s: cal.host.cpu_per_message.as_secs_f64(),
        per_byte_s: cal.host.cpu_per_byte_ns * 1e-9,
    }
}

fn point(m: u64, poll_ms: u64, timeout_ms: u64) -> ExperimentPoint {
    ExperimentPoint {
        message_size: m,
        timeliness: None,
        delay: SimDuration::from_millis(1),
        loss_rate: 0.0,
        semantics: DeliverySemantics::AtLeastOnce,
        batch_size: 1,
        poll_interval: SimDuration::from_millis(poll_ms),
        message_timeout: SimDuration::from_millis(timeout_ms),
        ..ExperimentPoint::default()
    }
}

#[test]
fn analytic_service_rate_matches_simulated_throughput_under_overload() {
    // Under sustained overload the simulator's delivery throughput should
    // approach the analytic μ: the CPU never idles.
    let cal = Calibration::paper();
    let m = 100u64;
    let mu = service_model(&cal).service_rate(m, 1);
    let p = point(m, 0, 1_000); // full load, δ = 0
    let result = p.run(&cal, 6_000, 3);
    let simulated = result.report.throughput();
    let ratio = simulated / mu;
    assert!(
        (0.85..1.15).contains(&ratio),
        "simulated throughput {simulated:.1}/s should track analytic μ {mu:.1}/s (ratio {ratio:.2})"
    );
}

#[test]
fn overload_loss_floor_matches_one_minus_rho_inverse() {
    // P_l at δ=0 ≈ 1 − μ/λ (the Fig. 6 floor), with λ the I/O-bound rate.
    let cal = Calibration::paper();
    let m = 100u64;
    let lambda = 1.0 / cal.host.fetch_time(m).as_secs_f64();
    let mu = service_model(&cal).service_rate(m, 1);
    let analytic_floor = 1.0 - mu / lambda;
    let result = point(m, 0, 500).run(&cal, 6_000, 4);
    assert!(
        (result.p_loss - analytic_floor).abs() < 0.12,
        "simulated floor {:.3} vs analytic {:.3}",
        result.p_loss,
        analytic_floor
    );
}

#[test]
fn mm1_tail_bounds_the_simulated_expiry_loss() {
    // Near saturation, simulated expiry loss must sit in the same ballpark
    // as the M/M/1 sojourn tail P(W > T_o). The simulator's arrivals are
    // deterministic (D/M/1), whose tail is *thinner* than M/M/1, so the
    // analytic value upper-bounds the measurement (with slack for the
    // finite run).
    let cal = Calibration::paper();
    let m = 620u64;
    let lambda = 1.0 / cal.host.fetch_time(m).as_secs_f64();
    let mu = service_model(&cal).service_rate(m, 1);
    let queue = MM1Queue::new(lambda, mu).expect("positive rates");
    assert!(queue.is_stable(), "the fig5 operating point must be stable");
    for timeout_ms in [400u64, 1_000] {
        let analytic = queue.sojourn_exceeds(timeout_ms as f64 / 1e3);
        let measured = point(m, 0, timeout_ms).run(&cal, 6_000, 5).p_loss;
        assert!(
            measured <= analytic + 0.05,
            "T_o={timeout_ms}ms: measured {measured:.3} should not exceed M/M/1 tail {analytic:.3}"
        );
    }
    // And the tail ordering is respected: longer T_o, less loss.
    let short = point(m, 0, 300).run(&cal, 6_000, 6).p_loss;
    let long = point(m, 0, 2_000).run(&cal, 6_000, 6).p_loss;
    assert!(long < short);
}

#[test]
fn latency_tracks_mm1_sojourn_in_the_stable_regime() {
    // At moderate utilisation, mean delivery latency ≈ analytic mean
    // sojourn (plus small network/broker constants).
    let cal = Calibration::paper();
    let m = 200u64;
    let poll_ms = 70u64;
    let lambda = 1.0 / (poll_ms as f64 / 1e3).max(cal.host.fetch_time(m).as_secs_f64());
    let mu = service_model(&cal).service_rate(m, 1);
    let queue = MM1Queue::new(lambda, mu).expect("positive rates");
    assert!(queue.is_stable());
    let analytic_sojourn = queue.mean_sojourn();
    let result = point(m, poll_ms, 5_000).run(&cal, 5_000, 7);
    let measured = result.report.latency.mean_s;
    assert!(
        measured > 0.5 * analytic_sojourn && measured < 2.0 * analytic_sojourn,
        "measured mean latency {measured:.3}s vs analytic sojourn {analytic_sojourn:.3}s"
    );
}

#[test]
fn batching_speedup_agrees_between_model_and_simulator() {
    // The analytic amortisation μ(B)/μ(1) should predict the simulator's
    // overload-throughput gain from batching.
    let cal = Calibration::paper();
    let m = 100u64;
    let svc = service_model(&cal);
    let analytic_gain = svc.service_rate(m, 8) / svc.service_rate(m, 1);
    let run = |b: usize| {
        let mut p = point(m, 0, 2_000);
        p.batch_size = b;
        p.run(&cal, 6_000, 8).report.throughput()
    };
    let simulated_gain = run(8) / run(1);
    assert!(
        (simulated_gain / analytic_gain - 1.0).abs() < 0.30,
        "batching gain: simulated {simulated_gain:.2}x vs analytic {analytic_gain:.2}x"
    );
}
