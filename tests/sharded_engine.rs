//! Sharded-engine pins: the parallel fleet engine and the threaded
//! protocol-run read-back must be bit-identical at every thread count —
//! on the committed fleet scenario, on arbitrary fleet configs, and on
//! broker-fault protocol runs — and shard-tagged trace streams must merge
//! into one well-nested stream.

use desim::{SimDuration, SimTime};
use kafkasim::broker::BrokerId;
use kafkasim::config::{DeliverySemantics, ProducerConfig};
use kafkasim::fleet::{
    Assignor, ChurnAction, ChurnEvent, FleetConfig, FleetRun, PartitionStrategy, Population,
    PopulationEntry,
};
use kafkasim::runtime::{BrokerFault, KafkaRun, RunSpec};
use kafkasim::source::SourceSpec;
use obs::{merge_shard_streams, well_nested, RingBufferSink, TraceEvent};
use proptest::prelude::*;
use spec::{ExperimentSpec, Spec};
use testbed::scenarios::ApplicationScenario;

/// Builds the committed `scenarios/fleet.toml` experiment as one
/// [`FleetConfig`] per partitioning strategy, exactly as the `repro`
/// executor does.
fn builtin_fleet_configs() -> Vec<FleetConfig> {
    let doc = Spec::builtin("fleet").expect("fleet is a built-in scenario");
    doc.validate().expect("built-in corpus is valid");
    let ExperimentSpec::Fleet(spec) = doc.experiment else {
        panic!("fleet resolves to a fleet experiment");
    };
    let entries: Vec<PopulationEntry> = spec
        .population
        .iter()
        .map(|e| PopulationEntry {
            class: ApplicationScenario::by_slug(&e.class)
                .expect("Table II slug")
                .stream_class(e.rate_hz),
            weight: e.weight,
        })
        .collect();
    spec.partitioners
        .iter()
        .map(|&strategy| FleetConfig {
            producers: spec.producers,
            partitions: spec.partitions,
            strategy,
            population: Population::new(entries.clone()).expect("valid mix"),
            initial_consumers: spec.consumers,
            assignor: spec.assignor,
            churn: spec
                .churn
                .iter()
                .map(|c| ChurnEvent {
                    at: SimTime::ZERO + SimDuration::from_secs(c.at_s),
                    action: c.action,
                    member: c.member,
                })
                .collect(),
            duration: SimDuration::from_secs(spec.duration_s),
            window: SimDuration::from_millis(spec.window_ms),
            partition_capacity_hz: spec.partition_capacity_hz,
            base_loss: spec.base_loss,
            rebalance_pause: SimDuration::from_millis(spec.rebalance_pause_ms),
        })
        .collect()
}

/// The committed fleet scenario is bit-identical at 1/2/4/8 worker
/// threads for every partitioning strategy it sweeps, and the static
/// strategies additionally reproduce the sequential engine exactly.
#[test]
fn builtin_fleet_is_bit_identical_at_any_thread_count() {
    for cfg in builtin_fleet_configs() {
        let baseline = FleetRun::new(cfg.clone(), 42).execute_sharded(1);
        for threads in [2, 4, 8] {
            let run = FleetRun::new(cfg.clone(), 42).execute_sharded(threads);
            assert_eq!(
                run, baseline,
                "{:?} diverged at {threads} threads",
                cfg.strategy
            );
        }
        if !matches!(cfg.strategy, PartitionStrategy::RoundRobin) {
            let sequential = FleetRun::new(cfg.clone(), 42).execute();
            assert_eq!(
                baseline, sequential,
                "{:?} sharded run must equal the sequential engine",
                cfg.strategy
            );
        }
        assert!(baseline.totals.produced > 0, "the fleet produced traffic");
    }
}

/// The sharded run's consumer-group trace stream is byte-identical to the
/// sequential engine's, at any thread count.
#[test]
fn builtin_fleet_sharded_trace_matches_sequential() {
    let cfg = builtin_fleet_configs().remove(0);
    let (_, mut sink) =
        FleetRun::new(cfg.clone(), 42).execute_traced(Box::new(RingBufferSink::new(8192)));
    let sequential: Vec<TraceEvent> = sink.drain();
    for threads in [1, 4] {
        let (_, sharded) = FleetRun::new(cfg.clone(), 42).execute_sharded_traced(threads);
        assert_eq!(sharded, sequential, "trace diverged at {threads} threads");
    }
}

/// Splitting a time-ordered trace stream into per-shard streams and
/// merging them back must preserve the event population and satisfy the
/// well-nestedness invariant, for any shard count.
#[test]
fn merged_trace_streams_are_well_nested() {
    let cfg = builtin_fleet_configs().remove(0);
    let (_, events) = FleetRun::new(cfg, 42).execute_sharded_traced(4);
    assert!(!events.is_empty(), "the fleet scenario traces group events");
    for n_shards in [1usize, 2, 3, 5] {
        // Deal events round-robin onto shards: each per-shard stream is a
        // subsequence of a time-ordered stream, hence itself time-ordered
        // — exactly the contract shard-local emission provides.
        let mut streams: Vec<Vec<TraceEvent>> = vec![Vec::new(); n_shards];
        for (i, e) in events.iter().enumerate() {
            streams[i % n_shards].push(e.clone());
        }
        let merged = merge_shard_streams(streams);
        assert_eq!(merged.len(), events.len(), "merge drops nothing");
        well_nested(&merged).unwrap_or_else(|e| panic!("{n_shards} shards: {e}"));
        // Same event population, re-sorted: compare as multisets.
        let mut got: Vec<String> = merged
            .iter()
            .map(|e| serde_json::to_string(&e.event).expect("serializable event"))
            .collect();
        let mut want: Vec<String> = events
            .iter()
            .map(|e| serde_json::to_string(e).expect("serializable event"))
            .collect();
        got.sort();
        want.sort();
        assert_eq!(got, want, "{n_shards} shards permuted the event set");
    }
}

/// A protocol run with a mid-run broker crash, replicated topic and
/// at-least-once producer.
fn crash_run() -> RunSpec {
    let mut run = RunSpec {
        source: SourceSpec::fixed_rate(2_000, 200, 400.0),
        ..RunSpec::default()
    };
    run.cluster.replication.factor = 3;
    run.producer = ProducerConfig::builder()
        .semantics(DeliverySemantics::AtLeastOnce)
        .message_timeout(SimDuration::from_millis(2_000))
        .build()
        .expect("valid producer config");
    run.faults.push(BrokerFault::crash(
        BrokerId(0),
        SimTime::from_secs(2),
        SimDuration::from_millis(3_000),
    ));
    run.failover_after = Some(SimDuration::from_millis(500));
    run
}

/// A protocol run with a flapping broker under acks=all.
fn flapping_run() -> RunSpec {
    let mut run = RunSpec {
        source: SourceSpec::fixed_rate(2_000, 100, 400.0),
        ..RunSpec::default()
    };
    run.cluster.replication.factor = 3;
    run.producer = ProducerConfig::builder()
        .semantics(DeliverySemantics::All)
        .message_timeout(SimDuration::from_millis(2_000))
        .build()
        .expect("valid producer config");
    run.faults.push(BrokerFault {
        broker: BrokerId(1),
        at: SimTime::from_secs(1),
        down_for: SimDuration::from_millis(500),
        flaps: 3,
        up_for: SimDuration::from_millis(800),
    });
    run
}

/// `KafkaRun::with_threads` parallelises read-back and audit counting;
/// the full outcome — delivery report, audit ledger rollups, producer and
/// broker counters — must be bit-identical at 1/2/4/8 threads, on both
/// broker-fault scenarios.
#[test]
fn broker_fault_runs_are_thread_invariant() {
    for (name, spec) in [("crash", crash_run()), ("flapping", flapping_run())] {
        spec.validate().expect("fault scenario is valid");
        let baseline = KafkaRun::new(spec.clone(), 77).with_threads(1).execute();
        assert!(
            baseline.report.lost > 0 || baseline.report.duplicated > 0,
            "{name}: the fault must actually perturb delivery"
        );
        for threads in [2, 4, 8] {
            let run = KafkaRun::new(spec.clone(), 77)
                .with_threads(threads)
                .execute();
            assert_eq!(
                run.report, baseline.report,
                "{name}: delivery report diverged at {threads} threads"
            );
            assert_eq!(
                run, baseline,
                "{name}: outcome diverged at {threads} threads"
            );
        }
    }
}

fn arb_strategy() -> impl Strategy<Value = PartitionStrategy> {
    prop_oneof![
        Just(PartitionStrategy::RoundRobin),
        Just(PartitionStrategy::KeyHash),
        Just(PartitionStrategy::Locality),
    ]
}

fn arb_population() -> impl Strategy<Value = Population> {
    let slugs = ["social-media", "web-access-records", "game-traffic"];
    proptest::collection::vec((0usize..slugs.len(), 1u32..10, 1u32..40), 1usize..4).prop_map(
        move |picks| {
            let entries = picks
                .into_iter()
                .map(|(i, weight, rate_decihz)| PopulationEntry {
                    class: ApplicationScenario::by_slug(slugs[i])
                        .expect("Table II slug")
                        .stream_class(f64::from(rate_decihz) / 10.0),
                    weight: f64::from(weight),
                })
                .collect();
            Population::new(entries).expect("weights and rates are positive")
        },
    )
}

fn arb_fleet_config() -> impl Strategy<Value = FleetConfig> {
    (
        20usize..200,
        2u32..16,
        arb_strategy(),
        arb_population(),
        1u32..6,
        prop_oneof![Just(Assignor::Range), Just(Assignor::Sticky)],
        // Raw churn picks: (time inside the run, join?, leave target).
        proptest::collection::vec((1u64..10, proptest::bool::ANY, 0u32..4), 0usize..4),
    )
        .prop_map(
            |(producers, partitions, strategy, population, initial_consumers, assignor, raw)| {
                let churn = raw
                    .into_iter()
                    .enumerate()
                    .map(|(i, (at_s, join, member))| ChurnEvent {
                        at: SimTime::ZERO + SimDuration::from_secs(at_s),
                        action: if join {
                            ChurnAction::Join
                        } else {
                            ChurnAction::Leave
                        },
                        member: if join {
                            initial_consumers + i as u32
                        } else {
                            member % initial_consumers
                        },
                    })
                    .collect();
                FleetConfig {
                    producers,
                    partitions,
                    strategy,
                    population,
                    initial_consumers,
                    assignor,
                    churn,
                    duration: SimDuration::from_secs(10),
                    window: SimDuration::from_secs(2),
                    partition_capacity_hz: 20.0,
                    base_loss: 0.01,
                    rebalance_pause: SimDuration::from_millis(1500),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs three full fleet simulations
        .. ProptestConfig::default()
    })]

    /// For *any* population mix, partitioner, assignor and churn
    /// schedule, the sharded engine's outcome is bit-identical across
    /// thread counts — and equal to the sequential engine for the static
    /// strategies.
    #[test]
    fn sharded_fleet_is_thread_invariant(cfg in arb_fleet_config(), seed in 0u64..1_000) {
        let one = FleetRun::new(cfg.clone(), seed).execute_sharded(1);
        let four = FleetRun::new(cfg.clone(), seed).execute_sharded(4);
        prop_assert_eq!(&one, &four);
        if !matches!(cfg.strategy, PartitionStrategy::RoundRobin) {
            let sequential = FleetRun::new(cfg, seed).execute();
            prop_assert_eq!(&one, &sequential);
        }
    }
}
