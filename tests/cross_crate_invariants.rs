//! Property-based invariants that must hold across the whole stack, for
//! arbitrary configurations and network conditions.

use desim::SimDuration;
use kafkasim::config::DeliverySemantics;
use proptest::prelude::*;
use testbed::experiment::ExperimentPoint;
use testbed::Calibration;

fn arb_semantics() -> impl Strategy<Value = DeliverySemantics> {
    prop_oneof![
        Just(DeliverySemantics::AtMostOnce),
        Just(DeliverySemantics::AtLeastOnce),
    ]
}

fn arb_point() -> impl Strategy<Value = ExperimentPoint> {
    (
        50u64..1_000, // message size
        0u64..200,    // delay ms
        0u32..40,     // loss percent
        arb_semantics(),
        1usize..10,    // batch
        0u64..120,     // poll ms
        300u64..4_000, // timeout ms
    )
        .prop_map(|(m, d, l, semantics, b, poll, t_o)| ExperimentPoint {
            message_size: m,
            timeliness: None,
            delay: SimDuration::from_millis(d),
            loss_rate: f64::from(l) / 100.0,
            semantics,
            batch_size: b,
            poll_interval: SimDuration::from_millis(poll),
            message_timeout: SimDuration::from_millis(t_o),
            ..ExperimentPoint::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full simulation
        .. ProptestConfig::default()
    })]

    /// Every source message resolves to exactly one outcome, the case
    /// counts tally, and the probabilities stay in range — for *any*
    /// configuration and network condition.
    #[test]
    fn every_message_resolves_exactly_once(point in arb_point(), seed in 0u64..1_000) {
        let cal = Calibration::paper();
        let result = point.run(&cal, 400, seed);
        let r = &result.report;
        prop_assert_eq!(r.delivered_once + r.lost + r.duplicated, r.n_source);
        prop_assert_eq!(r.case_counts.iter().sum::<u64>(), r.n_source);
        prop_assert!((0.0..=1.0).contains(&result.p_loss));
        prop_assert!((0.0..=1.0).contains(&result.p_dup));
        let attributed: u64 = r.loss_reasons.values().sum();
        prop_assert_eq!(attributed, r.lost, "every loss has exactly one reason");
    }

    /// At-most-once can never produce duplicates (only Cases 1 and 2 are
    /// reachable, per the paper's state analysis).
    #[test]
    fn at_most_once_never_duplicates(point in arb_point(), seed in 0u64..1_000) {
        let mut point = point;
        point.semantics = DeliverySemantics::AtMostOnce;
        let cal = Calibration::paper();
        let result = point.run(&cal, 300, seed);
        prop_assert_eq!(result.report.duplicated, 0);
        prop_assert_eq!(result.report.case_counts[2], 0, "no Case 3 without retries");
        prop_assert_eq!(result.report.case_counts[3], 0, "no Case 4 without retries");
        prop_assert_eq!(result.report.case_counts[4], 0, "no Case 5 without retries");
    }

    /// Runs are bit-for-bit deterministic in (spec, seed).
    #[test]
    fn runs_are_deterministic(point in arb_point(), seed in 0u64..1_000) {
        let cal = Calibration::paper();
        let a = point.run(&cal, 250, seed);
        let b = point.run(&cal, 250, seed);
        prop_assert_eq!(a, b);
    }

    /// A lossless, fault-free, lightly-loaded pipeline delivers everything
    /// exactly once, whatever the configuration.
    #[test]
    fn clean_light_load_is_lossless(
        semantics in arb_semantics(),
        b in 1usize..8,
        m in 100u64..800,
    ) {
        let point = ExperimentPoint {
            message_size: m,
            timeliness: None,
            delay: SimDuration::from_millis(5),
            loss_rate: 0.0,
            semantics,
            batch_size: b,
            poll_interval: SimDuration::from_millis(150),
            message_timeout: SimDuration::from_millis(5_000),
            ..ExperimentPoint::default()
        };
        let cal = Calibration::paper();
        let result = point.run(&cal, 400, 9);
        prop_assert_eq!(result.report.lost, 0, "reasons: {:?}", result.report.loss_reasons);
        prop_assert_eq!(result.report.duplicated, 0);
    }
}

// The feature vector round-trips through the experiment point for any
// generated point (model-facing and testbed-facing views agree).
proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
    #[test]
    fn features_round_trip(point in arb_point()) {
        let features = kafka_predict::Features::from(&point);
        let back = features.to_experiment_point();
        prop_assert_eq!(point, back);
    }
}
