//! End-to-end integration: testbed → dataset → ANN → prediction →
//! recommendation, across every crate in the workspace.

use kafka_predict::kpi::KpiModel;
use kafka_predict::prelude::*;
use kafka_predict::train::validate_against_simulation;
use kafkasim::config::DeliverySemantics;
use testbed::experiment::ExperimentPoint;
use testbed::scenarios::KpiWeights;

fn training_results() -> Vec<testbed::ExperimentResult> {
    let cal = Calibration::paper();
    quick_grid(&cal, 1_200, 4)
}

#[test]
fn collect_train_predict_recommend() {
    let cal = Calibration::paper();
    let results = training_results();
    assert!(
        results.len() >= 40,
        "grid produced {} points",
        results.len()
    );

    // Train.
    let mut options = TrainOptions::fast();
    options.sgd.epochs = 250;
    let trained = train_model(&results, &options, 3).expect("train");
    assert!(
        trained.worst_mae() < 0.25,
        "even the fast model should be in the ballpark: MAE {}",
        trained.worst_mae()
    );

    // Predict: unit-interval outputs, semantics-consistent duplicates.
    let f = Features {
        loss_rate: 0.18,
        delay_ms: 90.0,
        semantics: DeliverySemantics::AtMostOnce,
        ..Features::default()
    };
    let p = trained.model.predict(&f);
    assert!((0.0..=1.0).contains(&p.p_loss));
    assert_eq!(p.p_dup, 0.0, "at-most-once never predicts duplicates");

    // Recommend: the search must improve (or keep) the KPI.
    let kpi = KpiModel::from_calibration(&cal);
    let recommender = Recommender::new(&kpi, &trained.model, SearchSpace::default());
    let weights = KpiWeights::paper_default();
    let start = Features {
        loss_rate: 0.2,
        delay_ms: 100.0,
        semantics: DeliverySemantics::AtMostOnce,
        batch_size: 1,
        ..Features::default()
    };
    let start_gamma = kpi.gamma(&trained.model, &start, &weights);
    let rec = recommender.recommend(&start, &weights, 0.95);
    assert!(
        rec.gamma >= start_gamma - 1e-12,
        "search must not make the KPI worse: {} -> {}",
        start_gamma,
        rec.gamma
    );
    rec.features.validate().expect("recommended features valid");
    rec.features
        .to_experiment_point()
        .producer_config(&cal)
        .validate()
        .expect("recommendation maps to a valid producer config");
}

#[test]
fn model_round_trips_through_json() {
    let results = training_results();
    let trained = train_model(&results, &TrainOptions::fast(), 5).expect("train");
    let json = trained.model.to_json().expect("serialise");
    let restored = ReliabilityModel::from_json(&json).expect("parse");
    let f = Features {
        loss_rate: 0.1,
        ..Features::default()
    };
    let a = trained.model.predict(&f);
    let b = restored.predict(&f);
    // JSON text round-trips can shift the last ULP of a weight; the
    // predictions must agree far beyond any decision-relevant precision.
    assert!((a.p_loss - b.p_loss).abs() < 1e-9);
    assert!((a.p_dup - b.p_dup).abs() < 1e-9);
}

#[test]
fn validation_against_fresh_simulations_is_bounded() {
    let cal = Calibration::paper();
    let results = training_results();
    let mut options = TrainOptions::fast();
    options.sgd.epochs = 300;
    let trained = train_model(&results, &options, 9).expect("train");
    // Validate on a handful of fresh points near the training manifold.
    let points: Vec<ExperimentPoint> = results.iter().step_by(7).map(|r| r.point.clone()).collect();
    let mae = validate_against_simulation(&trained.model, &points, &cal, 1_200, 123, 4);
    assert!(
        mae < 0.30,
        "simulation-validated MAE should be bounded: {mae}"
    );
}
