//! Qualitative anchors from the paper's evaluation, asserted end-to-end
//! against the simulated testbed.
//!
//! These tests encode the *shape* claims of each figure — who wins, in
//! which direction a parameter moves the metrics — at reduced message
//! counts so they run in CI. The full-effort numbers live in
//! EXPERIMENTS.md.

use desim::SimDuration;
use kafkasim::config::DeliverySemantics;
use testbed::experiment::ExperimentPoint;
use testbed::sweep::{run_repeated, run_sweep};
use testbed::Calibration;

const N: u64 = 3_000;

fn fig4_point(m: u64, semantics: DeliverySemantics) -> ExperimentPoint {
    ExperimentPoint {
        message_size: m,
        timeliness: None,
        delay: SimDuration::from_millis(100),
        loss_rate: 0.19,
        semantics,
        batch_size: 1,
        poll_interval: SimDuration::ZERO,
        message_timeout: SimDuration::from_millis(2_000),
        ..ExperimentPoint::default()
    }
}

/// Fig. 4: `P_l` falls with message size under both semantics.
#[test]
fn fig4_loss_falls_with_message_size() {
    let cal = Calibration::paper();
    for semantics in [
        DeliverySemantics::AtMostOnce,
        DeliverySemantics::AtLeastOnce,
    ] {
        let points: Vec<ExperimentPoint> = [100u64, 400, 1000]
            .iter()
            .map(|&m| fig4_point(m, semantics))
            .collect();
        let r = run_sweep(&points, &cal, N, 1, 3);
        assert!(
            r[0].p_loss > r[1].p_loss && r[1].p_loss > r[2].p_loss,
            "{semantics:?}: {} > {} > {} expected",
            r[0].p_loss,
            r[1].p_loss,
            r[2].p_loss
        );
        assert!(
            r[0].p_loss > 0.4,
            "small messages under 19% loss lose heavily: {}",
            r[0].p_loss
        );
    }
}

/// Fig. 4: for large messages, at-least-once ends below 1% and saves
/// messages over at-most-once ("at-least-once can save approximately 3000
/// more messages" per 10⁶).
#[test]
fn fig4_at_least_once_wins_for_large_messages() {
    let cal = Calibration::paper();
    let (amo, _) = run_repeated(
        &fig4_point(1000, DeliverySemantics::AtMostOnce),
        &cal,
        N,
        2,
        3,
        3,
    );
    let (alo, _) = run_repeated(
        &fig4_point(1000, DeliverySemantics::AtLeastOnce),
        &cal,
        N,
        2,
        3,
        3,
    );
    assert!(alo < 0.01, "at-least-once below 1% at M=1000: {alo}");
    assert!(alo < amo, "retries must save messages: {alo} vs {amo}");
}

/// Fig. 5: under near-saturated load with no faults, small `T_o` loses
/// messages and generous `T_o` does not.
#[test]
fn fig5_timeout_governs_loss_under_load() {
    let cal = Calibration::paper();
    let point = |t_o: u64| ExperimentPoint {
        message_size: 620,
        timeliness: None,
        delay: SimDuration::from_millis(1),
        loss_rate: 0.0,
        semantics: DeliverySemantics::AtLeastOnce,
        batch_size: 1,
        poll_interval: SimDuration::ZERO,
        message_timeout: SimDuration::from_millis(t_o),
        ..ExperimentPoint::default()
    };
    let r = run_sweep(&[point(200), point(3_000)], &cal, N, 3, 2);
    assert!(
        r[0].p_loss > 0.05,
        "a 200ms timeout must expire messages: {}",
        r[0].p_loss
    );
    assert!(
        r[1].p_loss < 0.01,
        "a 3s timeout keeps losses negligible: {}",
        r[1].p_loss
    );
}

/// Fig. 6: `δ = 0` overloads the producer (paper: > 45% loss); `δ = 90 ms`
/// keeps loss under 10%.
#[test]
fn fig6_polling_interval_relieves_overload() {
    let cal = Calibration::paper();
    let point = |delta: u64| ExperimentPoint {
        message_size: 100,
        timeliness: None,
        delay: SimDuration::from_millis(1),
        loss_rate: 0.0,
        semantics: DeliverySemantics::AtLeastOnce,
        batch_size: 1,
        poll_interval: SimDuration::from_millis(delta),
        message_timeout: SimDuration::from_millis(500),
        ..ExperimentPoint::default()
    };
    let r = run_sweep(&[point(0), point(90)], &cal, N, 4, 2);
    assert!(
        r[0].p_loss > 0.45,
        "full load loses above 45%: {}",
        r[0].p_loss
    );
    assert!(
        r[1].p_loss < 0.10,
        "δ=90ms brings loss under 10%: {}",
        r[1].p_loss
    );
}

/// Fig. 7: batching reduces loss under moderate packet loss, for both
/// semantics, and at-least-once sits below at-most-once.
#[test]
fn fig7_batching_and_semantics_order() {
    let cal = Calibration::paper();
    let point = |b: usize, semantics: DeliverySemantics| ExperimentPoint {
        message_size: 200,
        timeliness: None,
        delay: SimDuration::from_millis(100),
        loss_rate: 0.25,
        semantics,
        batch_size: b,
        poll_interval: SimDuration::from_millis(70),
        message_timeout: SimDuration::from_millis(2_000),
        ..ExperimentPoint::default()
    };
    for semantics in [
        DeliverySemantics::AtMostOnce,
        DeliverySemantics::AtLeastOnce,
    ] {
        let (unbatched, _) = run_repeated(&point(1, semantics), &cal, N, 5, 3, 3);
        let (batched, _) = run_repeated(&point(4, semantics), &cal, N, 5, 3, 3);
        assert!(
            batched < unbatched,
            "{semantics:?}: batching must reduce loss ({batched} vs {unbatched})"
        );
    }
    let (amo, _) = run_repeated(&point(1, DeliverySemantics::AtMostOnce), &cal, N, 6, 3, 3);
    let (alo, _) = run_repeated(&point(1, DeliverySemantics::AtLeastOnce), &cal, N, 6, 3, 3);
    assert!(alo < amo, "retries win under loss: {alo} vs {amo}");
}

/// Fig. 8: duplicates only occur under at-least-once, and batching does
/// not increase them.
#[test]
fn fig8_duplicates_semantics_and_batching() {
    let cal = Calibration::paper();
    let point = |b: usize, semantics: DeliverySemantics| ExperimentPoint {
        message_size: 200,
        timeliness: None,
        delay: SimDuration::from_millis(100),
        loss_rate: 0.20,
        semantics,
        batch_size: b,
        poll_interval: SimDuration::from_millis(70),
        message_timeout: SimDuration::from_millis(2_000),
        ..ExperimentPoint::default()
    };
    let (_, amo_dup) = run_repeated(&point(1, DeliverySemantics::AtMostOnce), &cal, N, 7, 3, 3);
    assert_eq!(amo_dup, 0.0, "at-most-once can never duplicate");
    let (_, b1) = run_repeated(&point(1, DeliverySemantics::AtLeastOnce), &cal, N, 7, 4, 4);
    let (_, b8) = run_repeated(&point(8, DeliverySemantics::AtLeastOnce), &cal, N, 7, 4, 4);
    assert!(
        b8 <= b1 + 0.01,
        "batching must not inflate duplicates: B=8 {b8} vs B=1 {b1}"
    );
}
