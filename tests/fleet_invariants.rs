//! Fleet-layer invariants: per-tenant accounting must stay conservative
//! under arbitrary population mixes, partitioning strategies and
//! consumer-group churn, and fleet runs must be bit-identical in
//! (config, seed).

use desim::{SimDuration, SimTime};
use kafkasim::fleet::{
    Assignor, ChurnAction, ChurnEvent, FleetConfig, FleetRun, PartitionStrategy, Population,
    PopulationEntry,
};
use obs::{RingBufferSink, TraceEvent};
use proptest::prelude::*;
use spec::{ExperimentSpec, Spec};
use testbed::scenarios::ApplicationScenario;

/// Builds the committed `scenarios/fleet.toml` experiment as one
/// [`FleetConfig`] per partitioning strategy, exactly as the `repro`
/// executor does.
fn builtin_fleet_configs() -> Vec<FleetConfig> {
    let doc = Spec::builtin("fleet").expect("fleet is a built-in scenario");
    doc.validate().expect("built-in corpus is valid");
    let ExperimentSpec::Fleet(spec) = doc.experiment else {
        panic!("fleet resolves to a fleet experiment");
    };
    let entries: Vec<PopulationEntry> = spec
        .population
        .iter()
        .map(|e| PopulationEntry {
            class: ApplicationScenario::by_slug(&e.class)
                .expect("Table II slug")
                .stream_class(e.rate_hz),
            weight: e.weight,
        })
        .collect();
    spec.partitioners
        .iter()
        .map(|&strategy| FleetConfig {
            producers: spec.producers,
            partitions: spec.partitions,
            strategy,
            population: Population::new(entries.clone()).expect("valid mix"),
            initial_consumers: spec.consumers,
            assignor: spec.assignor,
            churn: spec
                .churn
                .iter()
                .map(|c| ChurnEvent {
                    at: SimTime::ZERO + SimDuration::from_secs(c.at_s),
                    action: c.action,
                    member: c.member,
                })
                .collect(),
            duration: SimDuration::from_secs(spec.duration_s),
            window: SimDuration::from_millis(spec.window_ms),
            partition_capacity_hz: spec.partition_capacity_hz,
            base_loss: spec.base_loss,
            rebalance_pause: SimDuration::from_millis(spec.rebalance_pause_ms),
        })
        .collect()
}

/// The committed fleet scenario satisfies the issue's floor — at least
/// 1000 producers across at least three stream types — and its per-tenant
/// ledgers attribute 100% of every tenant's messages.
#[test]
fn builtin_fleet_attributes_every_message() {
    for cfg in builtin_fleet_configs() {
        assert!(cfg.producers >= 1000, "fleet floor is 1000 producers");
        assert!(cfg.population.entries().len() >= 3, "three stream types");
        let outcome = FleetRun::new(cfg, 42).execute();
        let mut produced = 0;
        let mut delivered = 0;
        let mut lost = 0;
        let mut duplicated = 0;
        for t in &outcome.tenants {
            assert_eq!(
                t.produced,
                t.delivered + t.lost(),
                "tenant {} accounting must sum to 100%",
                t.tenant
            );
            produced += t.produced;
            delivered += t.delivered;
            lost += t.lost();
            duplicated += t.duplicated;
        }
        assert_eq!(produced, outcome.totals.produced);
        assert_eq!(delivered, outcome.totals.delivered);
        assert_eq!(lost, outcome.totals.lost());
        assert_eq!(duplicated, outcome.totals.duplicated);
        assert!(outcome.totals.produced > 0, "the fleet produced traffic");
        assert_eq!(
            outcome.partition_appends.iter().sum::<u64>(),
            outcome.totals.delivered,
            "every first copy lands in exactly one partition"
        );
        assert_eq!(outcome.windows.total_produced(), outcome.totals.produced);
    }
}

/// The committed fleet scenario is bit-identical across two runs at the
/// same seed, and diverges at a different seed.
#[test]
fn builtin_fleet_is_bit_identical_at_fixed_seed() {
    for cfg in builtin_fleet_configs() {
        let a = FleetRun::new(cfg.clone(), 42).execute();
        let b = FleetRun::new(cfg.clone(), 42).execute();
        assert_eq!(a, b, "same config + seed must be bit-identical");
        let c = FleetRun::new(cfg, 43).execute();
        assert_ne!(a.totals, c.totals, "a different seed perturbs the run");
    }
}

/// The scripted churn shows up as consumer-group trace events and in the
/// windowed per-tenant KPI series: the join and the leave each trigger a
/// rebalance, moved partitions re-read (duplicates), and the membership
/// column tracks the group size.
#[test]
fn builtin_fleet_rebalances_are_observable() {
    let cfg = builtin_fleet_configs().remove(0);
    let members_before = u64::from(cfg.initial_consumers);
    let (outcome, mut sink) =
        FleetRun::new(cfg, 42).execute_traced(Box::new(RingBufferSink::new(8192)));
    assert!(outcome.rebalances.len() >= 2, "join + leave both rebalance");

    let events = sink.drain();
    let joins = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::ConsumerJoined { .. }))
        .count();
    let leaves = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::ConsumerLeft { .. }))
        .count();
    let moved: u64 = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PartitionsAssigned { moved, .. } => Some(*moved),
            _ => None,
        })
        .sum();
    assert!(joins >= 1, "the scripted join is traced");
    assert!(leaves >= 1, "the scripted leave is traced");
    assert!(moved > 0, "rebalances hand partitions over");

    let rows = &outcome.windows.rows;
    assert!(
        rows.iter().any(|r| r.moved_partitions > 0),
        "a rebalance lands inside a KPI window"
    );
    assert!(
        rows.iter().any(|r| r.group_members != members_before),
        "membership changes are visible in the windowed series"
    );
    assert!(
        outcome.totals.duplicated > 0,
        "moved partitions re-read, producing duplicates"
    );
}

fn arb_strategy() -> impl Strategy<Value = PartitionStrategy> {
    prop_oneof![
        Just(PartitionStrategy::RoundRobin),
        Just(PartitionStrategy::KeyHash),
        Just(PartitionStrategy::Locality),
    ]
}

fn arb_assignor() -> impl Strategy<Value = Assignor> {
    prop_oneof![Just(Assignor::Range), Just(Assignor::Sticky)]
}

fn arb_population() -> impl Strategy<Value = Population> {
    let slugs = ["social-media", "web-access-records", "game-traffic"];
    proptest::collection::vec((0usize..slugs.len(), 1u32..10, 1u32..40), 1usize..4).prop_map(
        move |picks| {
            let entries = picks
                .into_iter()
                .map(|(i, weight, rate_decihz)| PopulationEntry {
                    class: ApplicationScenario::by_slug(slugs[i])
                        .expect("Table II slug")
                        .stream_class(f64::from(rate_decihz) / 10.0),
                    weight: f64::from(weight),
                })
                .collect();
            Population::new(entries).expect("weights and rates are positive")
        },
    )
}

fn arb_fleet_config() -> impl Strategy<Value = FleetConfig> {
    (
        20usize..200,
        2u32..16,
        arb_strategy(),
        arb_population(),
        1u32..6,
        arb_assignor(),
        // Raw churn picks: (time inside the run, join?, leave target).
        // Joins use fresh member ids; leaves target initial members.
        proptest::collection::vec((1u64..10, proptest::bool::ANY, 0u32..4), 0usize..4),
    )
        .prop_map(
            |(producers, partitions, strategy, population, initial_consumers, assignor, raw)| {
                let churn = raw
                    .into_iter()
                    .enumerate()
                    .map(|(i, (at_s, join, member))| ChurnEvent {
                        at: SimTime::ZERO + SimDuration::from_secs(at_s),
                        action: if join {
                            ChurnAction::Join
                        } else {
                            ChurnAction::Leave
                        },
                        member: if join {
                            initial_consumers + i as u32
                        } else {
                            member % initial_consumers
                        },
                    })
                    .collect();
                FleetConfig {
                    producers,
                    partitions,
                    strategy,
                    population,
                    initial_consumers,
                    assignor,
                    churn,
                    duration: SimDuration::from_secs(10),
                    window: SimDuration::from_secs(2),
                    partition_capacity_hz: 20.0,
                    base_loss: 0.01,
                    rebalance_pause: SimDuration::from_millis(1500),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full fleet simulation
        .. ProptestConfig::default()
    })]

    /// Per-tenant delivered + lost sums to produced, tenant ledgers sum
    /// to the fleet totals, and class rollups partition the tenants — for
    /// *any* population mix, partitioner, assignor and churn schedule.
    #[test]
    fn fleet_accounting_is_conservative(cfg in arb_fleet_config(), seed in 0u64..1_000) {
        let outcome = FleetRun::new(cfg.clone(), seed).execute();
        let mut produced = 0u64;
        let mut delivered = 0u64;
        let mut lost_network = 0u64;
        let mut lost_overload = 0u64;
        let mut duplicated = 0u64;
        for t in &outcome.tenants {
            prop_assert_eq!(t.produced, t.delivered + t.lost_network + t.lost_overload);
            produced += t.produced;
            delivered += t.delivered;
            lost_network += t.lost_network;
            lost_overload += t.lost_overload;
            duplicated += t.duplicated;
        }
        prop_assert_eq!(produced, outcome.totals.produced);
        prop_assert_eq!(delivered, outcome.totals.delivered);
        prop_assert_eq!(lost_network, outcome.totals.lost_network);
        prop_assert_eq!(lost_overload, outcome.totals.lost_overload);
        prop_assert_eq!(duplicated, outcome.totals.duplicated);

        let class_produced: u64 = outcome.classes.iter().map(|c| c.produced).sum();
        let class_producers: u64 = outcome.classes.iter().map(|c| c.producers).sum();
        prop_assert_eq!(class_produced, outcome.totals.produced);
        prop_assert_eq!(class_producers, cfg.producers as u64);

        prop_assert_eq!(
            outcome.partition_appends.iter().sum::<u64>(),
            outcome.totals.delivered
        );
        prop_assert_eq!(outcome.windows.total_produced(), outcome.totals.produced);
    }

    /// Fleet runs are bit-for-bit deterministic in (config, seed), churn
    /// and all.
    #[test]
    fn fleet_runs_are_deterministic(cfg in arb_fleet_config(), seed in 0u64..1_000) {
        let a = FleetRun::new(cfg.clone(), seed).execute();
        let b = FleetRun::new(cfg, seed).execute();
        prop_assert_eq!(a, b);
    }
}
