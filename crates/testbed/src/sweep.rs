//! Parallel execution of experiment grids.
//!
//! The paper runs "numerous experiments" to collect training data; the
//! feature grids here can hold hundreds of points, each an independent
//! simulation, so they fan out over worker threads. Results come back in
//! the input order regardless of completion order, keeping downstream
//! processing deterministic.
//!
//! Work is split by *chunked ownership*: the grid is cut into one
//! contiguous chunk per worker, each worker owns its chunk's result vector
//! outright (no shared slots, no locks), and the chunks are concatenated
//! in order at the end. Each worker also threads one [`RunArena`] through
//! its runs, so per-run buffers are allocated once per worker instead of
//! once per point.

use kafkasim::runtime::RunArena;

use crate::calibration::Calibration;
use crate::experiment::{ExperimentPoint, ExperimentResult};

/// Runs every point, in parallel, with `threads` workers.
///
/// Each point gets a deterministic seed derived from `base_seed` and its
/// index, so a sweep is reproducible regardless of thread count and
/// interleaving.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
#[must_use]
pub fn run_sweep(
    points: &[ExperimentPoint],
    cal: &Calibration,
    n_messages: u64,
    base_seed: u64,
    threads: usize,
) -> Vec<ExperimentResult> {
    assert!(threads > 0, "need at least one worker");
    if points.is_empty() {
        return Vec::new();
    }
    let workers = threads.min(points.len());
    let chunk_len = points.len().div_ceil(workers);
    let chunks: Vec<Vec<ExperimentResult>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = points
            .chunks(chunk_len)
            .enumerate()
            .map(|(w, slice)| {
                scope.spawn(move |_| {
                    let mut arena = RunArena::new();
                    let offset = w * chunk_len;
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, point)| {
                            let seed = derive_seed(base_seed, (offset + j) as u64);
                            point.run_pooled(cal, n_messages, seed, &mut arena)
                        })
                        .collect::<Vec<ExperimentResult>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("worker panicked");
    let mut results = Vec::with_capacity(points.len());
    for chunk in chunks {
        results.extend(chunk);
    }
    results
}

/// The seed used for point `index` of a sweep rooted at `base_seed`.
///
/// SplitMix64-style mixing so adjacent indices get unrelated streams.
#[must_use]
pub fn derive_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the same point `repeats` times with distinct seeds and returns the
/// mean `(P_l, P_d)` — the testbed's answer to sampling noise.
#[must_use]
pub fn run_repeated(
    point: &ExperimentPoint,
    cal: &Calibration,
    n_messages: u64,
    base_seed: u64,
    repeats: usize,
    threads: usize,
) -> (f64, f64) {
    assert!(repeats > 0, "need at least one repeat");
    let points = vec![point.clone(); repeats];
    let results = run_sweep(&points, cal, n_messages, base_seed, threads);
    let n = results.len() as f64;
    let p_l = results.iter().map(|r| r.p_loss).sum::<f64>() / n;
    let p_d = results.iter().map(|r| r.p_dup).sum::<f64>() / n;
    (p_l, p_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    fn grid(n: usize) -> Vec<ExperimentPoint> {
        (0..n)
            .map(|i| ExperimentPoint {
                message_size: 100 + 50 * i as u64,
                poll_interval: SimDuration::from_millis(50),
                ..ExperimentPoint::default()
            })
            .collect()
    }

    #[test]
    fn sweep_preserves_input_order() {
        let cal = Calibration::paper();
        let points = grid(6);
        let results = run_sweep(&points, &cal, 100, 7, 3);
        assert_eq!(results.len(), 6);
        for (p, r) in points.iter().zip(&results) {
            assert_eq!(&r.point, p);
        }
    }

    #[test]
    fn sweep_matches_sequential_execution() {
        let cal = Calibration::paper();
        let points = grid(4);
        let parallel = run_sweep(&points, &cal, 100, 3, 4);
        let sequential: Vec<ExperimentResult> = points
            .iter()
            .enumerate()
            .map(|(i, p)| p.run(&cal, 100, derive_seed(3, i as u64)))
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn sweep_with_more_threads_than_points_preserves_order() {
        let cal = Calibration::paper();
        let points = grid(3);
        let parallel = run_sweep(&points, &cal, 100, 7, 8);
        let sequential: Vec<ExperimentResult> = points
            .iter()
            .enumerate()
            .map(|(i, p)| p.run(&cal, 100, derive_seed(7, i as u64)))
            .collect();
        assert_eq!(parallel, sequential);
        for (p, r) in points.iter().zip(&parallel) {
            assert_eq!(&r.point, p);
        }
    }

    #[test]
    fn derived_seeds_differ() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn empty_sweep_is_empty() {
        let cal = Calibration::paper();
        assert!(run_sweep(&[], &cal, 100, 1, 4).is_empty());
    }

    #[test]
    fn repeated_runs_average() {
        let cal = Calibration::paper();
        let point = ExperimentPoint {
            poll_interval: SimDuration::from_millis(50),
            ..ExperimentPoint::default()
        };
        let (p_l, p_d) = run_repeated(&point, &cal, 100, 5, 3, 3);
        assert!(p_l < 0.05);
        assert_eq!(p_d, 0.0);
    }
}
