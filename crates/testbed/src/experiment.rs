//! One experiment point: the paper's feature tuple and its execution.
//!
//! The prediction model's inputs (Eq. 1) are
//! `{M, S, D, L, Confs = (semantics, B, δ, T_o)}`; an
//! [`ExperimentPoint`] carries exactly those eight features. Running a
//! point builds a fresh [`kafkasim::RunSpec`] from the shared
//! [`Calibration`], executes it, and records `P_l` and `P_d`.

use desim::{SimDuration, SimTime};
use kafkasim::audit::DeliveryReport;
use kafkasim::broker::BrokerId;
use kafkasim::config::{DeliverySemantics, ProducerConfig};
use kafkasim::runtime::{BrokerFault, KafkaRun, ProducerStats, RunArena, RunSpec};
use kafkasim::source::{RateSpec, SizeSpec, SourceSpec};
use netsim::{ConditionTimeline, NetCondition};
use serde::{Deserialize, Serialize};

use crate::calibration::Calibration;

/// The paper's eight prediction features for one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// (a) Message size `M` in bytes.
    pub message_size: u64,
    /// (b) Message timeliness `S` (staleness bound); `None` disables
    /// staleness accounting.
    pub timeliness: Option<SimDuration>,
    /// (c) One-way network delay `D`.
    pub delay: SimDuration,
    /// (d) Network packet-loss rate `L` in `[0, 1]`.
    pub loss_rate: f64,
    /// (e) Delivery semantics.
    pub semantics: DeliverySemantics,
    /// (f) Batch size `B`.
    pub batch_size: usize,
    /// (g) Polling interval `δ`; `ZERO` = full load.
    pub poll_interval: SimDuration,
    /// (h) Message timeout `T_o`.
    pub message_timeout: SimDuration,
    /// (i) Per-partition replication factor (beyond the paper; `1`
    /// reproduces the paper's single-copy setup).
    pub replication_factor: u32,
    /// (j) Duration of an injected broker crash; `ZERO` injects no fault.
    /// When set, the leader of partition 0 crashes at
    /// [`ExperimentPoint::FAULT_AT`] and failover detection runs after
    /// [`ExperimentPoint::FAILOVER_DETECT`] — size the run so it spans the
    /// fault window.
    pub fault_downtime: SimDuration,
    /// (k) Whether unclean leader election is permitted during the fault.
    pub allow_unclean: bool,
}

impl Default for ExperimentPoint {
    fn default() -> Self {
        ExperimentPoint {
            message_size: 200,
            timeliness: None,
            delay: SimDuration::from_millis(1),
            loss_rate: 0.0,
            semantics: DeliverySemantics::AtLeastOnce,
            batch_size: 1,
            poll_interval: SimDuration::from_millis(100),
            message_timeout: SimDuration::from_millis(3_000),
            replication_factor: 1,
            fault_downtime: SimDuration::ZERO,
            allow_unclean: false,
        }
    }
}

impl ExperimentPoint {
    /// The numeric feature vector for the prediction model, in the order
    /// `[M, S_ms, D_ms, L, semantics, B, δ_ms, T_o_ms, RF, F_ms, U]`
    /// (semantics encoded 0 = at-most-once, 1 = at-least-once,
    /// 2 = acks-all; `S = 0` when unset; `F_ms` is the injected broker
    /// downtime in ms, `U` is 1 when unclean election is allowed).
    #[must_use]
    pub fn feature_vector(&self) -> Vec<f64> {
        vec![
            self.message_size as f64,
            self.timeliness.map_or(0.0, |s| s.as_secs_f64() * 1e3),
            self.delay.as_secs_f64() * 1e3,
            self.loss_rate,
            match self.semantics {
                DeliverySemantics::AtMostOnce => 0.0,
                DeliverySemantics::AtLeastOnce => 1.0,
                DeliverySemantics::All => 2.0,
            },
            self.batch_size as f64,
            self.poll_interval.as_secs_f64() * 1e3,
            self.message_timeout.as_secs_f64() * 1e3,
            f64::from(self.replication_factor),
            self.fault_downtime.as_secs_f64() * 1e3,
            f64::from(u8::from(self.allow_unclean)),
        ]
    }

    /// Number of features in [`ExperimentPoint::feature_vector`].
    pub const FEATURES: usize = 11;

    /// When the injected broker fault (if any) begins.
    pub const FAULT_AT: SimTime = SimTime::from_millis(1_500);

    /// How long after the crash the controller elects a new leader.
    pub const FAILOVER_DETECT: SimDuration = SimDuration::from_millis(500);

    /// Whether this point is a "normal case" in the paper's Fig. 3 sense
    /// (`D < 200 ms` and `L = 0`).
    #[must_use]
    pub fn is_normal_case(&self) -> bool {
        NetCondition::new(self.delay, self.loss_rate).is_normal()
    }

    /// The producer configuration this point implies under `cal`.
    #[must_use]
    pub fn producer_config(&self, cal: &Calibration) -> ProducerConfig {
        ProducerConfig {
            semantics: self.semantics,
            batch_size: self.batch_size,
            poll_interval: self.poll_interval,
            message_timeout: self.message_timeout,
            // Let count-based batching dominate, but never hold a partial
            // batch past a third of the message timeout.
            linger: (self.message_timeout / 3).min(SimDuration::from_millis(800)),
            max_retries: cal.max_retries,
            request_timeout: cal.request_timeout,
            max_in_flight: cal.max_in_flight,
            buffer_capacity: cal.buffer_capacity,
            stall_backoffs: cal.stall_backoffs,
            stall_patience: cal.stall_patience,
            host: cal.host,
        }
    }

    /// The full run specification for `n_messages` source messages.
    #[must_use]
    pub fn to_run_spec(&self, cal: &Calibration, n_messages: u64) -> RunSpec {
        let rate = if self.poll_interval.is_zero() {
            RateSpec::FullLoad
        } else {
            RateSpec::Interval(self.poll_interval)
        };
        let mut cluster = cal.cluster.clone();
        cluster.replication.factor = self.replication_factor;
        cluster.replication.allow_unclean = self.allow_unclean;
        let (faults, failover_after) = if self.fault_downtime.is_zero() {
            (Vec::new(), None)
        } else {
            // Crash the leader of partition 0 (broker 0 by placement).
            (
                vec![BrokerFault::crash(
                    BrokerId(0),
                    Self::FAULT_AT,
                    self.fault_downtime,
                )],
                Some(Self::FAILOVER_DETECT),
            )
        };
        RunSpec {
            producer: self.producer_config(cal),
            cluster,
            source: SourceSpec {
                n_messages,
                size: SizeSpec::Fixed(self.message_size),
                rate,
                timeliness: self.timeliness,
            },
            network: ConditionTimeline::constant(NetCondition::new(self.delay, self.loss_rate)),
            channel: cal.channel.clone(),
            wire: cal.wire,
            config_schedule: Vec::new(),
            max_duration: SimDuration::from_secs(7_200),
            outages: Vec::new(),
            faults,
            failover_after,
            online: None,
        }
    }

    /// Runs the experiment with `n_messages` source messages.
    #[must_use]
    pub fn run(&self, cal: &Calibration, n_messages: u64, seed: u64) -> ExperimentResult {
        self.run_pooled(cal, n_messages, seed, &mut RunArena::new())
    }

    /// Runs the experiment untraced, drawing run buffers from `arena`.
    ///
    /// A sweep worker that executes many points passes one arena through
    /// all of them, so the steady state allocates nothing per run. The
    /// result is bit-identical to [`ExperimentPoint::run`] with the same
    /// seed — pooling is observational only.
    #[must_use]
    pub fn run_pooled(
        &self,
        cal: &Calibration,
        n_messages: u64,
        seed: u64,
        arena: &mut RunArena,
    ) -> ExperimentResult {
        let spec = self.to_run_spec(cal, n_messages);
        let outcome = KafkaRun::new(spec, seed).execute_pooled(arena);
        ExperimentResult {
            point: self.clone(),
            p_loss: outcome.report.p_loss(),
            p_dup: outcome.report.p_dup(),
            report: outcome.report,
            producer: outcome.producer,
            seed,
        }
    }

    /// Runs the experiment with a trace sink attached to the simulated
    /// pipeline. Returns the result plus the sink, which now holds whatever
    /// it collected (events for an [`obs::RingBufferSink`], a registry for
    /// an [`obs::MetricsSink`]).
    #[must_use]
    pub fn run_traced(
        &self,
        cal: &Calibration,
        n_messages: u64,
        seed: u64,
        sink: Box<dyn obs::TraceSink>,
    ) -> (ExperimentResult, Box<dyn obs::TraceSink>) {
        let spec = self.to_run_spec(cal, n_messages);
        let (outcome, sink) = KafkaRun::new(spec, seed).execute_traced(sink);
        let result = ExperimentResult {
            point: self.clone(),
            p_loss: outcome.report.p_loss(),
            p_dup: outcome.report.p_dup(),
            report: outcome.report,
            producer: outcome.producer,
            seed,
        };
        (result, sink)
    }
}

/// The outcome of one experiment: the measured reliability metrics plus the
/// full report for deeper analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The features that were run.
    pub point: ExperimentPoint,
    /// Measured `P_l`.
    pub p_loss: f64,
    /// Measured `P_d`.
    pub p_dup: f64,
    /// The full audit report.
    pub report: DeliveryReport,
    /// Producer counters.
    pub producer: ProducerStats,
    /// Seed the run used.
    pub seed: u64,
}

impl ExperimentResult {
    /// The training row for the prediction model:
    /// `(features, [P_l, P_d])`.
    #[must_use]
    pub fn training_row(&self) -> (Vec<f64>, Vec<f64>) {
        (self.point.feature_vector(), vec![self.p_loss, self.p_dup])
    }
}

/// Converts results into parallel feature/target row vectors for model
/// training.
#[must_use]
pub fn to_training_rows(results: &[ExperimentResult]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    results.iter().map(ExperimentResult::training_row).unzip()
}

/// The instant an experiment's network trace considers "the end" — used by
/// Table II style runs (re-exported for convenience).
#[must_use]
pub fn trace_end(timeline: &ConditionTimeline) -> SimTime {
    timeline.last_change()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_layout() {
        let p = ExperimentPoint {
            message_size: 100,
            timeliness: Some(SimDuration::from_millis(250)),
            delay: SimDuration::from_millis(100),
            loss_rate: 0.19,
            semantics: DeliverySemantics::AtMostOnce,
            batch_size: 4,
            poll_interval: SimDuration::from_millis(90),
            message_timeout: SimDuration::from_millis(500),
            replication_factor: 3,
            fault_downtime: SimDuration::from_millis(4_000),
            allow_unclean: true,
        };
        assert_eq!(
            p.feature_vector(),
            vec![100.0, 250.0, 100.0, 0.19, 0.0, 4.0, 90.0, 500.0, 3.0, 4000.0, 1.0]
        );
        assert_eq!(p.feature_vector().len(), ExperimentPoint::FEATURES);
    }

    #[test]
    fn normal_case_classification() {
        let mut p = ExperimentPoint::default();
        assert!(p.is_normal_case());
        p.loss_rate = 0.05;
        assert!(!p.is_normal_case());
        p.loss_rate = 0.0;
        p.delay = SimDuration::from_millis(300);
        assert!(!p.is_normal_case());
    }

    #[test]
    fn clean_point_runs_without_loss() {
        let cal = Calibration::paper();
        let result = ExperimentPoint::default().run(&cal, 300, 1);
        assert_eq!(result.report.n_source, 300);
        assert!(result.p_loss < 0.02, "P_l = {}", result.p_loss);
        assert_eq!(result.p_dup, 0.0);
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let cal = Calibration::paper();
        let p = ExperimentPoint {
            loss_rate: 0.10,
            delay: SimDuration::from_millis(50),
            ..ExperimentPoint::default()
        };
        let a = p.run(&cal, 300, 9);
        let b = p.run(&cal, 300, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn traced_run_matches_untraced_and_captures_the_lifecycle() {
        let cal = Calibration::paper();
        let p = ExperimentPoint {
            loss_rate: 0.10,
            delay: SimDuration::from_millis(50),
            ..ExperimentPoint::default()
        };
        let plain = p.run(&cal, 200, 9);
        let (traced, mut sink) =
            p.run_traced(&cal, 200, 9, Box::new(obs::RingBufferSink::new(1 << 20)));
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let events = sink.drain();
        let enqueued = events
            .iter()
            .filter(|e| matches!(e, obs::TraceEvent::Enqueued { .. }))
            .count() as u64;
        assert_eq!(enqueued, 200, "every source message is traced");
        let report = obs::TimelineReport::reconstruct(&events);
        let audit = kafkasim::crosscheck(&traced.report, &report);
        assert!(audit.fully_explains(), "{:?}", audit.discrepancies);
    }

    #[test]
    fn training_rows_align() {
        let cal = Calibration::paper();
        let results: Vec<ExperimentResult> = (0..3)
            .map(|i| {
                ExperimentPoint {
                    message_size: 100 + 100 * i,
                    ..ExperimentPoint::default()
                }
                .run(&cal, 100, i)
            })
            .collect();
        let (x, y) = to_training_rows(&results);
        assert_eq!(x.len(), 3);
        assert_eq!(y.len(), 3);
        assert_eq!(x[1][0], 200.0);
        assert_eq!(y[0].len(), 2);
    }

    #[test]
    fn producer_config_inherits_calibration() {
        let cal = Calibration::paper();
        let cfg = ExperimentPoint::default().producer_config(&cal);
        assert_eq!(cfg.max_retries, cal.max_retries);
        assert_eq!(cfg.host, cal.host);
        cfg.validate().unwrap();
    }
}
