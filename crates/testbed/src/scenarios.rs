//! The three Table II application scenarios.
//!
//! The dynamic-configuration evaluation (§V) runs three kinds of data
//! streams through the unstable Fig. 9 network:
//!
//! | Stream | Character | Weights ω (φ, μ, 1−P_l, 1−P_d) |
//! |---|---|---|
//! | Social-media messages | fast delivery, lowest loss | 0.4, 0.3, 0.2, 0.1 |
//! | Web-server access records | timeliness lax, completeness strict | 0.1, 0.1, 0.7, 0.1 |
//! | Game-traffic messages | tiny, real-time, accurate | 0.2, 0.4, 0.2, 0.2 |

use desim::{SimDuration, SimTime};
use kafkasim::source::{RateSpec, SizeSpec, SourceSpec};
use serde::{Deserialize, Serialize};

/// KPI weights `(ω₁, ω₂, ω₃, ω₄)` for `(φ, μ, 1−P_l, 1−P_d)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KpiWeights {
    /// Weight of bandwidth utilisation `φ`.
    pub bandwidth: f64,
    /// Weight of service rate `μ`.
    pub service_rate: f64,
    /// Weight of `1 − P_l`.
    pub no_loss: f64,
    /// Weight of `1 − P_d`.
    pub no_duplicate: f64,
}

impl KpiWeights {
    /// Creates weights, checking they sum to 1.
    ///
    /// # Errors
    ///
    /// Returns an error message when any weight is negative or the sum is
    /// not 1 (within 1e-9).
    pub fn new(
        bandwidth: f64,
        service_rate: f64,
        no_loss: f64,
        no_duplicate: f64,
    ) -> Result<Self, String> {
        let w = [bandwidth, service_rate, no_loss, no_duplicate];
        if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err("weights must be finite and non-negative".into());
        }
        let sum: f64 = w.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("weights must sum to 1 (got {sum})"));
        }
        Ok(KpiWeights {
            bandwidth,
            service_rate,
            no_loss,
            no_duplicate,
        })
    }

    /// The paper's empirical default `(0.3, 0.3, 0.3, 0.1)`.
    #[must_use]
    pub fn paper_default() -> Self {
        KpiWeights::new(0.3, 0.3, 0.3, 0.1).expect("valid by construction")
    }

    /// Evaluates Eq. 2: `γ = ω₁φ + ω₂μ + ω₃(1−P_l) + ω₄(1−P_d)`.
    #[must_use]
    pub fn gamma(&self, phi: f64, mu: f64, p_loss: f64, p_dup: f64) -> f64 {
        self.bandwidth * phi
            + self.service_rate * mu
            + self.no_loss * (1.0 - p_loss)
            + self.no_duplicate * (1.0 - p_dup)
    }
}

/// One Table II application scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationScenario {
    /// Human-readable name.
    pub name: String,
    /// Message-size model.
    pub size: SizeSpec,
    /// Timeliness requirement `S`.
    pub timeliness: SimDuration,
    /// KPI weights from Table II.
    pub weights: KpiWeights,
    /// Workload `λ(t)` breakpoints in messages/second.
    pub rate_timeline: Vec<(SimTime, f64)>,
    /// The minimum KPI `γ` the user demands of a configuration.
    pub gamma_requirement: f64,
}

impl ApplicationScenario {
    /// Social-media text messages: "must be delivered quickly with the
    /// lowest loss rate".
    #[must_use]
    pub fn social_media() -> Self {
        ApplicationScenario {
            name: "messages from social media".into(),
            size: SizeSpec::Uniform {
                low: 120,
                high: 400,
            },
            timeliness: SimDuration::from_secs(2),
            weights: KpiWeights::new(0.4, 0.3, 0.2, 0.1).expect("valid"),
            rate_timeline: bursty_rate(42.0, 16.0),
            gamma_requirement: 0.80,
        }
    }

    /// Web-server access records: "timeliness … is not strict but the
    /// messages are required to be complete, while duplicates can be
    /// acceptable due to idempotent processes".
    #[must_use]
    pub fn web_access_records() -> Self {
        ApplicationScenario {
            name: "web server access records".into(),
            size: SizeSpec::Fixed(200),
            timeliness: SimDuration::from_secs(30),
            weights: KpiWeights::new(0.1, 0.1, 0.7, 0.1).expect("valid"),
            rate_timeline: bursty_rate(30.0, 10.0),
            gamma_requirement: 0.85,
        }
    }

    /// Game-traffic messages: "small … delivered accurately in real-time".
    #[must_use]
    pub fn game_traffic() -> Self {
        ApplicationScenario {
            name: "game traffic messages".into(),
            size: SizeSpec::Uniform { low: 40, high: 100 },
            timeliness: SimDuration::from_millis(300),
            weights: KpiWeights::new(0.2, 0.4, 0.2, 0.2).expect("valid"),
            rate_timeline: bursty_rate(40.0, 12.0),
            gamma_requirement: 0.80,
        }
    }

    /// All three Table II scenarios, in the table's column order.
    #[must_use]
    pub fn table2() -> Vec<ApplicationScenario> {
        vec![
            ApplicationScenario::social_media(),
            ApplicationScenario::web_access_records(),
            ApplicationScenario::game_traffic(),
        ]
    }

    /// The scenario's stable kebab-case identifier, used by fleet
    /// population specs (`scenarios/fleet.toml`) to reference Table II
    /// classes by name.
    ///
    /// # Example
    ///
    /// ```
    /// use testbed::scenarios::ApplicationScenario;
    ///
    /// assert_eq!(ApplicationScenario::social_media().slug(), "social-media");
    /// ```
    #[must_use]
    pub fn slug(&self) -> &'static str {
        // Matched on the human-readable name so the three constructors
        // stay the single source of truth.
        match self.name.as_str() {
            "messages from social media" => "social-media",
            "web server access records" => "web-access-records",
            "game traffic messages" => "game-traffic",
            _ => "custom",
        }
    }

    /// Looks a Table II scenario up by its [`slug`](Self::slug).
    ///
    /// # Example
    ///
    /// ```
    /// use testbed::scenarios::ApplicationScenario;
    ///
    /// let game = ApplicationScenario::by_slug("game-traffic").unwrap();
    /// assert!(game.mean_size() < 100);
    /// assert!(ApplicationScenario::by_slug("nope").is_none());
    /// ```
    #[must_use]
    pub fn by_slug(slug: &str) -> Option<ApplicationScenario> {
        ApplicationScenario::table2()
            .into_iter()
            .find(|s| s.slug() == slug)
    }

    /// Projects the scenario into a fleet [`kafkasim::fleet::StreamClass`] at the given
    /// per-producer rate.
    ///
    /// A Table II scenario describes *one aggregate stream* (its
    /// `rate_timeline` peaks around 40–55 msg/s); a fleet splits that
    /// stream across many small producers, so the per-producer rate is a
    /// separate knob supplied by the fleet spec.
    ///
    /// # Example
    ///
    /// ```
    /// use testbed::scenarios::ApplicationScenario;
    ///
    /// let class = ApplicationScenario::social_media().stream_class(1.5);
    /// assert_eq!(class.name, "social-media");
    /// assert_eq!(class.rate_hz, 1.5);
    /// ```
    #[must_use]
    pub fn stream_class(&self, rate_hz: f64) -> kafkasim::fleet::StreamClass {
        kafkasim::fleet::StreamClass {
            name: self.slug().to_string(),
            size: self.size,
            rate_hz,
            timeliness: self.timeliness,
        }
    }

    /// The source spec feeding `n_messages` through this workload.
    #[must_use]
    pub fn source(&self, n_messages: u64) -> SourceSpec {
        SourceSpec {
            n_messages,
            size: self.size,
            rate: RateSpec::Timeline(self.rate_timeline.clone()),
            timeliness: Some(self.timeliness),
        }
    }

    /// Mean message size of the scenario.
    #[must_use]
    pub fn mean_size(&self) -> u64 {
        self.size.mean().round() as u64
    }
}

/// A deterministic bursty `λ(t)`: alternating 60-second periods of `base`
/// and `base + burst` messages/second over a 10-minute horizon.
fn bursty_rate(base: f64, burst: f64) -> Vec<(SimTime, f64)> {
    (0..10)
        .map(|i| {
            let rate = if i % 2 == 0 { base } else { base + burst };
            (SimTime::from_secs(i * 60), rate)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights_sum_to_one() {
        for s in ApplicationScenario::table2() {
            let w = s.weights;
            let sum = w.bandwidth + w.service_rate + w.no_loss + w.no_duplicate;
            assert!((sum - 1.0).abs() < 1e-12, "{}", s.name);
        }
        let d = KpiWeights::paper_default();
        assert_eq!((d.bandwidth, d.no_duplicate), (0.3, 0.1));
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(KpiWeights::new(0.5, 0.5, 0.5, 0.5).is_err());
        assert!(KpiWeights::new(-0.1, 0.5, 0.5, 0.1).is_err());
        assert!(KpiWeights::new(f64::NAN, 0.4, 0.3, 0.3).is_err());
    }

    #[test]
    fn gamma_matches_equation_two() {
        let w = KpiWeights::paper_default();
        // φ=1, μ=1, P_l=0, P_d=0 → γ = 1.
        assert!((w.gamma(1.0, 1.0, 0.0, 0.0) - 1.0).abs() < 1e-12);
        // Perfect reliability but zero performance → ω₃ + ω₄.
        assert!((w.gamma(0.0, 0.0, 0.0, 0.0) - 0.4).abs() < 1e-12);
        // Losing everything costs ω₃.
        assert!((w.gamma(1.0, 1.0, 1.0, 0.0) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn scenario_characteristics_match_paper() {
        let game = ApplicationScenario::game_traffic();
        assert!(game.mean_size() < 100, "game messages are under 100 bytes");
        assert!(game.timeliness < SimDuration::from_secs(1));
        let web = ApplicationScenario::web_access_records();
        assert!(
            web.weights.no_loss > 0.5,
            "web logs prioritise completeness"
        );
        assert!(web.timeliness > SimDuration::from_secs(10));
        let social = ApplicationScenario::social_media();
        assert!(social.weights.bandwidth >= social.weights.no_loss);
    }

    #[test]
    fn source_spec_is_valid() {
        for s in ApplicationScenario::table2() {
            s.source(1_000).validate().unwrap();
        }
    }

    #[test]
    fn slugs_resolve_round_trip() {
        for s in ApplicationScenario::table2() {
            let found = ApplicationScenario::by_slug(s.slug()).unwrap();
            assert_eq!(found, s);
        }
        assert!(ApplicationScenario::by_slug("unknown").is_none());
        let class = ApplicationScenario::web_access_records().stream_class(0.5);
        assert_eq!(class.name, "web-access-records");
        assert_eq!(class.size, ApplicationScenario::web_access_records().size);
    }

    #[test]
    fn bursty_rate_alternates() {
        let r = bursty_rate(10.0, 5.0);
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].1, 10.0);
        assert_eq!(r[1].1, 15.0);
        assert_eq!(r[1].0, SimTime::from_secs(60));
    }
}
