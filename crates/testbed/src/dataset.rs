//! Persistence of experiment results: the training data a model was fitted
//! on is an artefact worth keeping (the paper publishes its datasets and
//! configuration files on GitHub).
//!
//! A [`ResultSet`] wraps a batch of [`ExperimentResult`]s with the
//! provenance needed to reproduce them — the calibration, the per-point
//! message count and the base seed — and round-trips through JSON.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::calibration::Calibration;
use crate::experiment::{to_training_rows, ExperimentResult};

/// A persisted batch of experiment results with its provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Schema version for forwards compatibility.
    pub version: u32,
    /// The calibration the experiments ran under.
    pub calibration: Calibration,
    /// Messages per experiment point.
    pub messages_per_point: u64,
    /// Base seed of the sweep.
    pub base_seed: u64,
    /// The results themselves.
    pub results: Vec<ExperimentResult>,
}

/// Error loading a result set.
#[derive(Debug)]
pub enum LoadError {
    /// Reading the file failed.
    Io(io::Error),
    /// The contents were not a valid result set.
    Parse(serde_json::Error),
    /// The file was produced by an incompatible schema version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this library writes.
        expected: u32,
    },
    /// The file's calibration differs from the expected one, so its labels
    /// are not comparable.
    CalibrationMismatch,
}

impl core::fmt::Display for LoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse(e) => write!(f, "parse error: {e}"),
            LoadError::VersionMismatch { found, expected } => {
                write!(f, "schema version {found}, expected {expected}")
            }
            LoadError::CalibrationMismatch => {
                write!(f, "result set was collected under a different calibration")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<serde_json::Error> for LoadError {
    fn from(e: serde_json::Error) -> Self {
        LoadError::Parse(e)
    }
}

impl ResultSet {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// Wraps results with their provenance.
    #[must_use]
    pub fn new(
        calibration: Calibration,
        messages_per_point: u64,
        base_seed: u64,
        results: Vec<ExperimentResult>,
    ) -> Self {
        ResultSet {
            version: ResultSet::VERSION,
            calibration,
            messages_per_point,
            base_seed,
            results,
        }
    }

    /// Serialises to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (effectively unreachable).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a result set, checking the schema version.
    ///
    /// # Errors
    ///
    /// [`LoadError::Parse`] or [`LoadError::VersionMismatch`].
    pub fn from_json(json: &str) -> Result<Self, LoadError> {
        let set: ResultSet = serde_json::from_str(json)?;
        if set.version != ResultSet::VERSION {
            return Err(LoadError::VersionMismatch {
                found: set.version,
                expected: ResultSet::VERSION,
            });
        }
        Ok(set)
    }

    /// Writes the set to a file.
    ///
    /// # Errors
    ///
    /// I/O errors from the filesystem.
    pub fn save(&self, path: &Path) -> Result<(), LoadError> {
        fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads a set from a file.
    ///
    /// # Errors
    ///
    /// See [`LoadError`].
    pub fn load(path: &Path) -> Result<Self, LoadError> {
        ResultSet::from_json(&fs::read_to_string(path)?)
    }

    /// Loads a set and verifies it was collected under `expected`
    /// calibration.
    ///
    /// # Errors
    ///
    /// [`LoadError::CalibrationMismatch`] in addition to the load errors.
    pub fn load_for(path: &Path, expected: &Calibration) -> Result<Self, LoadError> {
        let set = ResultSet::load(path)?;
        if &set.calibration != expected {
            return Err(LoadError::CalibrationMismatch);
        }
        Ok(set)
    }

    /// The training rows `(features, [P_l, P_d])` of the stored results.
    #[must_use]
    pub fn training_rows(&self) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        to_training_rows(&self.results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentPoint;
    use crate::sweep::run_sweep;

    fn tiny_set() -> ResultSet {
        let cal = Calibration::paper();
        let points = vec![ExperimentPoint::default(); 3];
        let results = run_sweep(&points, &cal, 100, 5, 2);
        ResultSet::new(cal, 100, 5, results)
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let set = tiny_set();
        let back = ResultSet::from_json(&set.to_json().unwrap()).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn file_round_trip() {
        let set = tiny_set();
        let dir = std::env::temp_dir().join("kafka_predict_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.json");
        set.save(&path).unwrap();
        let back = ResultSet::load(&path).unwrap();
        assert_eq!(set, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_detected() {
        let mut set = tiny_set();
        set.version = 999;
        let json = serde_json::to_string(&set).unwrap();
        match ResultSet::from_json(&json) {
            Err(LoadError::VersionMismatch { found: 999, .. }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn calibration_mismatch_detected() {
        let set = tiny_set();
        let dir = std::env::temp_dir().join("kafka_predict_dataset_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.json");
        set.save(&path).unwrap();
        let mut other = Calibration::paper();
        other.max_retries += 1;
        match ResultSet::load_for(&path, &other) {
            Err(LoadError::CalibrationMismatch) => {}
            o => panic!("expected calibration mismatch, got {o:?}"),
        }
        assert!(ResultSet::load_for(&path, &Calibration::paper()).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn training_rows_align_with_results() {
        let set = tiny_set();
        let (x, y) = set.training_rows();
        assert_eq!(x.len(), set.results.len());
        assert_eq!(y.len(), set.results.len());
        assert_eq!(y[0], vec![set.results[0].p_loss, set.results[0].p_dup]);
    }

    #[test]
    fn missing_file_is_io_error() {
        match ResultSet::load(Path::new("/nonexistent/nowhere.json")) {
            Err(LoadError::Io(_)) => {}
            o => panic!("expected io error, got {o:?}"),
        }
    }
}
