//! The frozen "fixed hardware" of the testbed.
//!
//! The paper assumes "the hardware resources for a producer are fixed" and
//! studies configuration and network effects on that fixed machine. The
//! [`Calibration`] struct is that machine: the producer's CPU and I/O cost
//! model, the link and TCP parameters of the Docker bridge network, the
//! cluster layout (3 brokers) and the protocol sizing. It is calibrated
//! once against the paper's quantitative anchors (see `EXPERIMENTS.md`) and
//! then reused, unchanged, by every experiment.
//!
//! The authors' testbed is much slower than a production Kafka deployment —
//! their Fig. 6 implies a full-load producer capacity of a few dozen
//! messages per second (three brokers, producer and consumer all sharing
//! one host, per-message Python-side handling). The constants below model
//! hardware of that scale; the *relationships* between configuration,
//! network and reliability are what the reproduction preserves.

use desim::SimDuration;
use kafkasim::broker::BrokerModel;
use kafkasim::cluster::{ClusterSpec, ReplicationSpec};
use kafkasim::config::HostModel;
use kafkasim::wire::WireFormat;
use netsim::link::LinkConfig;
use netsim::tcp::TcpConfig;
use netsim::ChannelConfig;
use netsim::{DelayModel, LossModel};
use serde::{Deserialize, Serialize};

/// The complete fixed environment of the testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Producer host cost model (CPU serialisation + source I/O).
    pub host: HostModel,
    /// Transport parameters (link + TCP + reconnect cost).
    pub channel: ChannelConfig,
    /// Cluster layout.
    pub cluster: ClusterSpec,
    /// Protocol sizing.
    pub wire: WireFormat,
    /// Default retry budget `τ_r`.
    pub max_retries: u32,
    /// Default per-request response timeout.
    pub request_timeout: SimDuration,
    /// Default in-flight request limit.
    pub max_in_flight: usize,
    /// Default RTO-backoff stall threshold.
    pub stall_backoffs: u32,
    /// Default no-progress patience before recycling a connection.
    pub stall_patience: SimDuration,
    /// Default accumulator capacity in messages.
    pub buffer_capacity: usize,
    /// Messages per experiment data point (the paper uses 10⁶; the default
    /// here trades precision for grid-sweep speed and is overridable).
    pub default_messages: u64,
}

impl Calibration {
    /// The frozen calibration used by every reproduction experiment.
    #[must_use]
    pub fn paper() -> Self {
        Calibration {
            host: HostModel {
                // ~22 msg/s single-message service rate at M = 100 B,
                // falling toward ~16 msg/s at M = 1000 B — the scale the
                // paper's Figs. 5–6 imply for their containerised producer.
                cpu_per_message: SimDuration::from_millis(18),
                cpu_per_byte_ns: 20_000.0,
                cpu_per_request: SimDuration::from_millis(25),
                jittered_service: true,
                // Full-load polling: λ_max(M) = 1/(16 ms + M / 12 kB/s);
                // ≈ 41 msg/s at M = 100 B (overload ×1.8) and ≈ 10 msg/s at
                // M = 1000 B (stable), which reproduces Fig. 4's decline.
                io_per_message: SimDuration::from_millis(16),
                io_bytes_per_sec: 12_000.0,
            },
            channel: ChannelConfig {
                tcp: TcpConfig {
                    mss: 1448,
                    header_bytes: 66,
                    ack_bytes: 66,
                    initial_cwnd: 10.0,
                    initial_ssthresh: 64.0,
                    max_cwnd: 128.0,
                    rto_initial: SimDuration::from_millis(1_000),
                    rto_min: SimDuration::from_millis(200),
                    rto_max: SimDuration::from_secs(16),
                    send_buffer: 16 * 1024,
                    early_retransmit: true,
                },
                link: LinkConfig {
                    // The Docker bridge is fast; loss/delay come from NetEm.
                    rate_bytes_per_sec: 12_500_000.0,
                    max_queue_delay: SimDuration::from_millis(500),
                    delay: DelayModel::constant(SimDuration::from_micros(500)),
                    loss: LossModel::None,
                },
                reconnect_delay: SimDuration::from_millis(20),
            },
            cluster: ClusterSpec {
                brokers: 3,
                partitions: 3,
                broker_model: BrokerModel {
                    process_per_request: SimDuration::from_millis(2),
                    process_per_record: SimDuration::from_micros(200),
                },
                replication: ReplicationSpec::default(),
            },
            wire: WireFormat::default(),
            max_retries: 5,
            request_timeout: SimDuration::from_millis(1_000),
            max_in_flight: 5,
            stall_backoffs: 4,
            stall_patience: SimDuration::from_millis(2_500),
            buffer_capacity: 200_000,
            default_messages: 20_000,
        }
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_load_overloads_small_messages_only() {
        let cal = Calibration::paper();
        // λ_max and μ at M = 100: overloaded.
        let lambda_small = 1.0 / cal.host.fetch_time(100).as_secs_f64();
        let mu_small = 1.0 / cal.host.service_time(1, 100).as_secs_f64();
        assert!(
            lambda_small > 1.3 * mu_small,
            "full load must overload at M=100: λ={lambda_small:.1} μ={mu_small:.1}"
        );
        // At M = 1000: stable.
        let lambda_large = 1.0 / cal.host.fetch_time(1000).as_secs_f64();
        let mu_large = 1.0 / cal.host.service_time(1, 1000).as_secs_f64();
        assert!(
            lambda_large < mu_large,
            "full load must be stable at M=1000: λ={lambda_large:.1} μ={mu_large:.1}"
        );
    }

    #[test]
    fn overload_floor_matches_fig6_anchor() {
        // Fig. 6: P_l > 45% at δ = 0 — the sustained-overload floor
        // 1 − μ/λ at M = 100 must sit above 0.4.
        let cal = Calibration::paper();
        let lambda = 1.0 / cal.host.fetch_time(100).as_secs_f64();
        let mu = 1.0 / cal.host.service_time(1, 100).as_secs_f64();
        let floor = 1.0 - mu / lambda;
        assert!(
            (0.40..0.60).contains(&floor),
            "overload floor {floor:.2} should be near the paper's 45%"
        );
    }

    #[test]
    fn serde_round_trip() {
        let cal = Calibration::paper();
        let json = serde_json::to_string(&cal).unwrap();
        let back: Calibration = serde_json::from_str(&json).unwrap();
        assert_eq!(cal, back);
    }
}
