//! The §V dynamic-configuration experiment.
//!
//! The paper assumes the network status is known, generates configuration
//! parameters offline for each condition, and has the producer switch
//! configuration every interval (60 s) while an unstable network (Fig. 9)
//! plays out. This module provides:
//!
//! * [`ConfigPlanner`] — the decision function (the prediction-model-driven
//!   planner lives in the `kafka-predict` crate; a [`StaticPlanner`] serves
//!   as the paper's "default configuration" baseline);
//! * [`build_schedule`] — offline generation of the configuration file;
//! * [`run_scenario`] — executing one Table II cell and reporting the
//!   overall rates `R_l` and `R_d` of Eq. 3.

use desim::{SimDuration, SimTime};
use kafkasim::audit::DeliveryReport;
use kafkasim::config::{DeliverySemantics, ProducerConfig};
use kafkasim::runtime::{KafkaRun, OnlineSpec, ProducerStats, RunSpec};
use netsim::{ConditionTimeline, NetCondition};
use serde::{Deserialize, Serialize};

use crate::calibration::Calibration;
use crate::scenarios::ApplicationScenario;

/// Chooses a producer configuration for a known network condition.
///
/// Implementors typically consult a reliability prediction model and the
/// weighted KPI; the trait keeps this crate independent of the model.
pub trait ConfigPlanner {
    /// The configuration to run while `condition` holds.
    fn plan(&self, scenario: &ApplicationScenario, condition: NetCondition) -> ProducerConfig;
}

/// The baseline planner: always the same (default) configuration.
#[derive(Debug, Clone)]
pub struct StaticPlanner(pub ProducerConfig);

impl ConfigPlanner for StaticPlanner {
    fn plan(&self, _scenario: &ApplicationScenario, _condition: NetCondition) -> ProducerConfig {
        self.0.clone()
    }
}

/// The static default configuration of Kafka, as the paper's baseline:
/// `acks=1` with **no retries** (the classic client default), no batching,
/// and a long delivery timeout.
#[must_use]
pub fn default_static_config(cal: &Calibration) -> ProducerConfig {
    ProducerConfig {
        semantics: DeliverySemantics::AtLeastOnce,
        batch_size: 1,
        poll_interval: SimDuration::ZERO,
        message_timeout: SimDuration::from_secs(30),
        linger: SimDuration::ZERO,
        max_retries: 0,
        request_timeout: cal.request_timeout,
        max_in_flight: cal.max_in_flight,
        buffer_capacity: cal.buffer_capacity,
        stall_backoffs: cal.stall_backoffs,
        stall_patience: cal.stall_patience,
        host: cal.host,
    }
}

/// Generates the offline configuration schedule: one decision per
/// `interval`, deduplicating consecutive identical configurations (the
/// paper notes reconfiguration has a cost, so we only switch when the plan
/// changes).
#[must_use]
pub fn build_schedule<P: ConfigPlanner + ?Sized>(
    planner: &P,
    scenario: &ApplicationScenario,
    network: &ConditionTimeline,
    interval: SimDuration,
    horizon: SimTime,
) -> Vec<(SimTime, ProducerConfig)> {
    assert!(!interval.is_zero(), "interval must be positive");
    let mut schedule = Vec::new();
    let mut t = SimTime::ZERO;
    let mut last: Option<ProducerConfig> = None;
    while t <= horizon {
        let condition = network.at(t);
        let cfg = planner.plan(scenario, condition);
        if last.as_ref() != Some(&cfg) {
            schedule.push((t, cfg.clone()));
            last = Some(cfg);
        }
        t += interval;
    }
    schedule
}

/// The outcome of one Table II cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicRunReport {
    /// Scenario name.
    pub scenario: String,
    /// Overall message loss rate `R_l` (Eq. 3).
    pub r_loss: f64,
    /// Overall message duplicate rate `R_d` (Eq. 3).
    pub r_dup: f64,
    /// Fraction of delivered messages that were stale (`latency > S`).
    pub stale_fraction: f64,
    /// Number of configuration switches applied.
    pub config_switches: usize,
    /// The full audit report.
    pub report: DeliveryReport,
    /// Producer counters.
    pub producer: ProducerStats,
}

/// Runs one scenario over `network` with the given planner.
///
/// `n_messages` should roughly equal the workload's mean rate times the
/// trace duration so the run spans the whole trace.
#[must_use]
pub fn run_scenario<P: ConfigPlanner + ?Sized>(
    scenario: &ApplicationScenario,
    network: &ConditionTimeline,
    planner: &P,
    cal: &Calibration,
    n_messages: u64,
    interval: SimDuration,
    seed: u64,
) -> DynamicRunReport {
    let horizon = network.last_change();
    let mut schedule = build_schedule(planner, scenario, network, interval, horizon);
    assert!(!schedule.is_empty(), "planner produced no configuration");
    let initial = schedule.remove(0).1;
    let switches = schedule.len();
    let spec = RunSpec {
        producer: initial,
        cluster: cal.cluster.clone(),
        source: scenario.source(n_messages),
        network: network.clone(),
        channel: cal.channel.clone(),
        wire: cal.wire,
        config_schedule: schedule,
        max_duration: horizon.saturating_since(SimTime::ZERO) + SimDuration::from_secs(600),
        outages: Vec::new(),
        faults: Vec::new(),
        failover_after: None,
        online: None,
    };
    let outcome = KafkaRun::new(spec, seed).execute();
    let delivered = outcome.report.delivered_once + outcome.report.duplicated;
    let stale_fraction = if delivered == 0 {
        0.0
    } else {
        outcome.report.stale as f64 / delivered as f64
    };
    DynamicRunReport {
        scenario: scenario.name.clone(),
        r_loss: outcome.report.p_loss(),
        r_dup: outcome.report.p_dup(),
        stale_fraction,
        config_switches: switches,
        report: outcome.report,
        producer: outcome.producer,
    }
}

/// Runs one scenario with an *online* controller instead of an offline
/// schedule: the EXT-3 configuration loop. The network is replayed but
/// never revealed to the controller, which must infer it from the
/// producer's own statistics.
#[must_use]
pub fn run_scenario_online(
    scenario: &ApplicationScenario,
    network: &ConditionTimeline,
    initial: ProducerConfig,
    online: OnlineSpec,
    cal: &Calibration,
    n_messages: u64,
    seed: u64,
) -> DynamicRunReport {
    let horizon = network.last_change();
    let spec = RunSpec {
        producer: initial,
        cluster: cal.cluster.clone(),
        source: scenario.source(n_messages),
        network: network.clone(),
        channel: cal.channel.clone(),
        wire: cal.wire,
        config_schedule: Vec::new(),
        max_duration: horizon.saturating_since(SimTime::ZERO) + SimDuration::from_secs(600),
        outages: Vec::new(),
        faults: Vec::new(),
        failover_after: None,
        online: Some(online),
    };
    let outcome = KafkaRun::new(spec, seed).execute();
    let delivered = outcome.report.delivered_once + outcome.report.duplicated;
    let stale_fraction = if delivered == 0 {
        0.0
    } else {
        outcome.report.stale as f64 / delivered as f64
    };
    DynamicRunReport {
        scenario: scenario.name.clone(),
        r_loss: outcome.report.p_loss(),
        r_dup: outcome.report.p_dup(),
        stale_fraction,
        config_switches: outcome.producer.online_reconfigurations as usize,
        report: outcome.report,
        producer: outcome.producer,
    }
}

/// Like [`run_scenario_online`], but additionally collects the
/// controller's self-reported metrics (planner memo-cache hits, misses and
/// evictions, replan count — whatever the controller's
/// `export_metrics` publishes) into an [`obs::MetricsSummary`].
///
/// The controller is shared with the runtime through the [`OnlineSpec`]'s
/// `Arc`, so its counters reflect the whole run at the point of export.
#[must_use]
pub fn run_scenario_online_traced(
    scenario: &ApplicationScenario,
    network: &ConditionTimeline,
    initial: ProducerConfig,
    online: OnlineSpec,
    cal: &Calibration,
    n_messages: u64,
    seed: u64,
) -> (DynamicRunReport, obs::MetricsSummary) {
    let controller = std::sync::Arc::clone(&online.controller);
    let report = run_scenario_online(scenario, network, initial, online, cal, n_messages, seed);
    let mut registry = obs::MetricsRegistry::new();
    controller.export_metrics(&mut registry);
    (report, registry.summary())
}

/// Like [`run_scenario_online`], but with full observability attached:
/// `sink` receives every trace event of the run (so timelines, metrics
/// and per-window KPI series can be derived from it afterwards) and
/// `prof` records wall-clock spans across the simulator, the planner and
/// the memo cache. Pass a disabled profiler for a plain traced run.
///
/// Returns the run report, the sink (with whatever it retained), and the
/// controller's self-reported metrics summary.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_scenario_online_profiled(
    scenario: &ApplicationScenario,
    network: &ConditionTimeline,
    initial: ProducerConfig,
    online: OnlineSpec,
    cal: &Calibration,
    n_messages: u64,
    seed: u64,
    sink: Box<dyn obs::TraceSink>,
    prof: obs::Profiler,
) -> (
    DynamicRunReport,
    Box<dyn obs::TraceSink>,
    obs::MetricsSummary,
) {
    let controller = std::sync::Arc::clone(&online.controller);
    let horizon = network.last_change();
    let spec = RunSpec {
        producer: initial,
        cluster: cal.cluster.clone(),
        source: scenario.source(n_messages),
        network: network.clone(),
        channel: cal.channel.clone(),
        wire: cal.wire,
        config_schedule: Vec::new(),
        max_duration: horizon.saturating_since(SimTime::ZERO) + SimDuration::from_secs(600),
        outages: Vec::new(),
        faults: Vec::new(),
        failover_after: None,
        online: Some(online),
    };
    let (outcome, sink) = KafkaRun::new(spec, seed).execute_profiled(sink, prof);
    let delivered = outcome.report.delivered_once + outcome.report.duplicated;
    let stale_fraction = if delivered == 0 {
        0.0
    } else {
        outcome.report.stale as f64 / delivered as f64
    };
    let report = DynamicRunReport {
        scenario: scenario.name.clone(),
        r_loss: outcome.report.p_loss(),
        r_dup: outcome.report.p_dup(),
        stale_fraction,
        config_switches: outcome.producer.online_reconfigurations as usize,
        report: outcome.report,
        producer: outcome.producer,
    };
    let mut registry = obs::MetricsRegistry::new();
    controller.export_metrics(&mut registry);
    (report, sink, registry.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimRng;
    use netsim::trace::{generate_trace, TraceConfig};

    fn short_trace(seed: u64) -> ConditionTimeline {
        let cfg = TraceConfig {
            duration: SimDuration::from_secs(120),
            interval: SimDuration::from_secs(10),
            ..TraceConfig::default()
        };
        generate_trace(&cfg, &mut SimRng::seed_from_u64(seed))
            .unwrap()
            .timeline
    }

    #[test]
    fn schedule_dedupes_consecutive_configs() {
        let cal = Calibration::paper();
        let planner = StaticPlanner(default_static_config(&cal));
        let scenario = ApplicationScenario::web_access_records();
        let network = short_trace(1);
        let schedule = build_schedule(
            &planner,
            &scenario,
            &network,
            SimDuration::from_secs(60),
            network.last_change(),
        );
        assert_eq!(schedule.len(), 1, "static planner yields one entry");
        assert_eq!(schedule[0].0, SimTime::ZERO);
    }

    /// A toy planner that batches whenever the network is lossy.
    struct LossyBatcher(Calibration);

    impl ConfigPlanner for LossyBatcher {
        fn plan(&self, _s: &ApplicationScenario, c: NetCondition) -> ProducerConfig {
            let mut cfg = default_static_config(&self.0);
            cfg.max_retries = 3;
            if c.loss_rate > 0.05 {
                cfg.batch_size = 6;
            }
            cfg
        }
    }

    #[test]
    fn adaptive_planner_switches_configs() {
        let cal = Calibration::paper();
        let planner = LossyBatcher(cal.clone());
        let scenario = ApplicationScenario::web_access_records();
        let network = short_trace(3);
        let schedule = build_schedule(
            &planner,
            &scenario,
            &network,
            SimDuration::from_secs(10),
            network.last_change(),
        );
        assert!(
            schedule.len() > 1,
            "the trace's loss bursts should force switches"
        );
    }

    #[test]
    fn run_scenario_produces_consistent_rates() {
        let cal = Calibration::paper();
        let planner = StaticPlanner(default_static_config(&cal));
        let scenario = ApplicationScenario::web_access_records();
        let network = short_trace(5);
        let report = run_scenario(
            &scenario,
            &network,
            &planner,
            &cal,
            600,
            SimDuration::from_secs(60),
            11,
        );
        let r = &report.report;
        assert_eq!(r.delivered_once + r.lost + r.duplicated, r.n_source);
        assert!((0.0..=1.0).contains(&report.r_loss));
        assert!((0.0..=1.0).contains(&report.r_dup));
    }

    /// A controller that never reconfigures but counts its invocations
    /// and publishes them through `export_metrics`.
    struct CountingController(std::sync::atomic::AtomicU64);

    impl kafkasim::runtime::OnlineController for CountingController {
        fn decide(
            &self,
            _stats: &kafkasim::runtime::WindowStats,
            _current: &ProducerConfig,
        ) -> Option<ProducerConfig> {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            None
        }

        fn export_metrics(&self, registry: &mut obs::MetricsRegistry) {
            registry.add_to_counter(
                "test-decides",
                self.0.load(std::sync::atomic::Ordering::Relaxed),
            );
        }
    }

    #[test]
    fn traced_online_run_surfaces_controller_metrics() {
        let cal = Calibration::paper();
        let scenario = ApplicationScenario::web_access_records();
        let network = short_trace(9);
        let online = OnlineSpec {
            interval: SimDuration::from_secs(30),
            controller: std::sync::Arc::new(CountingController(std::sync::atomic::AtomicU64::new(
                0,
            ))),
        };
        let (report, metrics) = run_scenario_online_traced(
            &scenario,
            &network,
            default_static_config(&cal),
            online,
            &cal,
            300,
            17,
        );
        assert_eq!(
            report.report.n_source, 300,
            "the run itself must be unaffected by tracing"
        );
        let decides = metrics.counters.get("test-decides").copied().unwrap_or(0);
        assert!(decides > 0, "controller metrics must reach the summary");
    }

    #[test]
    fn retries_beat_the_no_retry_default_on_a_lossy_trace() {
        let cal = Calibration::paper();
        let scenario = ApplicationScenario::web_access_records();
        let network = short_trace(7);
        let default = run_scenario(
            &scenario,
            &network,
            &StaticPlanner(default_static_config(&cal)),
            &cal,
            600,
            SimDuration::from_secs(60),
            13,
        );
        let adaptive = run_scenario(
            &scenario,
            &network,
            &LossyBatcher(cal.clone()),
            &cal,
            600,
            SimDuration::from_secs(60),
            13,
        );
        assert!(
            adaptive.r_loss <= default.r_loss,
            "adaptive {} vs default {}",
            adaptive.r_loss,
            default.r_loss
        );
    }
}
