//! `testbed` — the experiment harness of the reproduction.
//!
//! Mirrors the paper's testbed methodology (§III-E/F) on top of the
//! simulated stack: each experiment starts a **fresh** cluster and topic,
//! feeds `N` uniquely-keyed messages through the producer while network
//! faults are injected, drains, and audits — yielding one `(features →
//! P_l, P_d)` data point.
//!
//! Modules:
//!
//! * [`calibration`] — the frozen "fixed hardware" constants shared by every
//!   experiment (host cost model, link, TCP, cluster, protocol sizing).
//! * [`experiment`] — [`experiment::ExperimentPoint`]: the paper's feature
//!   tuple `(M, S, D, L, semantics, B, δ, T_o)` — extended beyond the
//!   paper with a replication factor, an injected broker-crash downtime
//!   and an unclean-election switch — and its execution.
//! * [`sweep`] — parallel execution of experiment grids.
//! * [`dataset`] — persistence of collected results with provenance.
//! * [`sensitivity`] — the §III-D ±50 % feature-selection analysis.
//! * [`scenarios`] — the three Table II application workloads (social-media
//!   messages, web-server access records, game traffic) with their KPI
//!   weights.
//! * [`dynamic`] — the §V dynamic-configuration experiment: replay a Fig. 9
//!   network trace against a [`dynamic::ConfigPlanner`] and compare against
//!   the static default configuration.
//!
//! # Example
//!
//! ```
//! use testbed::experiment::ExperimentPoint;
//! use testbed::calibration::Calibration;
//!
//! let cal = Calibration::paper();
//! let point = ExperimentPoint {
//!     replication_factor: 3,
//!     ..ExperimentPoint::default()
//! };
//! let result = point.run(&cal, 500, 42);
//! assert_eq!(result.report.n_source, 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod dataset;
pub mod dynamic;
pub mod experiment;
pub mod scenarios;
pub mod sensitivity;
pub mod sweep;

pub use calibration::Calibration;
pub use experiment::{ExperimentPoint, ExperimentResult};
pub use scenarios::ApplicationScenario;
