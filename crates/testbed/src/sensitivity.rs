//! The paper's feature-selection procedure (§III-D).
//!
//! "Normally, the default settings of Kafka will keep the system running,
//! but far from a well performing one, therefore we select parameters based
//! on a sensitivity analysis. A change in the quantitative parameter's
//! default value of 50% should have observable impact on reliability
//! metrics, otherwise the parameter is neglected."
//!
//! [`analyze`] perturbs each quantitative feature of a baseline
//! [`ExperimentPoint`] by ±50 % and measures the resulting change in
//! `P_l`/`P_d`, producing the evidence table behind the paper's choice of
//! the eight features.

use desim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::calibration::Calibration;
use crate::experiment::ExperimentPoint;
use crate::sweep::run_sweep;

/// The quantitative features the analysis perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Feature {
    /// Message size `M`.
    MessageSize,
    /// Network delay `D`.
    Delay,
    /// Packet loss rate `L`.
    LossRate,
    /// Batch size `B`.
    BatchSize,
    /// Polling interval `δ`.
    PollInterval,
    /// Message timeout `T_o`.
    MessageTimeout,
}

impl Feature {
    /// All perturbable features.
    #[must_use]
    pub fn all() -> [Feature; 6] {
        [
            Feature::MessageSize,
            Feature::Delay,
            Feature::LossRate,
            Feature::BatchSize,
            Feature::PollInterval,
            Feature::MessageTimeout,
        ]
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Feature::MessageSize => "message size M",
            Feature::Delay => "network delay D",
            Feature::LossRate => "packet loss L",
            Feature::BatchSize => "batch size B",
            Feature::PollInterval => "polling interval delta",
            Feature::MessageTimeout => "message timeout T_o",
        }
    }

    /// Returns `base` with this feature scaled by `factor`.
    ///
    /// Integer-valued features round away from the baseline so a ±50 %
    /// perturbation always changes the value (e.g. `B = 1` → 2 upward and
    /// stays 1 downward, which the report marks as unperturbable).
    #[must_use]
    pub fn scaled(self, base: &ExperimentPoint, factor: f64) -> ExperimentPoint {
        let mut p = base.clone();
        match self {
            Feature::MessageSize => {
                p.message_size = ((base.message_size as f64 * factor).round() as u64).max(1);
            }
            Feature::Delay => {
                p.delay = SimDuration::from_secs_f64(base.delay.as_secs_f64() * factor);
            }
            Feature::LossRate => {
                p.loss_rate = (base.loss_rate * factor).clamp(0.0, 1.0);
            }
            Feature::BatchSize => {
                let scaled = (base.batch_size as f64 * factor).round() as usize;
                p.batch_size = scaled.max(1);
            }
            Feature::PollInterval => {
                p.poll_interval =
                    SimDuration::from_secs_f64(base.poll_interval.as_secs_f64() * factor);
            }
            Feature::MessageTimeout => {
                p.message_timeout =
                    SimDuration::from_secs_f64(base.message_timeout.as_secs_f64() * factor);
            }
        }
        p
    }
}

/// One row of the sensitivity table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// The perturbed feature.
    pub feature: Feature,
    /// Baseline `P_l`.
    pub base_p_loss: f64,
    /// `P_l` at −50 %.
    pub down_p_loss: f64,
    /// `P_l` at +50 %.
    pub up_p_loss: f64,
    /// Baseline `P_d`.
    pub base_p_dup: f64,
    /// `P_d` at −50 %.
    pub down_p_dup: f64,
    /// `P_d` at +50 %.
    pub up_p_dup: f64,
}

impl SensitivityRow {
    /// The largest absolute change either perturbation causes in either
    /// metric — the paper's "observable impact" score.
    #[must_use]
    pub fn impact(&self) -> f64 {
        [
            (self.down_p_loss - self.base_p_loss).abs(),
            (self.up_p_loss - self.base_p_loss).abs(),
            (self.down_p_dup - self.base_p_dup).abs(),
            (self.up_p_dup - self.base_p_dup).abs(),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// Whether the paper's rule would keep this feature (impact above the
    /// given threshold, e.g. 0.01 = one percentage point).
    #[must_use]
    pub fn is_selected(&self, threshold: f64) -> bool {
        self.impact() >= threshold
    }
}

/// Runs the ±50 % sensitivity analysis around `base`.
///
/// Rows come back in [`Feature::all`] order, most useful alongside
/// [`SensitivityRow::impact`] for ranking.
#[must_use]
pub fn analyze(
    base: &ExperimentPoint,
    cal: &Calibration,
    n_messages: u64,
    seed: u64,
    threads: usize,
) -> Vec<SensitivityRow> {
    // One sweep for everything: baseline + 2 perturbations per feature.
    let mut points = vec![base.clone()];
    for f in Feature::all() {
        points.push(f.scaled(base, 0.5));
        points.push(f.scaled(base, 1.5));
    }
    let results = run_sweep(&points, cal, n_messages, seed, threads);
    let baseline = &results[0];
    Feature::all()
        .into_iter()
        .enumerate()
        .map(|(i, feature)| {
            let down = &results[1 + 2 * i];
            let up = &results[2 + 2 * i];
            SensitivityRow {
                feature,
                base_p_loss: baseline.p_loss,
                down_p_loss: down.p_loss,
                up_p_loss: up.p_loss,
                base_p_dup: baseline.p_dup,
                down_p_dup: down.p_dup,
                up_p_dup: up.p_dup,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kafkasim::config::DeliverySemantics;

    fn lossy_base() -> ExperimentPoint {
        ExperimentPoint {
            message_size: 200,
            timeliness: None,
            delay: SimDuration::from_millis(100),
            loss_rate: 0.20,
            semantics: DeliverySemantics::AtLeastOnce,
            batch_size: 2,
            poll_interval: SimDuration::from_millis(70),
            message_timeout: SimDuration::from_millis(1_000),
            ..ExperimentPoint::default()
        }
    }

    #[test]
    fn scaling_respects_domains() {
        let base = lossy_base();
        let down = Feature::BatchSize.scaled(&base, 0.5);
        assert_eq!(down.batch_size, 1);
        let up = Feature::LossRate.scaled(&base, 1.5);
        assert!((up.loss_rate - 0.30).abs() < 1e-12);
        let clamped = Feature::LossRate.scaled(
            &ExperimentPoint {
                loss_rate: 0.9,
                ..base.clone()
            },
            1.5,
        );
        assert_eq!(clamped.loss_rate, 1.0);
        let tiny = Feature::MessageSize.scaled(
            &ExperimentPoint {
                message_size: 1,
                ..base
            },
            0.5,
        );
        assert_eq!(tiny.message_size, 1, "sizes never hit zero");
    }

    #[test]
    fn loss_rate_is_a_selected_feature_under_faults() {
        let cal = Calibration::paper();
        let rows = analyze(&lossy_base(), &cal, 2_000, 3, 4);
        assert_eq!(rows.len(), Feature::all().len());
        let loss_row = rows
            .iter()
            .find(|r| r.feature == Feature::LossRate)
            .unwrap();
        assert!(
            loss_row.is_selected(0.01),
            "±50% of a 20% loss rate must visibly move P_l: impact {}",
            loss_row.impact()
        );
    }

    #[test]
    fn rows_are_internally_consistent() {
        let cal = Calibration::paper();
        let rows = analyze(&lossy_base(), &cal, 800, 5, 4);
        for r in &rows {
            assert!(r.impact() >= 0.0);
            assert!(r.impact() <= 1.0);
            // Baseline identical across rows (one shared run).
            assert_eq!(r.base_p_loss, rows[0].base_p_loss);
        }
    }

    #[test]
    fn feature_names_are_unique() {
        let mut names: Vec<&str> = Feature::all().iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Feature::all().len());
    }
}
