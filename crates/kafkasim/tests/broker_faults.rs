//! End-to-end tests of broker replication, `acks=all`, and fault
//! injection: clean failover keeps every acknowledged message, unclean
//! election loses exactly the records the winner never fetched (and the
//! trace attributes them to the broker, not the network), and the ISR
//! round-trips under a flapping follower.

use desim::{SimDuration, SimTime};
use kafkasim::broker::BrokerId;
use kafkasim::config::{DeliverySemantics, ProducerConfig};
use kafkasim::runtime::{BrokerFault, KafkaRun, RunSpec};
use kafkasim::source::SourceSpec;
use kafkasim::{crosscheck, LossReason};
use obs::{LossCause, MessageFate, RingBufferSink, TimelineReport, TraceEvent};
use proptest::prelude::*;

/// One partition on a three-broker cluster so every produce request flows
/// through broker 0 until a fault moves leadership.
fn replicated_spec(n: u64, factor: u32, semantics: DeliverySemantics) -> RunSpec {
    let mut spec = RunSpec {
        source: SourceSpec::fixed_rate(n, 200, 100.0),
        ..RunSpec::default()
    };
    spec.cluster.partitions = 1;
    spec.cluster.replication.factor = factor;
    spec.producer = ProducerConfig::builder()
        .semantics(semantics)
        .message_timeout(SimDuration::from_millis(2_500))
        .request_timeout(SimDuration::from_millis(600))
        // Held acks=all responses keep requests in flight until the next
        // fetch round; a deep pipeline keeps the producer from stalling.
        .max_in_flight(64)
        .build()
        .unwrap();
    spec
}

/// Crashes the initial leader of partition 0 off the 50 ms fetch grid, so
/// some records are always appended (and acked, under `acks<all`) after
/// the followers' last fetch.
fn crash_leader(spec: &mut RunSpec, down_for: SimDuration) {
    spec.faults.push(BrokerFault::crash(
        BrokerId(0),
        SimTime::from_millis(2_115),
        down_for,
    ));
    spec.failover_after = Some(SimDuration::from_millis(500));
}

fn trace(spec: RunSpec, seed: u64) -> (kafkasim::RunOutcome, Vec<TraceEvent>) {
    let (outcome, mut sink) =
        KafkaRun::new(spec, seed).execute_traced(Box::new(RingBufferSink::new(1 << 22)));
    (outcome, sink.drain())
}

#[test]
fn acks_all_clean_failover_loses_nothing() {
    let mut spec = replicated_spec(1_500, 3, DeliverySemantics::All);
    crash_leader(&mut spec, SimDuration::from_secs(5));
    let (outcome, events) = trace(spec, 7);

    assert_eq!(outcome.brokers.clean_elections, 1, "{:?}", outcome.brokers);
    assert_eq!(outcome.brokers.unclean_elections, 0);
    assert!(
        outcome.brokers.replica_fetches > 0,
        "followers must have been fetching"
    );
    // The headline guarantee: acks=all + a clean election loses no
    // message — acknowledged ones were on every in-sync replica, and
    // unacknowledged ones are retried to the new leader.
    assert_eq!(outcome.report.lost, 0, "{:?}", outcome.report.loss_reasons);
    assert_eq!(outcome.report.delivery_rate(), 1.0);

    let elected: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::LeaderElected { .. }))
        .collect();
    assert_eq!(elected.len(), 1);
    if let TraceEvent::LeaderElected { clean, .. } = elected[0] {
        assert!(clean, "the winner must come from the ISR");
    }
    let report = TimelineReport::reconstruct(&events);
    let audit = crosscheck(&outcome.report, &report);
    assert!(audit.fully_explains(), "{:#?}", audit.discrepancies);
}

#[test]
fn unclean_election_loses_unreplicated_records_to_the_broker() {
    let mut spec = replicated_spec(1_500, 2, DeliverySemantics::AtLeastOnce);
    // Starve the only follower: it crashes early (accruing lag past
    // `replica.lag.time.max`, so the ISR shrinks to the leader) and after
    // recovering fetches one record per round — far slower than the
    // producer appends — so it never re-enters the ISR. Crashing the
    // leader then forces an unclean election of a deeply lagging replica.
    spec.cluster.replication.lag_time_max = SimDuration::from_millis(200);
    spec.cluster.replication.max_fetch_records = 1;
    spec.cluster.replication.allow_unclean = true;
    spec.faults.push(BrokerFault::crash(
        BrokerId(1),
        SimTime::from_millis(100),
        SimDuration::from_millis(1_400),
    ));
    crash_leader(&mut spec, SimDuration::from_secs(5));
    let (outcome, events) = trace(spec, 7);

    assert_eq!(
        outcome.brokers.unclean_elections, 1,
        "{:?}",
        outcome.brokers
    );
    assert_eq!(outcome.brokers.clean_elections, 0);
    assert!(outcome.brokers.records_truncated > 0);
    assert!(outcome.report.lost > 0, "unclean election must lose data");
    // Every loss is broker-caused: the network was healthy throughout.
    assert_eq!(
        outcome.report.loss_reasons.get(&LossReason::LeaderFailover),
        Some(&outcome.report.lost),
        "{:?}",
        outcome.report.loss_reasons
    );

    // The trace pins the same attribution per message, and the lost keys
    // are exactly a subset of what the election event truncated.
    let truncated_at_election: Vec<u64> = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::LeaderElected {
                clean,
                truncated_keys,
                ..
            } => {
                assert!(!clean, "this scenario elects a lagging replica");
                Some(truncated_keys.clone())
            }
            _ => None,
        })
        .expect("an election was traced");
    let report = TimelineReport::reconstruct(&events);
    for tl in report.timelines() {
        if let MessageFate::Lost { cause } = &tl.fate {
            assert_eq!(
                *cause,
                Some(LossCause::LeaderFailover),
                "loss must be attributed to the broker:\n{}",
                tl.narrate()
            );
            assert!(
                truncated_at_election.contains(&tl.key),
                "lost key {} was never truncated",
                tl.key
            );
        }
    }
    let audit = crosscheck(&outcome.report, &report);
    assert!(audit.fully_explains(), "{:#?}", audit.discrepancies);
}

#[test]
fn isr_shrinks_and_expands_under_a_flapping_follower() {
    let mut spec = replicated_spec(1_500, 3, DeliverySemantics::AtLeastOnce);
    spec.cluster.replication.lag_time_max = SimDuration::from_millis(150);
    // Broker 1 leads nothing: it is purely a follower for partition 0.
    spec.faults = vec![BrokerFault {
        broker: BrokerId(1),
        at: SimTime::from_secs(1),
        down_for: SimDuration::from_millis(600),
        flaps: 3,
        up_for: SimDuration::from_millis(1_500),
    }];
    let (outcome, events) = trace(spec, 7);

    assert!(
        outcome.brokers.isr_shrinks >= 3,
        "each flap must evict the laggard: {:?}",
        outcome.brokers
    );
    assert!(
        outcome.brokers.isr_expands >= 3,
        "each recovery must readmit it: {:?}",
        outcome.brokers
    );
    assert_eq!(outcome.brokers.failovers, 0, "no leadership moved");
    assert_eq!(outcome.report.lost, 0, "follower faults lose nothing");

    // The ISR round-trips: chronologically the follower's memberships
    // alternate shrink → expand, ending expanded (it caught back up).
    let transitions: Vec<bool> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::IsrShrink { broker: 1, .. } => Some(false),
            TraceEvent::IsrExpand { broker: 1, .. } => Some(true),
            _ => None,
        })
        .collect();
    assert!(transitions.len() >= 6, "{transitions:?}");
    for pair in transitions.windows(2) {
        assert_ne!(pair[0], pair[1], "memberships must alternate");
    }
    assert_eq!(transitions.last(), Some(&true), "ends back in the ISR");
}

#[test]
fn acks_one_clean_failover_can_still_lose_acknowledged_records() {
    // The contrast case behind the acks=all guarantee: under acks=1 the
    // leader acknowledges before replication, so even a *clean* election
    // may truncate acknowledged records the winner had not fetched yet.
    // A 250 ms fetch interval widens the acked-but-unreplicated window
    // behind the 2.115 s crash (last fetch at 2.0 s) to ~11 records.
    let mut base = replicated_spec(1_500, 3, DeliverySemantics::AtLeastOnce);
    base.cluster.replication.fetch_interval = SimDuration::from_millis(250);
    crash_leader(&mut base, SimDuration::from_secs(5));
    let one = KafkaRun::new(base, 7).execute();

    let mut all = replicated_spec(1_500, 3, DeliverySemantics::All);
    all.cluster.replication.fetch_interval = SimDuration::from_millis(250);
    crash_leader(&mut all, SimDuration::from_secs(5));
    let all = KafkaRun::new(all, 7).execute();

    assert_eq!(one.brokers.clean_elections, 1);
    assert_eq!(all.brokers.clean_elections, 1);
    assert!(all.brokers.acks_held > 0, "acks=all must hold acks");
    assert_eq!(all.report.lost, 0);
    assert!(
        one.report.lost > 0,
        "acks=1 must lose the acked-but-unreplicated tail: {:?}",
        one.report.loss_reasons
    );
    assert_eq!(
        one.report.loss_reasons.get(&LossReason::LeaderFailover),
        Some(&one.report.lost)
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Conservation holds under broker faults for every semantics: each
    /// source message resolves exactly once, every loss carries a reason,
    /// and the trace explains the audit in full.
    #[test]
    fn conservation_holds_with_broker_faults(
        seed in 0u64..1_000,
        factor in 1u32..4,
        down_ms in 300u64..3_000,
        unclean in proptest::bool::ANY,
        sem in 0u8..3,
    ) {
        let semantics = match sem {
            0 => DeliverySemantics::AtMostOnce,
            1 => DeliverySemantics::AtLeastOnce,
            _ => DeliverySemantics::All,
        };
        let mut spec = replicated_spec(400, factor, semantics);
        spec.cluster.replication.allow_unclean = unclean;
        spec.cluster.replication.lag_time_max = SimDuration::from_millis(500);
        spec.faults = vec![BrokerFault::crash(
            BrokerId(0),
            SimTime::from_secs(1),
            SimDuration::from_millis(down_ms),
        )];
        spec.failover_after = Some(SimDuration::from_millis(300));
        let (outcome, events) = trace(spec, seed);
        let r = &outcome.report;
        prop_assert_eq!(r.delivered_once + r.lost + r.duplicated, r.n_source);
        prop_assert_eq!(r.case_counts.iter().sum::<u64>(), r.n_source);
        prop_assert_eq!(r.loss_reasons.values().sum::<u64>(), r.lost);
        let report = TimelineReport::reconstruct(&events);
        let audit = crosscheck(&outcome.report, &report);
        prop_assert!(audit.fully_explains(), "{:#?}", audit.discrepancies);
    }
}
