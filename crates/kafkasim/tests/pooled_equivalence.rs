//! Property test pinning the pooled execution path to the plain one.
//!
//! [`KafkaRun::execute_pooled`] reuses buffers from a [`RunArena`] that a
//! previous run has dirtied; the whole point of the pool is that this must
//! be unobservable. Here the arena is deliberately pre-soiled by a warm-up
//! run with a different seed and configuration before every comparison.

use desim::SimDuration;
use kafkasim::config::{DeliverySemantics, ProducerConfig};
use kafkasim::runtime::{KafkaRun, RunArena, RunSpec};
use kafkasim::source::SourceSpec;
use netsim::{ConditionTimeline, NetCondition};
use proptest::prelude::*;

fn spec(
    semantics: DeliverySemantics,
    batch: usize,
    n_messages: u64,
    loss: f64,
    delay_ms: u64,
) -> RunSpec {
    RunSpec {
        producer: ProducerConfig::builder()
            .semantics(semantics)
            .batch_size(batch)
            .build()
            .expect("valid producer config"),
        source: SourceSpec::fixed_rate(n_messages, 200, 500.0),
        network: ConditionTimeline::constant(NetCondition::new(
            SimDuration::from_millis(delay_ms),
            loss,
        )),
        ..RunSpec::default()
    }
}

fn arb_semantics() -> impl Strategy<Value = DeliverySemantics> {
    prop_oneof![
        Just(DeliverySemantics::AtMostOnce),
        Just(DeliverySemantics::AtLeastOnce),
        Just(DeliverySemantics::All),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// A pooled run equals a fresh-allocation run outcome-for-outcome,
    /// even when the arena arrives dirty from an unrelated run.
    #[test]
    fn pooled_run_matches_plain_run(
        semantics in arb_semantics(),
        batch in 1usize..8,
        n_messages in 50u64..300,
        loss in 0.0f64..0.3,
        delay_ms in 1u64..20,
        seed in 0u64..u64::MAX,
    ) {
        let mut arena = RunArena::new();
        // Soil the arena with a differently-shaped run.
        let _ = KafkaRun::new(
            spec(DeliverySemantics::AtLeastOnce, 5, 120, 0.1, 3),
            seed.wrapping_add(1),
        )
        .execute_pooled(&mut arena);

        let s = spec(semantics, batch, n_messages, loss, delay_ms);
        let plain = KafkaRun::new(s.clone(), seed).execute();
        let pooled = KafkaRun::new(s, seed).execute_pooled(&mut arena);
        prop_assert_eq!(plain, pooled);
    }
}
