//! Pins profiling as strictly observational: the same run executed
//! untraced, traced with a disabled profiler, and traced with an enabled
//! profiler produces identical delivery reports and identical event
//! streams. Wall-clock span recording must never leak into simulated
//! behaviour — the perfbase digests and every figure depend on it.

use desim::SimDuration;
use kafkasim::config::{DeliverySemantics, ProducerConfig};
use kafkasim::runtime::{KafkaRun, RunSpec};
use kafkasim::source::SourceSpec;
use netsim::{ConditionTimeline, NetCondition};
use obs::{NoopSink, Profiler, RingBufferSink};

fn spec(semantics: DeliverySemantics, loss: f64) -> RunSpec {
    RunSpec {
        producer: ProducerConfig::builder()
            .semantics(semantics)
            .batch_size(4)
            .build()
            .expect("valid producer config"),
        source: SourceSpec::fixed_rate(500, 200, 500.0),
        network: ConditionTimeline::constant(NetCondition::new(SimDuration::from_millis(40), loss)),
        ..RunSpec::default()
    }
}

#[test]
fn disabled_profiler_is_bit_identical_to_untraced() {
    for (semantics, loss, seed) in [
        (DeliverySemantics::AtMostOnce, 0.15, 7),
        (DeliverySemantics::AtLeastOnce, 0.15, 7),
        (DeliverySemantics::All, 0.0, 11),
    ] {
        let plain = KafkaRun::new(spec(semantics, loss), seed).execute();
        let (profiled, _) = KafkaRun::new(spec(semantics, loss), seed)
            .execute_profiled(Box::new(NoopSink), Profiler::disabled());
        assert_eq!(
            plain.report, profiled.report,
            "disabled profiler changed the {semantics} outcome"
        );
    }
}

#[test]
fn enabled_profiler_changes_no_outcome_and_no_trace() {
    let seed = 13;
    let (plain, mut plain_sink) = KafkaRun::new(spec(DeliverySemantics::AtLeastOnce, 0.2), seed)
        .execute_traced(Box::new(RingBufferSink::new(1 << 20)));
    let prof = Profiler::enabled();
    let (profiled, mut prof_sink) = KafkaRun::new(spec(DeliverySemantics::AtLeastOnce, 0.2), seed)
        .execute_profiled(Box::new(RingBufferSink::new(1 << 20)), prof.clone());

    assert_eq!(
        plain.report, profiled.report,
        "profiling changed the outcome"
    );
    assert_eq!(
        plain_sink.drain(),
        prof_sink.drain(),
        "profiling changed the simulated event stream"
    );

    // The profiled run actually recorded the instrumented phases.
    let snap = prof.snapshot();
    assert!(snap.spans.iter().any(|s| s.name == "kafkasim.setup"));
    assert!(snap.spans.iter().any(|s| s.name == "desim.run-slice"));
    assert!(snap.spans.iter().any(|s| s.name == "kafkasim.audit"));
    assert!(
        snap.spans.iter().any(|s| s.depth > 0),
        "phases nest under the loop"
    );
}
