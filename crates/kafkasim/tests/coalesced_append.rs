//! Property tests pinning the coalesced append path: a bulk flush of `n`
//! records (`accept(n)`) must be bit-identical to `n` scalar appends
//! (`n × accept(1)`) — in the stored log columns, in the offsets handed
//! out, and in everything the run derives from them downstream: outcome
//! counts, latency moments, and trace events, across acks modes and
//! broker-fault scenarios.
//!
//! The wire-format sizing ([`kafkasim::wire`]) that decides how much a
//! coalesced request saves on the network is pinned here too.

use desim::stats::RunningMoments;
use desim::{SimDuration, SimTime};
use kafkasim::audit::LatencyStats;
use kafkasim::broker::{Broker, BrokerId, ProduceRecord};
use kafkasim::config::{DeliverySemantics, ProducerConfig};
use kafkasim::log::PartitionLog;
use kafkasim::message::MessageKey;
use kafkasim::runtime::{BrokerFault, KafkaRun, RunSpec};
use kafkasim::source::SourceSpec;
use kafkasim::wire::WireFormat;
use obs::{RingBufferSink, TraceEvent};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn record(key: u64, payload: u64, created_ms: u64) -> ProduceRecord {
    ProduceRecord {
        key: MessageKey(key),
        payload_bytes: payload,
        created_at: SimTime::from_millis(created_ms),
    }
}

/// One step of log churn: a produce request's worth of records, or an
/// unclean-election truncation.
#[derive(Debug, Clone)]
enum LogOp {
    Batch {
        records: Vec<(u64, u64, u64)>,
        at_ms: u64,
    },
    Truncate {
        to: u64,
    },
}

fn arb_log_op() -> impl Strategy<Value = LogOp> {
    // Roughly 4 batches per truncation: `kind` biases the choice (the
    // vendored proptest's `prop_oneof!` has no weight syntax).
    (
        0u8..5,
        proptest::collection::vec((0u64..1_000, 0u64..5_000, 0u64..100), 0..12),
        0u64..10_000,
        0u64..64,
    )
        .prop_map(|(kind, records, at_ms, to)| {
            if kind == 0 {
                LogOp::Truncate { to }
            } else {
                LogOp::Batch { records, at_ms }
            }
        })
}

fn arb_semantics() -> impl Strategy<Value = DeliverySemantics> {
    prop_oneof![
        Just(DeliverySemantics::AtMostOnce),
        Just(DeliverySemantics::AtLeastOnce),
        Just(DeliverySemantics::All),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `PartitionLog::append_batch` equals record-at-a-time appends after
    /// every step of an arbitrary batch/truncate interleaving: same base
    /// offsets, same removed suffixes, same columns (the logs compare
    /// field-for-field via `PartialEq`).
    #[test]
    fn log_batch_append_equals_scalar_under_truncation_churn(
        ops in proptest::collection::vec(arb_log_op(), 1..20),
    ) {
        let mut bulk = PartitionLog::new(0);
        let mut scalar = PartitionLog::new(0);
        for op in ops {
            match op {
                LogOp::Batch { records, at_ms } => {
                    let recs: Vec<ProduceRecord> = records
                        .iter()
                        .map(|&(k, p, c)| record(k, p, c))
                        .collect();
                    let at = SimTime::from_millis(at_ms);
                    let base = bulk.append_batch(&recs, at);
                    let scalar_base = scalar.len() as u64;
                    for r in &recs {
                        scalar.append(r.key, r.payload_bytes, r.created_at, at);
                    }
                    prop_assert_eq!(base, scalar_base);
                }
                LogOp::Truncate { to } => {
                    // Bias into range so truncation actually bites, but
                    // keep the occasional past-the-end no-op.
                    let to = to % (bulk.len() as u64 + 2);
                    prop_assert_eq!(bulk.truncate_to(to), scalar.truncate_to(to));
                }
            }
            prop_assert_eq!(&bulk, &scalar, "logs diverged mid-churn");
        }
    }

    /// `Broker::append` with an `n`-record request leaves exactly the state
    /// `n` single-record requests would: identical partition logs,
    /// identical `records_appended`, and the same leadership errors.
    #[test]
    fn broker_bulk_append_equals_scalar_requests(
        requests in proptest::collection::vec(
            (0u32..5, proptest::collection::vec((0u64..500, 1u64..2_000, 0u64..50), 0..10)),
            1..16,
        ),
    ) {
        let led = vec![0u32, 1, 3];
        let mut bulk = Broker::new(BrokerId(0), led.clone());
        let mut scalar = Broker::new(BrokerId(0), led.clone());
        for (i, (partition, records)) in requests.iter().enumerate() {
            let recs: Vec<ProduceRecord> = records
                .iter()
                .map(|&(k, p, c)| record(k, p, c))
                .collect();
            let now = SimTime::from_millis(i as u64);
            let bulk_res = bulk.append(*partition, &recs, now);
            let mut scalar_base = None;
            let mut scalar_err = None;
            for r in &recs {
                match scalar.append(*partition, &[*r], now) {
                    Ok(off) => {
                        scalar_base.get_or_insert(off);
                    }
                    Err(e) => scalar_err = Some(e),
                }
            }
            match bulk_res {
                Ok(base) => {
                    prop_assert_eq!(scalar_err, None);
                    if !recs.is_empty() {
                        prop_assert_eq!(scalar_base, Some(base));
                    }
                }
                Err(e) => {
                    prop_assert!(!led.contains(partition));
                    if !recs.is_empty() {
                        prop_assert_eq!(scalar_err, Some(e));
                    }
                }
            }
        }
        prop_assert_eq!(bulk.records_appended(), scalar.records_appended());
        for p in &led {
            prop_assert_eq!(bulk.log(*p), scalar.log(*p), "partition {} diverged", p);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// End-to-end: in a full run — across acks modes, replication factors
    /// and broker crashes — every traced produce request lands as one
    /// coalesced flush whose per-record events are exactly what `n` scalar
    /// appends at that instant would have produced (contiguous offsets from
    /// the base, one append instant); and replaying the per-copy consumer
    /// reads through a scalar accumulator reproduces the branch-free
    /// audit's outcome counts and latency moments bit-for-bit.
    #[test]
    fn run_level_flushes_and_audit_match_scalar_replay(
        seed in 0u64..1_000,
        factor in 1u32..4,
        down_ms in 300u64..3_000,
        unclean in proptest::bool::ANY,
        semantics in arb_semantics(),
        batch in 1usize..8,
    ) {
        let mut spec = RunSpec {
            source: SourceSpec::fixed_rate(400, 200, 100.0),
            ..RunSpec::default()
        };
        spec.cluster.partitions = 1;
        spec.cluster.replication.factor = factor;
        spec.cluster.replication.allow_unclean = unclean;
        spec.cluster.replication.lag_time_max = SimDuration::from_millis(500);
        spec.producer = ProducerConfig::builder()
            .semantics(semantics)
            .batch_size(batch)
            .message_timeout(SimDuration::from_millis(2_500))
            .request_timeout(SimDuration::from_millis(600))
            .max_in_flight(64)
            .build()
            .unwrap();
        spec.faults = vec![BrokerFault::crash(
            BrokerId(0),
            SimTime::from_secs(1),
            SimDuration::from_millis(down_ms),
        )];
        spec.failover_after = Some(SimDuration::from_millis(300));

        let (outcome, mut sink) = KafkaRun::new(spec, seed)
            .execute_traced(Box::new(RingBufferSink::new(1 << 22)));
        let events = sink.drain();

        // Each request id appends once; its records must form one flush:
        // (append instant, broker, partition, offset, batch id) per record.
        type FlushRow = (SimTime, u32, u32, u64, u64);
        let mut flushes: BTreeMap<u64, Vec<FlushRow>> = BTreeMap::new();
        let mut appended = 0u64;
        for e in &events {
            if let TraceEvent::BrokerAppend {
                at, batch, request, broker, partition, offset, ..
            } = e
            {
                flushes
                    .entry(*request)
                    .or_default()
                    .push((*at, *broker, *partition, *offset, *batch));
                appended += 1;
            }
        }
        prop_assert_eq!(appended, outcome.records_appended);
        for (request, rows) in &flushes {
            let (at, broker, partition, base, batch_id) = rows[0];
            for (i, row) in rows.iter().enumerate() {
                prop_assert_eq!(
                    row,
                    &(at, broker, partition, base + i as u64, batch_id),
                    "request {} is not one coalesced flush: {:?}",
                    request,
                    rows
                );
            }
        }

        // Scalar replay of the consumer read-back: per-key copy counts and
        // earliest-copy latencies, accumulated in key order exactly like
        // the audit's column sweep. The resulting moments must match the
        // report's to the last bit.
        let n = outcome.report.n_source as usize;
        let mut copies = vec![0u64; n];
        let mut first = vec![SimDuration::ZERO; n];
        for e in &events {
            if let TraceEvent::ConsumerRead { key, latency, .. } = e {
                let k = *key as usize;
                prop_assert!(k < n, "consumer read an unknown key {}", k);
                if copies[k] == 0 {
                    first[k] = *latency;
                } else {
                    first[k] = first[k].min(*latency);
                }
                copies[k] += 1;
            }
        }
        let mut moments = RunningMoments::new();
        let (mut once, mut lost, mut dup, mut extra) = (0u64, 0, 0, 0);
        for k in 0..n {
            match copies[k] {
                0 => lost += 1,
                1 => once += 1,
                c => {
                    dup += 1;
                    extra += c - 1;
                }
            }
            if copies[k] > 0 {
                moments.record(first[k].as_secs_f64());
            }
        }
        prop_assert_eq!(once, outcome.report.delivered_once);
        prop_assert_eq!(lost, outcome.report.lost);
        prop_assert_eq!(dup, outcome.report.duplicated);
        prop_assert_eq!(extra, outcome.report.extra_copies);
        prop_assert_eq!(LatencyStats::from(&moments), outcome.report.latency);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Wire sizing is additive: a coalesced request carrying two record
    /// sets costs one request overhead plus the per-record costs — exactly
    /// what splitting it would cost minus the saved second header.
    #[test]
    fn wire_request_bytes_are_additive(
        a in proptest::collection::vec(0u64..10_000, 0..20),
        b in proptest::collection::vec(0u64..10_000, 0..20),
    ) {
        let w = WireFormat::default();
        let joined: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(
            w.request_bytes(joined),
            w.request_bytes(a) + w.request_bytes(b) - w.request_overhead,
        );
    }

    /// Efficiency stays a proper fraction and improves monotonically with
    /// batch size: every extra record amortises the fixed header further.
    #[test]
    fn wire_efficiency_is_bounded_and_monotone(
        count in 1usize..100,
        payload in 1u64..10_000,
    ) {
        let w = WireFormat::default();
        let e = w.efficiency(count, payload);
        prop_assert!(e > 0.0 && e < 1.0, "efficiency {} out of (0, 1)", e);
        prop_assert!(
            w.efficiency(count + 1, payload) > e,
            "batching must amortise the request header"
        );
        prop_assert_eq!(
            w.request_bytes_uniform(count, payload),
            w.request_bytes(std::iter::repeat_n(payload, count)),
        );
    }
}
