//! End-to-end tests of the tracing pipeline: a full trace must explain
//! every message the audit counts lost or duplicated, without perturbing
//! the simulation it observes.

use desim::SimDuration;
use kafkasim::config::{DeliverySemantics, ProducerConfig};
use kafkasim::runtime::{KafkaRun, RunSpec};
use kafkasim::source::SourceSpec;
use kafkasim::{crosscheck, LossReason};
use netsim::{ConditionTimeline, NetCondition};
use obs::{
    parse_jsonl, JsonlSink, MessageFate, MetricsSink, RingBufferSink, TimelineReport, TraceEvent,
    TraceSink,
};
use proptest::prelude::*;

fn quick_spec(n: u64) -> RunSpec {
    RunSpec {
        source: SourceSpec::fixed_rate(n, 200, 500.0),
        ..RunSpec::default()
    }
}

/// `acks=0` over a 30%-loss network: heavy silent loss.
fn lossy_amo_spec(n: u64) -> RunSpec {
    let mut spec = quick_spec(n);
    spec.producer = ProducerConfig::builder()
        .semantics(DeliverySemantics::AtMostOnce)
        .message_timeout(SimDuration::from_millis(2_000))
        .build()
        .unwrap();
    spec.network =
        ConditionTimeline::constant(NetCondition::new(SimDuration::from_millis(100), 0.30));
    spec
}

/// `acks=1` with an aggressive request timeout over a 25%-loss network:
/// acks go missing after the append happened, so retries duplicate.
fn duplicating_alo_spec(n: u64) -> RunSpec {
    let mut spec = quick_spec(n);
    spec.producer = ProducerConfig::builder()
        .semantics(DeliverySemantics::AtLeastOnce)
        .request_timeout(SimDuration::from_millis(400))
        .message_timeout(SimDuration::from_millis(5_000))
        .build()
        .unwrap();
    spec.network =
        ConditionTimeline::constant(NetCondition::new(SimDuration::from_millis(150), 0.25));
    spec
}

fn trace(spec: RunSpec, seed: u64) -> (kafkasim::RunOutcome, Vec<TraceEvent>) {
    let (outcome, mut sink) =
        KafkaRun::new(spec, seed).execute_traced(Box::new(RingBufferSink::new(1 << 22)));
    let events = sink.drain();
    (outcome, events)
}

#[test]
fn lossy_amo_run_is_fully_explained() {
    let (outcome, events) = trace(lossy_amo_spec(1_000), 3);
    assert!(
        outcome.report.lost > 0,
        "scenario must actually lose messages"
    );
    let report = TimelineReport::reconstruct(&events);
    let audit = crosscheck(&outcome.report, &report);
    assert!(audit.fully_explains(), "{:#?}", audit.discrepancies);
    // Every lost message carries a concrete cause in its timeline.
    for tl in report.timelines() {
        if let MessageFate::Lost { cause } = &tl.fate {
            assert!(
                cause.is_some(),
                "key {} lost without cause:\n{}",
                tl.key,
                tl.narrate()
            );
        }
    }
}

#[test]
fn duplicate_heavy_alo_run_is_fully_explained() {
    let (outcome, events) = trace(duplicating_alo_spec(2_000), 5);
    assert!(
        outcome.report.duplicated > 0,
        "scenario must actually duplicate messages"
    );
    let report = TimelineReport::reconstruct(&events);
    let audit = crosscheck(&outcome.report, &report);
    assert!(audit.fully_explains(), "{:#?}", audit.discrepancies);
    // Every duplicated message shows the re-append mechanism.
    let mut with_cause = 0;
    for tl in report.timelines() {
        if let MessageFate::Duplicated { cause, .. } = &tl.fate {
            assert!(cause.is_some(), "unexplained duplicate:\n{}", tl.narrate());
            with_cause += 1;
        }
    }
    assert_eq!(with_cause, outcome.report.duplicated);
}

#[test]
fn conservation_invariants_hold_across_scenarios() {
    for (spec, seed) in [
        (lossy_amo_spec(800), 3),
        (duplicating_alo_spec(1_500), 5),
        (quick_spec(1_000), 1),
    ] {
        let outcome = KafkaRun::new(spec, seed).execute();
        let r = &outcome.report;
        // Every source message resolves exactly once.
        assert_eq!(r.delivered_once + r.lost + r.duplicated, r.n_source);
        assert_eq!(r.case_counts.iter().sum::<u64>(), r.n_source);
        // Every lost message has exactly one reason.
        assert_eq!(r.loss_reasons.values().sum::<u64>(), r.lost);
        // Broker log accounting: appends = unique keys + extra copies.
        assert_eq!(
            outcome.records_appended,
            r.delivered_once + r.duplicated + r.extra_copies,
            "appends must equal unique delivered keys plus duplicates"
        );
        // N_d is bounded by surplus appends over unique keys.
        assert!(r.duplicated <= outcome.records_appended - (r.delivered_once + r.duplicated));
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    for (spec_fn, seed) in [
        (lossy_amo_spec as fn(u64) -> RunSpec, 3u64),
        (duplicating_alo_spec as fn(u64) -> RunSpec, 5u64),
    ] {
        let plain = KafkaRun::new(spec_fn(600), seed).execute();
        let (traced, _events) = trace(spec_fn(600), seed);
        assert_eq!(plain.report, traced.report);
        assert_eq!(plain.producer, traced.producer);
        assert_eq!(plain.events_fired, traced.events_fired);
        assert_eq!(plain.records_appended, traced.records_appended);
        assert!(
            plain.metrics.is_none(),
            "no registry without a metrics sink"
        );
    }
}

#[test]
fn metrics_sink_surfaces_histograms_in_the_outcome() {
    use kafkasim::runtime::{OnlineController, OnlineSpec, WindowStats};
    use std::sync::{Arc, Mutex};

    struct Capture(Mutex<Vec<WindowStats>>);
    impl OnlineController for Capture {
        fn decide(&self, stats: &WindowStats, _cfg: &ProducerConfig) -> Option<ProducerConfig> {
            self.0.lock().unwrap().push(*stats);
            None
        }
    }

    let capture = Arc::new(Capture(Mutex::new(Vec::new())));
    let mut spec = duplicating_alo_spec(1_000);
    spec.online = Some(OnlineSpec {
        interval: SimDuration::from_secs(1),
        controller: capture.clone(),
    });
    let (outcome, _sink) = KafkaRun::new(spec, 5).execute_traced(Box::new(MetricsSink::new()));
    let m = outcome
        .metrics
        .expect("metrics sink fills RunOutcome::metrics");
    assert_eq!(m.counters["enqueued"], 1_000);
    assert!(m.rtt_s.count > 0, "acks=1 runs measure RTT");
    assert!(m.e2e_latency_s.count > 0);
    assert!(m.e2e_latency_s.p99.is_some());
    assert!(m.batch_fill.count > 0);
    // Observation windows see the live histogram-derived statistics.
    let windows = capture.0.lock().unwrap();
    let last = windows.last().expect("online windows observed");
    assert!(last.rtt_p99_ms.is_some());
    assert!(last.e2e_p99_ms.is_some());
    assert!(last.batch_fill_mean.is_some());
}

#[test]
fn jsonl_trace_round_trips_and_reconstructs_identically() {
    let (outcome, mut sink) = KafkaRun::new(lossy_amo_spec(400), 3)
        .execute_traced(Box::new(JsonlSink::new(Vec::<u8>::new())));
    assert!(
        sink.drain().is_empty(),
        "jsonl sink retains nothing in memory"
    );
    drop(sink);

    // Re-run with a ring buffer to get the reference event stream, then
    // serialise it the way `repro --trace-out` does and parse it back.
    let (outcome2, events) = trace(lossy_amo_spec(400), 3);
    assert_eq!(outcome.report, outcome2.report);
    let mut jsonl = JsonlSink::new(Vec::new());
    for e in &events {
        jsonl.record(e.clone());
    }
    assert_eq!(jsonl.errors(), 0);
    let text = String::from_utf8(jsonl.into_inner().unwrap()).unwrap();
    let parsed = parse_jsonl(&text).unwrap();
    assert_eq!(parsed, events, "JSONL round-trip preserves every event");

    let from_disk = TimelineReport::reconstruct(&parsed);
    let audit = crosscheck(&outcome.report, &from_disk);
    assert!(audit.fully_explains(), "{:#?}", audit.discrepancies);
}

#[test]
fn loss_reason_histogram_matches_trace_attribution() {
    let (outcome, events) = trace(lossy_amo_spec(1_000), 3);
    let report = TimelineReport::reconstruct(&events);
    let traced: std::collections::BTreeMap<LossReason, u64> = report
        .lost_by_cause()
        .into_iter()
        .map(|(c, n)| (kafkasim::explain::to_loss_reason(c), n))
        .collect();
    assert_eq!(traced, outcome.report.loss_reasons);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Across random seeds and network conditions, the trace attributes
    /// every audited loss and duplication to a concrete cause.
    #[test]
    fn attribution_is_total_for_any_seed(
        seed in 0u64..1_000,
        loss_pct in 5u32..35,
        delay_ms in 20u64..200,
        alo in proptest::bool::ANY,
    ) {
        let mut spec = quick_spec(300);
        spec.producer = ProducerConfig::builder()
            .semantics(if alo {
                DeliverySemantics::AtLeastOnce
            } else {
                DeliverySemantics::AtMostOnce
            })
            .request_timeout(SimDuration::from_millis(500))
            .message_timeout(SimDuration::from_millis(2_500))
            .build()
            .unwrap();
        spec.network = ConditionTimeline::constant(NetCondition::new(
            SimDuration::from_millis(delay_ms),
            f64::from(loss_pct) / 100.0,
        ));
        let (outcome, events) = trace(spec, seed);
        let report = TimelineReport::reconstruct(&events);
        let audit = crosscheck(&outcome.report, &report);
        prop_assert!(audit.fully_explains(), "{:#?}", audit.discrepancies);
    }
}
