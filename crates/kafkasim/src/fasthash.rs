//! Deterministic, cheap hashing for the runtime's hot-path maps.
//!
//! The implementation now lives in [`desim::fasthash`], shared by every layer
//! that needs deterministic hot-path maps (the sharded engine's mailbox
//! bookkeeping included). This module re-exports it so existing `kafkasim`
//! call sites keep compiling unchanged.
//!
//! Beyond the move, [`FastMap`]/[`FastSet`] gained capacity-preserving
//! `Clone` impls: a clone now has the same bucket layout and iteration order
//! as its source, instead of silently rehashing down to minimum capacity.

pub use desim::fasthash::{FastMap, FastSet, FxBuildHasher, FxHasher};
