//! Deterministic, cheap hashing for the runtime's hot-path maps.
//!
//! The simulator's bookkeeping maps are keyed by small integers the sim
//! itself hands out — request ids, connection indices, sequential message
//! keys. `std`'s default SipHash is DoS-resistant, which none of these
//! need, and costs several times more per operation than the keys deserve;
//! the audit alone performs a handful of map operations per message. This
//! module provides the classic multiply-xor construction (the `FxHash`
//! scheme rustc uses for its own interner tables) behind the standard
//! `BuildHasherDefault` plumbing.
//!
//! The hasher is fixed-seed, so map *iteration order* is also fixed across
//! processes. No runtime result may depend on iteration order regardless —
//! the perf baseline's digests were stable under `RandomState`'s per-process
//! seeds, which is what proves the swap result-safe — but determinism here
//! removes the temptation entirely.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// `pi * 2^61`, an odd constant with well-mixed bits.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Multiply-xor hasher: each 8-byte word is rotated into the state and
/// multiplied by `SEED` (π·2⁶¹). Not collision-resistant against adversarial
/// keys — only for keys the simulation itself generates.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_round_trip_sequential_keys() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for k in 0..10_000u64 {
            m.insert(k, k * 2);
        }
        for k in 0..10_000u64 {
            assert_eq!(m.get(&k), Some(&(k * 2)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn sets_deduplicate() {
        let mut s: FastSet<u64> = FastSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
    }

    #[test]
    fn hashes_are_deterministic_and_dispersed() {
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        // Fixed seed: same input, same output, every process.
        assert_eq!(hash(42), hash(42));
        // Sequential keys must not collide or cluster into a few buckets.
        let hashes: Vec<u64> = (0..1000).map(hash).collect();
        let mut unique = hashes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), hashes.len());
    }
}
