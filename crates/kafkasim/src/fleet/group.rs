//! Consumer groups: membership, assignment, and deterministic rebalance.
//!
//! Kafka consumer groups redistribute partition ownership whenever
//! membership changes (a *rebalance*). The coordinator here implements
//! the two classic assignors — **range** (sorted members take contiguous
//! partition chunks, fully recomputed each generation) and **sticky**
//! (surviving members keep what they own; only orphaned partitions move)
//! — and reports exactly which partitions changed owner, which is the
//! "rebalance storm" size the fleet figure plots and the window the
//! engine charges duplicate re-reads to.

use serde::{Deserialize, Serialize};

/// Partition-assignment policy applied at every membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Assignor {
    /// Sort members, deal contiguous partition ranges. Simple, but a
    /// single join/leave can move almost every partition.
    Range,
    /// Keep surviving owners in place; reassign only orphaned or
    /// newly-freed partitions to the least-loaded members.
    Sticky,
}

impl Assignor {
    /// The assignor's stable display/CSV label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Assignor::Range => "range",
            Assignor::Sticky => "sticky",
        }
    }
}

/// The outcome of one rebalance: the new generation, who owns what, and
/// how many partitions actually moved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rebalance {
    /// Group generation after the change (starts at 1).
    pub generation: u64,
    /// Partitions whose owner changed (or went from unowned to owned).
    pub moved: Vec<u32>,
    /// Full post-rebalance assignment, one `(member, partitions)` pair
    /// per member in ascending member order.
    pub assignments: Vec<(u32, Vec<u32>)>,
}

/// Deterministic consumer-group coordinator.
///
/// Membership is a sorted set of member ids; every [`join`](Self::join)
/// or [`leave`](Self::leave) bumps the generation and reassigns
/// partitions under the configured [`Assignor`]. All state is plain
/// sorted vectors, so identical call sequences produce identical
/// assignments — the property the fleet bit-identity test pins.
///
/// # Example
///
/// ```
/// use kafkasim::fleet::{Assignor, GroupCoordinator};
///
/// let mut group = GroupCoordinator::new(Assignor::Sticky, 4, &[0, 1]);
/// assert_eq!(group.generation(), 1);
/// // Generation 1 deals orphans alternately: member 0 gets {0, 2}.
/// assert_eq!(group.partitions_of(0), vec![0, 2]);
///
/// let reb = group.join(2).expect("new member triggers a rebalance");
/// assert_eq!(reb.generation, 2);
/// // Sticky moves only what it must: member 2 takes one partition each
/// // from the two incumbents... or fewer, if balance allows.
/// assert!(reb.moved.len() < 4, "sticky does not reshuffle everything");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCoordinator {
    assignor: Assignor,
    n_partitions: u32,
    /// Current members, ascending.
    members: Vec<u32>,
    generation: u64,
    /// `owner[p]` is the member owning partition `p`, `None` when the
    /// group is empty.
    owner: Vec<Option<u32>>,
}

impl GroupCoordinator {
    /// Creates a group over `n_partitions` partitions with the given
    /// initial members (deduplicated, order-insensitive) and performs
    /// the generation-1 assignment.
    ///
    /// # Panics
    /// Panics when `n_partitions` is zero.
    #[must_use]
    pub fn new(assignor: Assignor, n_partitions: u32, initial_members: &[u32]) -> Self {
        assert!(n_partitions > 0, "a topic has at least one partition");
        let mut members: Vec<u32> = initial_members.to_vec();
        members.sort_unstable();
        members.dedup();
        let mut group = GroupCoordinator {
            assignor,
            n_partitions,
            members,
            generation: 1,
            owner: vec![None; n_partitions as usize],
        };
        group.reassign();
        group
    }

    /// Current group generation.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current members, ascending.
    #[must_use]
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// The member owning `partition`, when the group is non-empty.
    #[must_use]
    pub fn owner_of(&self, partition: u32) -> Option<u32> {
        self.owner[partition as usize]
    }

    /// Partitions owned by `member`, ascending.
    #[must_use]
    pub fn partitions_of(&self, member: u32) -> Vec<u32> {
        (0..self.n_partitions)
            .filter(|&p| self.owner[p as usize] == Some(member))
            .collect()
    }

    /// Adds a member. Returns the rebalance, or `None` if the member was
    /// already present (no generation bump).
    pub fn join(&mut self, member: u32) -> Option<Rebalance> {
        match self.members.binary_search(&member) {
            Ok(_) => None,
            Err(at) => {
                self.members.insert(at, member);
                Some(self.rebalance())
            }
        }
    }

    /// Removes a member. Returns the rebalance, or `None` if the member
    /// was not present.
    pub fn leave(&mut self, member: u32) -> Option<Rebalance> {
        match self.members.binary_search(&member) {
            Ok(at) => {
                self.members.remove(at);
                Some(self.rebalance())
            }
            Err(_) => None,
        }
    }

    fn rebalance(&mut self) -> Rebalance {
        self.generation += 1;
        let before = self.owner.clone();
        self.reassign();
        let moved: Vec<u32> = (0..self.n_partitions)
            .filter(|&p| {
                let i = p as usize;
                before[i] != self.owner[i] && self.owner[i].is_some()
            })
            .collect();
        Rebalance {
            generation: self.generation,
            moved,
            assignments: self
                .members
                .iter()
                .map(|&m| (m, self.partitions_of(m)))
                .collect(),
        }
    }

    fn reassign(&mut self) {
        if self.members.is_empty() {
            self.owner.iter_mut().for_each(|o| *o = None);
            return;
        }
        match self.assignor {
            Assignor::Range => {
                let n = self.n_partitions as usize;
                let m = self.members.len();
                let mut p = 0usize;
                for (i, &member) in self.members.iter().enumerate() {
                    let take = n / m + usize::from(i < n % m);
                    for _ in 0..take {
                        self.owner[p] = Some(member);
                        p += 1;
                    }
                }
            }
            Assignor::Sticky => {
                // Keep partitions whose owner survived; collect orphans.
                let mut load: Vec<(u32, usize)> =
                    self.members.iter().map(|&m| (m, 0usize)).collect();
                let mut orphans: Vec<u32> = Vec::new();
                for p in 0..self.n_partitions {
                    match self.owner[p as usize] {
                        Some(m) if self.members.binary_search(&m).is_ok() => {
                            load.iter_mut().find(|(id, _)| *id == m).unwrap().1 += 1;
                        }
                        _ => {
                            self.owner[p as usize] = None;
                            orphans.push(p);
                        }
                    }
                }
                // Strip incumbents holding more than the balanced ceiling
                // — their highest partitions become orphans too.
                let ceil = (self.n_partitions as usize).div_ceil(self.members.len());
                for entry in &mut load {
                    while entry.1 > ceil {
                        let heavy = entry.0;
                        let victim = (0..self.n_partitions)
                            .rev()
                            .find(|&p| self.owner[p as usize] == Some(heavy))
                            .unwrap();
                        self.owner[victim as usize] = None;
                        orphans.push(victim);
                        entry.1 -= 1;
                    }
                }
                orphans.sort_unstable();
                // Deal orphans one at a time to the lightest member (ties
                // to the lowest member id).
                for p in orphans {
                    let idx = load
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &(id, c))| (c, id))
                        .map(|(i, _)| i)
                        .unwrap();
                    self.owner[p as usize] = Some(load[idx].0);
                    load[idx].1 += 1;
                }
                // Final minimal balancing: move single partitions from the
                // heaviest to the lightest until spread ≤ 1.
                loop {
                    let max_i = (0..load.len())
                        .max_by_key(|&i| (load[i].1, usize::MAX - i))
                        .unwrap();
                    let min_i = load
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &(id, c))| (c, id))
                        .map(|(i, _)| i)
                        .unwrap();
                    if load[max_i].1 <= load[min_i].1 + 1 {
                        break;
                    }
                    let heavy = load[max_i].0;
                    let victim = (0..self.n_partitions)
                        .rev()
                        .find(|&p| self.owner[p as usize] == Some(heavy))
                        .unwrap();
                    self.owner[victim as usize] = Some(load[min_i].0);
                    load[max_i].1 -= 1;
                    load[min_i].1 += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(g: &GroupCoordinator) -> Vec<usize> {
        g.members()
            .iter()
            .map(|&m| g.partitions_of(m).len())
            .collect()
    }

    #[test]
    fn range_deals_contiguous_chunks() {
        let g = GroupCoordinator::new(Assignor::Range, 10, &[5, 1, 3]);
        assert_eq!(g.members(), &[1, 3, 5]);
        assert_eq!(g.partitions_of(1), vec![0, 1, 2, 3]);
        assert_eq!(g.partitions_of(3), vec![4, 5, 6]);
        assert_eq!(g.partitions_of(5), vec![7, 8, 9]);
    }

    #[test]
    fn every_partition_is_owned_when_group_nonempty() {
        for assignor in [Assignor::Range, Assignor::Sticky] {
            let mut g = GroupCoordinator::new(assignor, 17, &[0, 1, 2, 3]);
            g.leave(2);
            g.join(9);
            g.join(10);
            g.leave(0);
            for p in 0..17 {
                assert!(g.owner_of(p).is_some(), "{assignor:?} left {p} orphaned");
            }
            let c = counts(&g);
            assert!(c.iter().max().unwrap() - c.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn sticky_moves_less_than_range() {
        let mut range = GroupCoordinator::new(Assignor::Range, 12, &[0, 1, 2]);
        let mut sticky = GroupCoordinator::new(Assignor::Sticky, 12, &[0, 1, 2]);
        let moved_range = range.join(3).unwrap().moved.len();
        let moved_sticky = sticky.join(3).unwrap().moved.len();
        assert!(
            moved_sticky < moved_range,
            "sticky {moved_sticky} >= range {moved_range}"
        );
        // Sticky moves the minimum: the new member's fair share.
        assert_eq!(moved_sticky, 3);
    }

    #[test]
    fn duplicate_join_and_absent_leave_are_no_ops() {
        let mut g = GroupCoordinator::new(Assignor::Sticky, 4, &[0, 1]);
        assert!(g.join(0).is_none());
        assert!(g.leave(7).is_none());
        assert_eq!(g.generation(), 1);
    }

    #[test]
    fn emptied_group_orphans_everything_and_recovers() {
        let mut g = GroupCoordinator::new(Assignor::Sticky, 4, &[0]);
        g.leave(0).unwrap();
        assert!((0..4).all(|p| g.owner_of(p).is_none()));
        let reb = g.join(5).unwrap();
        assert_eq!(reb.moved, vec![0, 1, 2, 3]);
        assert_eq!(g.partitions_of(5), vec![0, 1, 2, 3]);
    }

    #[test]
    fn identical_histories_give_identical_assignments() {
        let run = |assignor| {
            let mut g = GroupCoordinator::new(assignor, 32, &[0, 1, 2, 3, 4, 5, 6, 7]);
            g.join(8);
            g.leave(2);
            g.join(9);
            g.leave(0);
            g
        };
        for assignor in [Assignor::Range, Assignor::Sticky] {
            assert_eq!(run(assignor), run(assignor));
        }
    }

    #[test]
    fn rebalance_reports_match_owner_table() {
        let mut g = GroupCoordinator::new(Assignor::Range, 9, &[0, 1]);
        let reb = g.join(2).unwrap();
        for (m, parts) in &reb.assignments {
            assert_eq!(g.partitions_of(*m), *parts);
        }
        for &p in &reb.moved {
            assert!(g.owner_of(p).is_some());
        }
    }
}
