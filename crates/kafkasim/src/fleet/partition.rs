//! Keyed routing: which partition each tenant's messages land on.
//!
//! Partitioning is where fleet-scale skew is born: a key-hash router can
//! pile the heaviest tenants onto one partition while others idle, and
//! the skew bounds the whole group's throughput (*How Fast Can We
//! Insert?*'s envelope is per partition, not per topic). The strategies
//! here are the sweep axis of the fleet scenario: Kafka's default
//! round-robin and key-hash, plus a locality strategy in the spirit of
//! Raptis & Passarella's *On Efficiently Partitioning a Topic in Apache
//! Kafka* — partitions are pre-divided into per-class ranges sized by
//! each class's traffic share, so co-located (same-class) streams share
//! partitions and classes do not interfere.

use serde::{Deserialize, Serialize};

use super::population::Population;

/// Routes one message to a partition.
///
/// Implementations must be deterministic functions of their own state and
/// the `(tenant, class)` key — the fleet engine relies on that for
/// bit-identical replays.
///
/// # Example
///
/// ```
/// use kafkasim::fleet::{Partitioner, PartitionStrategy};
///
/// let mut router = PartitionStrategy::RoundRobin.build_simple(8);
/// let first: Vec<u32> = (0..4).map(|t| router.route(t, 0, 8)).collect();
/// assert_eq!(first, vec![0, 1, 2, 3]);
/// ```
pub trait Partitioner {
    /// Picks the partition (`0..n_partitions`) for one message of
    /// `tenant` belonging to stream-class index `class`.
    fn route(&mut self, tenant: u32, class: u16, n_partitions: u32) -> u32;
}

/// The partitioning strategies the fleet scenario sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Kafka's keyless default: a global cursor deals messages evenly
    /// regardless of tenant. No skew, but no per-tenant ordering.
    RoundRobin,
    /// Kafka's keyed default: `hash(tenant) % n`. Per-tenant ordering,
    /// with skew from hash collisions between heavy tenants.
    KeyHash,
    /// Locality-aware (after Raptis & Passarella): each class owns a
    /// contiguous partition range sized by its share of total traffic;
    /// tenants hash *within* their class's range.
    Locality,
}

impl PartitionStrategy {
    /// The strategy's stable display/CSV label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PartitionStrategy::RoundRobin => "round-robin",
            PartitionStrategy::KeyHash => "key-hash",
            PartitionStrategy::Locality => "locality",
        }
    }

    /// Builds the router for a fleet of `n_partitions` partitions over
    /// `population`. The population is only consulted by
    /// [`PartitionStrategy::Locality`] (for class traffic shares).
    #[must_use]
    pub fn build(&self, n_partitions: u32, population: &Population) -> Box<dyn Partitioner> {
        match self {
            PartitionStrategy::RoundRobin => Box::new(RoundRobinPartitioner { cursor: 0 }),
            PartitionStrategy::KeyHash => Box::new(KeyHashPartitioner),
            PartitionStrategy::Locality => {
                Box::new(LocalityPartitioner::new(n_partitions, population))
            }
        }
    }

    /// Builds a router without a population (usable for
    /// [`PartitionStrategy::RoundRobin`] and
    /// [`PartitionStrategy::KeyHash`]; `Locality` falls back to
    /// key-hash since it has no class shares to divide by).
    #[must_use]
    pub fn build_simple(&self, _n_partitions: u32) -> Box<dyn Partitioner> {
        match self {
            PartitionStrategy::RoundRobin => Box::new(RoundRobinPartitioner { cursor: 0 }),
            PartitionStrategy::KeyHash | PartitionStrategy::Locality => {
                Box::new(KeyHashPartitioner)
            }
        }
    }
}

/// SplitMix64 finaliser: a cheap, well-mixed integer hash. Deterministic
/// across platforms (pure wrapping arithmetic).
#[must_use]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct RoundRobinPartitioner {
    cursor: u64,
}

impl Partitioner for RoundRobinPartitioner {
    fn route(&mut self, _tenant: u32, _class: u16, n_partitions: u32) -> u32 {
        let p = (self.cursor % u64::from(n_partitions)) as u32;
        self.cursor = self.cursor.wrapping_add(1);
        p
    }
}

struct KeyHashPartitioner;

impl Partitioner for KeyHashPartitioner {
    fn route(&mut self, tenant: u32, _class: u16, n_partitions: u32) -> u32 {
        (mix64(u64::from(tenant)) % u64::from(n_partitions)) as u32
    }
}

/// Locality router: contiguous per-class partition ranges sized by class
/// traffic share (weight × rate), with tenants hashed within their
/// class's range.
struct LocalityPartitioner {
    /// `ranges[class] = (first_partition, len)`, covering `0..n` exactly.
    ranges: Vec<(u32, u32)>,
}

impl LocalityPartitioner {
    fn new(n_partitions: u32, population: &Population) -> Self {
        // Largest-remainder apportionment of partitions by traffic share,
        // with every class guaranteed at least one partition when
        // possible (a zero-width range would stall the class entirely).
        let shares: Vec<f64> = population
            .entries()
            .iter()
            .map(|e| e.weight * e.class.rate_hz)
            .collect();
        let total: f64 = shares.iter().sum();
        let n_classes = shares.len();
        let quotas: Vec<f64> = shares
            .iter()
            .map(|s| s / total * n_partitions as f64)
            .collect();
        let mut widths: Vec<u32> = quotas.iter().map(|q| q.floor() as u32).collect();
        if n_partitions as usize >= n_classes {
            for w in widths.iter_mut() {
                *w = (*w).max(1);
            }
        }
        // Settle the seat count to exactly n_partitions.
        let mut order: Vec<usize> = (0..n_classes).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - quotas[a].floor();
            let rb = quotas[b] - quotas[b].floor();
            rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
        });
        let mut assigned: u32 = widths.iter().sum();
        let mut i = 0usize;
        while assigned < n_partitions {
            widths[order[i % n_classes]] += 1;
            assigned += 1;
            i += 1;
        }
        // Over-assignment can only come from the max(1) floor; shrink the
        // widest classes back down.
        while assigned > n_partitions {
            let widest = (0..n_classes).max_by_key(|&c| widths[c]).unwrap();
            if widths[widest] <= 1 {
                break;
            }
            widths[widest] -= 1;
            assigned -= 1;
        }
        let mut ranges = Vec::with_capacity(n_classes);
        let mut start = 0u32;
        for w in widths {
            ranges.push((start, w));
            start += w;
        }
        LocalityPartitioner { ranges }
    }
}

impl Partitioner for LocalityPartitioner {
    fn route(&mut self, tenant: u32, class: u16, n_partitions: u32) -> u32 {
        let (start, len) = self.ranges[class as usize];
        if len == 0 {
            // Degenerate (more classes than partitions): fall back to
            // plain key-hash over the whole topic.
            return (mix64(u64::from(tenant)) % u64::from(n_partitions)) as u32;
        }
        start + (mix64(u64::from(tenant)) % u64::from(len)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::super::population::{Population, PopulationEntry, StreamClass};
    use super::*;
    use crate::source::SizeSpec;
    use desim::SimDuration;

    fn pop(weights_rates: &[(f64, f64)]) -> Population {
        Population::new(
            weights_rates
                .iter()
                .enumerate()
                .map(|(i, &(weight, rate_hz))| PopulationEntry {
                    class: StreamClass {
                        name: format!("c{i}"),
                        size: SizeSpec::Fixed(200),
                        rate_hz,
                        timeliness: SimDuration::from_secs(30),
                    },
                    weight,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let p = pop(&[(1.0, 1.0)]);
        let mut r = PartitionStrategy::RoundRobin.build(4, &p);
        let got: Vec<u32> = (0..8).map(|t| r.route(t, 0, 4)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn key_hash_is_sticky_per_tenant() {
        let p = pop(&[(1.0, 1.0)]);
        let mut r = PartitionStrategy::KeyHash.build(16, &p);
        let first = r.route(42, 0, 16);
        for _ in 0..10 {
            assert_eq!(r.route(42, 0, 16), first);
        }
        let hit: std::collections::BTreeSet<u32> = (0..200).map(|t| r.route(t, 0, 16)).collect();
        assert!(hit.len() > 10, "200 tenants should cover most partitions");
    }

    #[test]
    fn locality_ranges_partition_the_topic_by_traffic_share() {
        // Class 0 carries 0.5*4=2.0 traffic units, class 1 carries
        // 0.5*1=0.5: expect an 80/20 split of 10 partitions.
        let p = pop(&[(0.5, 4.0), (0.5, 1.0)]);
        let mut r = PartitionStrategy::Locality.build(10, &p);
        let class0: std::collections::BTreeSet<u32> = (0..500).map(|t| r.route(t, 0, 10)).collect();
        let class1: std::collections::BTreeSet<u32> = (0..500).map(|t| r.route(t, 1, 10)).collect();
        assert!(class0.iter().all(|&pt| pt < 8));
        assert!(class1.iter().all(|&pt| pt >= 8));
    }

    #[test]
    fn locality_gives_every_class_a_partition_when_possible() {
        // A tiny class must not get a zero-width range.
        let p = pop(&[(0.98, 10.0), (0.02, 0.1)]);
        let mut r = PartitionStrategy::Locality.build(4, &p);
        let tiny: std::collections::BTreeSet<u32> = (0..100).map(|t| r.route(t, 1, 4)).collect();
        assert_eq!(tiny.len(), 1, "tiny class fits one dedicated partition");
    }

    #[test]
    fn degenerate_locality_falls_back_to_key_hash() {
        // More classes than partitions: zero-width ranges route by hash.
        let p = pop(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let mut r = PartitionStrategy::Locality.build(2, &p);
        for t in 0..50 {
            for c in 0..3 {
                assert!(r.route(t, c, 2) < 2);
            }
        }
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(PartitionStrategy::RoundRobin.name(), "round-robin");
        assert_eq!(PartitionStrategy::KeyHash.name(), "key-hash");
        assert_eq!(PartitionStrategy::Locality.name(), "locality");
    }
}
