//! Fleet runs on the sharded engine: one shard per broker island,
//! bit-identical to the sequential engine at any thread count.
//!
//! # Shard assignment
//!
//! Each partition of the shared topic lives on its own broker island — the
//! fleet topology has no replication links, so
//! [`netsim::IslandMap`] over the empty edge set yields one island per
//! partition, and each island becomes one [`desim::shard`] shard. A shard
//! owns its partition's token bucket, consumption state, and every tenant
//! *homed* to it.
//!
//! # Tenant homing and the two routing regimes
//!
//! * **Static strategies** (`KeyHash`, `Locality`, including the degenerate
//!   locality fallback): a tenant's partition is a pure function of
//!   `(tenant, class)`, so the tenant is homed to its partition's shard and
//!   **no event ever crosses a shard boundary**. Each shard replays exactly
//!   the subsequence of the sequential engine's events that touch its
//!   partition, in the same relative order (the shard-local heap assigns
//!   sequence numbers in the same order the global heap did), so the merged
//!   outcome is **equal to [`FleetRun::execute`]** — not just
//!   thread-invariant. The proptests pin both properties.
//! * **Round-robin**: the global dealing cursor couples every flush to
//!   every partition. The cursor position at each flush is *precomputed*
//!   (survivor counts per flush depend only on per-tenant RNG streams,
//!   which are replayed from clones during setup), tenants are homed by
//!   hash, and each flush sends one **coalesced append batch per remote
//!   partition** through the engine's mailboxes — exercising the
//!   cross-shard merge path. Delivery is clamped to the next macro-step
//!   boundary, so remote appends land up to [`SHARD_HORIZON`] later than
//!   in the sequential engine: round-robin sharded results are
//!   bit-identical *across thread counts* but intentionally not equal to
//!   the sequential engine (the deferred hop changes token-bucket timing).
//!   `bench` therefore keeps the sequential engine for round-robin rows.
//!
//! # Event coalescing
//!
//! The append hot path enqueues one event per producer batch, never per
//! message: a flush performs its per-message Bernoulli loss draws (the RNG
//! stream must match the sequential engine draw for draw) and then appends
//! the survivors as a single [`PartitionState::accept`] batch — a branch-free
//! fan-out of the per-message outcomes (accepted/overload/duplicate) done at
//! dequeue. The coalescing proptest pins `accept(n)` bit-identical to `n`
//! single-message attempts.
//!
//! # Consumer-group churn
//!
//! Group membership evolves independently of message flow, so the entire
//! churn script is replayed on a [`GroupCoordinator`] during setup; every
//! shard schedules every churn event and applies the precomputed ownership
//! and pause/re-read effects to its local partition. Rebalance records,
//! per-window moved/member counts, and the consumer-group trace stream are
//! synthesized from the same plan, byte-identical to the sequential
//! engine's.

use std::sync::Arc;

use desim::{FastMap, ShardContext, ShardWorld, ShardedSim, SimDuration, SimRng, SimTime};
use netsim::IslandMap;
use obs::{TenantSeries, TenantWindowRow, TraceEvent};

use super::engine::{
    ChurnAction, ClassWindowAcc, FleetConfig, FleetOutcome, FleetRun, PartitionState,
    RebalanceRecord, TenantLedger, CONSUME_TICK, DRAIN_FACTOR, FLUSH_INTERVAL,
};
use super::group::{GroupCoordinator, Rebalance};
use super::partition::{mix64, PartitionStrategy};

/// Macro-step horizon of the fleet's sharded runs. Static strategies have
/// zero cross-shard traffic, so any horizon gives identical results; the
/// value only trades barrier overhead against round-robin's mailbox
/// latency (remote appends are clamped to the next multiple of this).
pub(crate) const SHARD_HORIZON: SimDuration = SimDuration::from_millis(100);

/// One scripted churn event, fully resolved against the group coordinator.
struct ChurnStep {
    at: SimTime,
    action: ChurnAction,
    member: u32,
    /// Generation to stamp on the Joined/Left trace event.
    generation: u64,
    /// `Some` when the membership actually changed.
    reb: Option<Rebalance>,
    /// Members after this step, ascending.
    members_after: Vec<u32>,
    /// `owned_after[p]`: does partition `p` have an owner after this step?
    owned_after: Vec<bool>,
}

/// Everything derivable from the config before the event loop runs.
struct ChurnPlan {
    /// Steps in firing order (time, then script index).
    steps: Vec<ChurnStep>,
    initial_members: Vec<u32>,
    initial_assignments: Vec<(u32, Vec<u32>)>,
    initial_owned: Vec<bool>,
}

fn plan_churn(cfg: &FleetConfig) -> ChurnPlan {
    let initial: Vec<u32> = (0..cfg.initial_consumers).collect();
    let mut group = GroupCoordinator::new(cfg.assignor, cfg.partitions, &initial);
    let initial_members = group.members().to_vec();
    let initial_assignments: Vec<(u32, Vec<u32>)> = initial_members
        .iter()
        .map(|&m| (m, group.partitions_of(m)))
        .collect();
    let owned = |g: &GroupCoordinator| {
        (0..cfg.partitions)
            .map(|p| g.owner_of(p).is_some())
            .collect::<Vec<bool>>()
    };
    let initial_owned = owned(&group);

    // The sequential engine fires churn in (time, script index) order.
    let mut order: Vec<usize> = (0..cfg.churn.len()).collect();
    order.sort_by_key(|&i| (cfg.churn[i].at, i));
    let steps = order
        .into_iter()
        .map(|i| {
            let ev = cfg.churn[i];
            let reb = match ev.action {
                ChurnAction::Join => group.join(ev.member),
                ChurnAction::Leave => group.leave(ev.member),
            };
            let generation = reb
                .as_ref()
                .map_or_else(|| group.generation(), |r| r.generation);
            ChurnStep {
                at: ev.at,
                action: ev.action,
                member: ev.member,
                generation,
                reb,
                members_after: group.members().to_vec(),
                owned_after: owned(&group),
            }
        })
        .collect();
    ChurnPlan {
        steps,
        initial_members,
        initial_assignments,
        initial_owned,
    }
}

/// How a tenant's messages find their partition.
enum Route {
    /// Every message of this tenant lands on this *local* partition index.
    Static(usize),
    /// Round-robin: precomputed global-cursor start per flush, consumed in
    /// flush order.
    RoundRobin { starts: Vec<u64>, next: usize },
}

/// Per-tenant runtime state on its home shard.
struct TenantRt {
    class: u16,
    rate_hz: f64,
    rng: SimRng,
    last_flush: SimTime,
    carry: f64,
    route: Route,
    ledger: TenantLedger,
}

/// Appends credited on a shard for a tenant homed elsewhere (round-robin
/// cross-shard batches).
#[derive(Default, Clone, Copy)]
struct RemoteDelta {
    delivered: u64,
    lost_overload: u64,
    duplicated: u64,
}

/// One closed KPI window as one shard saw it.
struct LocalWindow {
    backlog: u64,
    classes: Vec<ClassWindowAcc>,
}

#[derive(Default)]
struct Fired {
    flush: u64,
    churn: u64,
    tick: u64,
    wc: u64,
    batch: u64,
}

#[derive(Clone)]
enum ShardEvent {
    /// Flush of the shard-local tenant at this index.
    Flush(u32),
    /// Churn step at this index of the (time-sorted) plan.
    Churn(u32),
    ConsumeTick,
    WindowClose,
    /// Coalesced cross-shard append batch (round-robin only): `count`
    /// survivors of one flush of `tenant` aimed at `partition`.
    AppendBatch {
        tenant: u32,
        class: u16,
        partition: u32,
        count: u64,
    },
}

struct FleetShard {
    cap: f64,
    base_loss: f64,
    end: SimTime,
    window: SimDuration,
    n_partitions: u64,
    rebalance_pause: SimDuration,
    shard_of_partition: Arc<Vec<u32>>,
    churn: Arc<Vec<ChurnStep>>,
    /// Global ids of the local partitions, ascending.
    parts: Vec<u32>,
    /// Global partition id → local index.
    local_of: Vec<Option<usize>>,
    pstate: Vec<PartitionState>,
    owned: Vec<bool>,
    /// Local tenants, ascending by tenant id.
    tenants: Vec<TenantRt>,
    class_window: Vec<ClassWindowAcc>,
    windows: Vec<LocalWindow>,
    remote: FastMap<u32, RemoteDelta>,
    fired: Fired,
}

impl FleetShard {
    /// Append `count` survivors of `tenant` to local partition `local` at
    /// `now`, crediting `ledger` (the tenant's, or a remote delta).
    /// Branch-free fan-out of the batched outcome.
    #[allow(clippy::too_many_arguments)]
    fn append_batch(
        pstate: &mut PartitionState,
        class_window: &mut [ClassWindowAcc],
        cap: f64,
        now: SimTime,
        class: u16,
        count: u64,
        delivered: &mut u64,
        lost_overload: &mut u64,
        duplicated: &mut u64,
    ) {
        let accepted = pstate.accept(cap, now, count);
        let dup = accepted * u64::from(now < pstate.reread_until);
        let overload = count - accepted;
        *delivered += accepted;
        *duplicated += dup;
        *lost_overload += overload;
        let cw = &mut class_window[class as usize];
        cw.delivered += accepted;
        cw.duplicated += dup;
        cw.lost += overload;
    }

    fn handle_flush(&mut self, idx: usize, now: SimTime, ctx: &mut ShardContext<ShardEvent>) {
        self.fired.flush += 1;
        let cap = self.cap;
        let base_loss = self.base_loss;
        let np = self.n_partitions;
        let end = self.end;
        let FleetShard {
            pstate,
            class_window,
            tenants,
            local_of,
            shard_of_partition,
            ..
        } = self;
        let t = &mut tenants[idx];
        let elapsed = (now - t.last_flush).as_secs_f64();
        t.last_flush = now;
        let emitted = t.rate_hz * elapsed + t.carry;
        let n = emitted.floor() as u64;
        t.carry = emitted - n as f64;
        let class = t.class;
        t.ledger.produced += n;
        class_window[class as usize].produced += n;
        // Per-message loss draws — the RNG stream must match the
        // sequential engine draw for draw. Appends are coalesced below.
        let mut survivors = 0u64;
        for _ in 0..n {
            survivors += u64::from(!t.rng.bernoulli(base_loss));
        }
        let lost_net = n - survivors;
        t.ledger.lost_network += lost_net;
        class_window[class as usize].lost += lost_net;

        let tenant = t.ledger.tenant;
        let TenantRt { route, ledger, .. } = t;
        let TenantLedger {
            delivered,
            lost_overload,
            duplicated,
            ..
        } = ledger;
        match route {
            Route::Static(local) => {
                FleetShard::append_batch(
                    &mut pstate[*local],
                    class_window,
                    cap,
                    now,
                    class,
                    survivors,
                    delivered,
                    lost_overload,
                    duplicated,
                );
            }
            Route::RoundRobin { starts, next } => {
                let cstart = starts[*next];
                *next += 1;
                let q = survivors / np;
                let r = survivors % np;
                let first = cstart % np;
                for p in 0..np {
                    let offset = (p + np - first) % np;
                    let count = q + u64::from(offset < r);
                    if count == 0 {
                        continue;
                    }
                    if let Some(local) = local_of[p as usize] {
                        FleetShard::append_batch(
                            &mut pstate[local],
                            class_window,
                            cap,
                            now,
                            class,
                            count,
                            delivered,
                            lost_overload,
                            duplicated,
                        );
                    } else {
                        ctx.send(
                            shard_of_partition[p as usize],
                            now,
                            ShardEvent::AppendBatch {
                                tenant,
                                class,
                                partition: p as u32,
                                count,
                            },
                        );
                    }
                }
            }
        }
        let next_flush = now + FLUSH_INTERVAL;
        if next_flush < end {
            ctx.schedule_at(next_flush, ShardEvent::Flush(idx as u32));
        }
    }

    fn handle_churn(&mut self, idx: usize, now: SimTime) {
        self.fired.churn += 1;
        let step = &self.churn[idx];
        if let Some(reb) = &step.reb {
            let until = now + self.rebalance_pause;
            for &p in &reb.moved {
                if let Some(local) = self.local_of[p as usize] {
                    let st = &mut self.pstate[local];
                    st.paused_until = until;
                    st.reread_until = until;
                }
            }
        }
        for (local, &global) in self.parts.iter().enumerate() {
            self.owned[local] = step.owned_after[global as usize];
        }
    }

    fn handle_tick(&mut self, now: SimTime, ctx: &mut ShardContext<ShardEvent>) {
        self.fired.tick += 1;
        let drain = (self.cap * DRAIN_FACTOR * CONSUME_TICK.as_secs_f64()).floor() as u64;
        for local in 0..self.pstate.len() {
            if !self.owned[local] {
                continue;
            }
            let st = &mut self.pstate[local];
            if st.paused_until > now {
                continue;
            }
            let backlog = st.appends - st.consumed;
            st.consumed += backlog.min(drain);
        }
        let next = now + CONSUME_TICK;
        if next < self.end {
            ctx.schedule_at(next, ShardEvent::ConsumeTick);
        }
    }

    fn handle_window_close(&mut self, now: SimTime, ctx: &mut ShardContext<ShardEvent>) {
        self.fired.wc += 1;
        let backlog: u64 = self.pstate.iter().map(|p| p.appends - p.consumed).sum();
        self.windows.push(LocalWindow {
            backlog,
            classes: self.class_window.clone(),
        });
        self.class_window
            .iter_mut()
            .for_each(|a| *a = ClassWindowAcc::default());
        let next = now + self.window;
        if next <= self.end {
            ctx.schedule_at(next, ShardEvent::WindowClose);
        }
    }

    fn handle_append_batch(
        &mut self,
        tenant: u32,
        class: u16,
        partition: u32,
        count: u64,
        now: SimTime,
    ) {
        self.fired.batch += 1;
        let local = self.local_of[partition as usize].expect("batch routed to wrong shard");
        let delta = self.remote.entry(tenant).or_default();
        FleetShard::append_batch(
            &mut self.pstate[local],
            &mut self.class_window,
            self.cap,
            now,
            class,
            count,
            &mut delta.delivered,
            &mut delta.lost_overload,
            &mut delta.duplicated,
        );
    }
}

impl ShardWorld for FleetShard {
    type Event = ShardEvent;

    fn handle(&mut self, event: ShardEvent, ctx: &mut ShardContext<ShardEvent>) {
        let now = ctx.now();
        match event {
            ShardEvent::Flush(idx) => self.handle_flush(idx as usize, now, ctx),
            ShardEvent::Churn(idx) => self.handle_churn(idx as usize, now),
            ShardEvent::ConsumeTick => self.handle_tick(now, ctx),
            ShardEvent::WindowClose => self.handle_window_close(now, ctx),
            ShardEvent::AppendBatch {
                tenant,
                class,
                partition,
                count,
            } => self.handle_append_batch(tenant, class, partition, count, now),
        }
    }
}

/// The window (0-based) a churn event at `at` is charged to: churn fires
/// before a coincident window close, so `at == k·window` lands in window
/// `k - 1`.
fn window_of(at: SimTime, window: SimDuration) -> usize {
    (at.as_micros().div_ceil(window.as_micros()) - 1) as usize
}

impl FleetRun {
    /// Run on the sharded engine with `threads` worker threads.
    ///
    /// Results are bit-identical for every thread count. For the static
    /// partitioning strategies (`KeyHash`, `Locality`) the outcome is
    /// additionally equal to [`FleetRun::execute`]; round-robin routes
    /// cross-shard appends through macro-step mailboxes and is documented
    /// as a different (still deterministic) model — see the module docs.
    #[must_use]
    pub fn execute_sharded(self, threads: usize) -> FleetOutcome {
        self.execute_sharded_traced(threads).0
    }

    /// [`FleetRun::execute_sharded`], also returning the consumer-group
    /// trace stream (identical to what [`FleetRun::execute_traced`] emits).
    #[must_use]
    pub fn execute_sharded_traced(self, threads: usize) -> (FleetOutcome, Vec<TraceEvent>) {
        let cfg = self.cfg;
        let seed = self.seed;
        let n_parts = cfg.partitions as usize;

        // One shard per broker island. The fleet topology has no
        // replication links, so every partition is its own island.
        let islands = IslandMap::compute(n_parts, &[]);
        let n_shards = islands.n_islands();
        let shard_of_partition: Arc<Vec<u32>> =
            Arc::new((0..n_parts).map(|p| islands.shard_of(p as u32)).collect());

        let classes_of = cfg.population.apportion(cfg.producers);
        let mut master = SimRng::seed_from_u64(seed);
        let rngs: Vec<SimRng> = (0..cfg.producers).map(|_| master.fork()).collect();
        let n_classes = cfg.population.entries().len();
        let mut class_producers = vec![0u64; n_classes];
        for &c in &classes_of {
            class_producers[c as usize] += 1;
        }

        let plan = plan_churn(&cfg);
        let end = SimTime::ZERO + cfg.duration;
        let is_static = !matches!(cfg.strategy, PartitionStrategy::RoundRobin);

        // Tenant homes. Static: the tenant's (pure-function) partition's
        // shard. Round-robin: spread by hash.
        let mut router = cfg.strategy.build(cfg.partitions, &cfg.population);
        let home_of: Vec<(u32, Option<u32>)> = (0..cfg.producers)
            .map(|t| {
                let t32 = t as u32;
                if is_static {
                    let p = router.route(t32, classes_of[t], cfg.partitions);
                    (shard_of_partition[p as usize], Some(p))
                } else {
                    ((mix64(u64::from(t32)) % n_shards as u64) as u32, None)
                }
            })
            .collect();

        // Round-robin cursor precompute: replay every tenant's flush
        // schedule against a *clone* of its RNG to count survivors, then
        // prefix-sum in global (time, tenant) flush order — the order the
        // sequential engine interleaves flushes in.
        let rr_starts: Vec<Vec<u64>> = if is_static {
            Vec::new()
        } else {
            let mut flushes: Vec<(SimTime, u32, u64)> = Vec::new();
            for t in 0..cfg.producers {
                let mut rng = rngs[t].clone();
                let rate = cfg.population.class(classes_of[t]).rate_hz;
                let phase = (t % 8) as u64 + 1;
                let mut at = SimTime::ZERO
                    + SimDuration::from_micros(FLUSH_INTERVAL.as_micros() * phase / 8);
                let mut last = SimTime::ZERO;
                let mut carry = 0.0f64;
                loop {
                    let emitted = rate * (at - last).as_secs_f64() + carry;
                    let n = emitted.floor() as u64;
                    carry = emitted - n as f64;
                    last = at;
                    let mut survivors = 0u64;
                    for _ in 0..n {
                        survivors += u64::from(!rng.bernoulli(cfg.base_loss));
                    }
                    flushes.push((at, t as u32, survivors));
                    let next = at + FLUSH_INTERVAL;
                    if next >= end {
                        break;
                    }
                    at = next;
                }
            }
            flushes.sort_by_key(|&(at, t, _)| (at, t));
            let mut starts = vec![Vec::new(); cfg.producers];
            let mut cursor = 0u64;
            for (_, t, survivors) in flushes {
                starts[t as usize].push(cursor);
                cursor = cursor.wrapping_add(survivors);
            }
            starts
        };

        // Build the shard worlds.
        let mut plan = plan;
        let churn = Arc::new(std::mem::take(&mut plan.steps));
        let mut worlds: Vec<FleetShard> = (0..n_shards)
            .map(|s| {
                let parts: Vec<u32> = (0..n_parts)
                    .filter(|&p| shard_of_partition[p] == s as u32)
                    .map(|p| p as u32)
                    .collect();
                let mut local_of = vec![None; n_parts];
                for (local, &global) in parts.iter().enumerate() {
                    local_of[global as usize] = Some(local);
                }
                let owned = parts
                    .iter()
                    .map(|&g| plan.initial_owned[g as usize])
                    .collect();
                let pstate = vec![PartitionState::fresh(cfg.partition_capacity_hz); parts.len()];
                FleetShard {
                    cap: cfg.partition_capacity_hz,
                    base_loss: cfg.base_loss,
                    end,
                    window: cfg.window,
                    n_partitions: u64::from(cfg.partitions),
                    rebalance_pause: cfg.rebalance_pause,
                    shard_of_partition: Arc::clone(&shard_of_partition),
                    churn: Arc::clone(&churn),
                    parts,
                    local_of,
                    pstate,
                    owned,
                    tenants: Vec::new(),
                    class_window: vec![ClassWindowAcc::default(); n_classes],
                    windows: Vec::new(),
                    remote: FastMap::new(),
                    fired: Fired::default(),
                }
            })
            .collect();

        // Distribute tenants to their home shards in ascending tenant
        // order, consuming the per-tenant RNG forks in the same order the
        // sequential engine forked them.
        let mut rr_starts = rr_starts;
        for (t, rng) in rngs.into_iter().enumerate() {
            let (home, static_p) = home_of[t];
            let world = &mut worlds[home as usize];
            let route = match static_p {
                Some(p) => Route::Static(world.local_of[p as usize].expect("home owns partition")),
                None => Route::RoundRobin {
                    starts: std::mem::take(&mut rr_starts[t]),
                    next: 0,
                },
            };
            world.tenants.push(TenantRt {
                class: classes_of[t],
                rate_hz: cfg.population.class(classes_of[t]).rate_hz,
                rng,
                last_flush: SimTime::ZERO,
                carry: 0.0,
                route,
                ledger: TenantLedger {
                    tenant: t as u32,
                    class: classes_of[t],
                    produced: 0,
                    delivered: 0,
                    lost_network: 0,
                    lost_overload: 0,
                    duplicated: 0,
                },
            });
        }

        // Seed each shard's heap in the sequential engine's setup order:
        // first flushes (tenant ascending), churn (script order), consume
        // tick, window close — so shard-local sequence numbers order
        // coincident events exactly as the global heap did.
        let mut sim = ShardedSim::new(worlds, SHARD_HORIZON, seed);
        for s in 0..n_shards {
            let firsts: Vec<(u32, SimTime)> = sim
                .world_mut(s)
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let phase = u64::from(t.ledger.tenant % 8) + 1;
                    (
                        i as u32,
                        SimTime::ZERO
                            + SimDuration::from_micros(FLUSH_INTERVAL.as_micros() * phase / 8),
                    )
                })
                .collect();
            for (i, at) in firsts {
                sim.schedule(s, at, ShardEvent::Flush(i));
            }
            for (i, step) in churn.iter().enumerate() {
                sim.schedule(s, step.at, ShardEvent::Churn(i as u32));
            }
            sim.schedule(s, SimTime::ZERO + CONSUME_TICK, ShardEvent::ConsumeTick);
            sim.schedule(s, SimTime::ZERO + cfg.window, ShardEvent::WindowClose);
        }

        sim.run_until_idle(threads);
        let total_fired = sim.events_fired();
        let worlds = sim.into_worlds();

        // --- Merge ---------------------------------------------------
        let mut ledgers: Vec<TenantLedger> = classes_of
            .iter()
            .enumerate()
            .map(|(t, &class)| TenantLedger {
                tenant: t as u32,
                class,
                produced: 0,
                delivered: 0,
                lost_network: 0,
                lost_overload: 0,
                duplicated: 0,
            })
            .collect();
        let mut partition_appends = vec![0u64; n_parts];
        let n_windows = (cfg.duration.as_micros() / cfg.window.as_micros()) as usize;
        let mut win_class = vec![vec![ClassWindowAcc::default(); n_classes]; n_windows];
        let mut win_backlog = vec![0u64; n_windows];
        let mut flush_fired = 0u64;
        let mut tick_fired = 0u64;
        let mut wc_fired = 0u64;
        for world in &worlds {
            flush_fired += world.fired.flush;
            tick_fired = world.fired.tick;
            wc_fired = world.fired.wc;
            for t in &world.tenants {
                ledgers[t.ledger.tenant as usize] = t.ledger;
            }
            for (local, &global) in world.parts.iter().enumerate() {
                partition_appends[global as usize] = world.pstate[local].appends;
            }
            for (w, row) in world.windows.iter().enumerate() {
                win_backlog[w] += row.backlog;
                for (c, acc) in row.classes.iter().enumerate() {
                    let agg = &mut win_class[w][c];
                    agg.produced += acc.produced;
                    agg.delivered += acc.delivered;
                    agg.lost += acc.lost;
                    agg.duplicated += acc.duplicated;
                }
            }
        }
        // Remote deltas (round-robin cross-shard appends) fold in after
        // every home ledger has been scattered — a shard can hold deltas
        // for a tenant homed on a not-yet-visited shard.
        for world in &worlds {
            for (&tenant, delta) in &world.remote {
                let l = &mut ledgers[tenant as usize];
                l.delivered += delta.delivered;
                l.lost_overload += delta.lost_overload;
                l.duplicated += delta.duplicated;
            }
        }
        // Either way per-tenant conservation holds:
        // produced = delivered + lost.

        // Per-window moved-partition and membership counts, from the plan.
        let mut win_moved = vec![0u64; n_windows];
        let mut win_members = vec![plan.initial_members.len() as u64; n_windows];
        {
            let mut members = plan.initial_members.len() as u64;
            let mut step_iter = churn.iter().peekable();
            for (w, slot) in win_members.iter_mut().enumerate() {
                let close = SimTime::ZERO
                    + SimDuration::from_micros(cfg.window.as_micros() * (w as u64 + 1));
                while let Some(step) = step_iter.peek() {
                    if step.at > close {
                        break;
                    }
                    members = step.members_after.len() as u64;
                    if let Some(reb) = &step.reb {
                        win_moved[window_of(step.at, cfg.window)] += reb.moved.len() as u64;
                    }
                    step_iter.next();
                }
                *slot = members;
            }
        }

        let mut series = TenantSeries::new(cfg.window);
        for (w, classes) in win_class.iter().enumerate() {
            // Same expression the sequential engine uses (`now - window` at
            // the close): a SimTime, so the f64 is bit-identical.
            let start_s = (SimTime::ZERO
                + SimDuration::from_micros(cfg.window.as_micros() * w as u64))
            .as_secs_f64();
            for (c, acc) in classes.iter().enumerate() {
                series.push(TenantWindowRow {
                    window: w as u64,
                    start_s,
                    cohort: cfg.population.class(c as u16).name.clone(),
                    producers: class_producers[c],
                    produced: acc.produced,
                    delivered: acc.delivered,
                    lost: acc.lost,
                    duplicated: acc.duplicated,
                    backlog: win_backlog[w],
                    moved_partitions: win_moved[w],
                    group_members: win_members[w],
                });
            }
        }

        let rebalances: Vec<RebalanceRecord> = churn
            .iter()
            .filter_map(|step| {
                step.reb.as_ref().map(|reb| RebalanceRecord {
                    at: step.at,
                    generation: reb.generation,
                    members: step.members_after.clone(),
                    moved: reb.moved.clone(),
                })
            })
            .collect();

        // For static strategies, report the event count the sequential
        // engine would have fired (ticks, closes and churn are replicated
        // per shard but correspond to one global event each); round-robin
        // adds mailbox batches, so report the true count.
        let events_fired = if is_static {
            flush_fired + churn.len() as u64 + tick_fired + wc_fired
        } else {
            total_fired
        };

        let (totals, classes) =
            super::engine::totals_and_classes(&ledgers, &class_producers, &cfg.population);

        let trace = synthesize_group_trace(&plan, &churn);
        (
            FleetOutcome {
                tenants: ledgers,
                totals,
                classes,
                partition_appends,
                rebalances,
                windows: series,
                events_fired,
            },
            trace,
        )
    }
}

/// The consumer-group trace stream the sequential engine emits, rebuilt
/// from the churn plan: generation-1 assignments at time zero, then per
/// churn a Joined/Left event followed by the post-rebalance assignments.
fn synthesize_group_trace(plan: &ChurnPlan, steps: &[ChurnStep]) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for (member, partitions) in &plan.initial_assignments {
        out.push(TraceEvent::PartitionsAssigned {
            at: SimTime::ZERO,
            member: *member,
            generation: 1,
            partitions: partitions.clone(),
            moved: partitions.len() as u64,
        });
    }
    for step in steps {
        out.push(match step.action {
            ChurnAction::Join => TraceEvent::ConsumerJoined {
                at: step.at,
                member: step.member,
                generation: step.generation,
            },
            ChurnAction::Leave => TraceEvent::ConsumerLeft {
                at: step.at,
                member: step.member,
                generation: step.generation,
            },
        });
        if let Some(reb) = &step.reb {
            for (member, parts) in &reb.assignments {
                let moved = parts.iter().filter(|p| reb.moved.contains(p)).count() as u64;
                out.push(TraceEvent::PartitionsAssigned {
                    at: step.at,
                    member: *member,
                    generation: reb.generation,
                    partitions: parts.clone(),
                    moved,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::engine::{ChurnEvent, FleetRun};
    use super::super::population::{Population, PopulationEntry, StreamClass};
    use super::*;
    use crate::source::SizeSpec;
    use obs::RingBufferSink;

    fn cfg(strategy: PartitionStrategy) -> FleetConfig {
        FleetConfig {
            producers: 150,
            partitions: 12,
            strategy,
            population: Population::new(vec![
                PopulationEntry {
                    class: StreamClass {
                        name: "web".into(),
                        size: SizeSpec::Fixed(200),
                        rate_hz: 1.5,
                        timeliness: SimDuration::from_secs(2),
                    },
                    weight: 0.7,
                },
                PopulationEntry {
                    class: StreamClass {
                        name: "game".into(),
                        size: SizeSpec::Fixed(80),
                        rate_hz: 3.0,
                        timeliness: SimDuration::from_millis(300),
                    },
                    weight: 0.3,
                },
            ])
            .unwrap(),
            initial_consumers: 4,
            assignor: super::super::group::Assignor::Sticky,
            churn: vec![
                ChurnEvent {
                    at: SimTime::from_secs(6),
                    action: ChurnAction::Join,
                    member: 4,
                },
                ChurnEvent {
                    at: SimTime::from_secs(12),
                    action: ChurnAction::Leave,
                    member: 1,
                },
            ],
            duration: SimDuration::from_secs(20),
            window: SimDuration::from_secs(5),
            partition_capacity_hz: 30.0,
            base_loss: 0.01,
            rebalance_pause: SimDuration::from_secs(2),
        }
    }

    #[test]
    fn static_strategies_match_the_sequential_engine_exactly() {
        for strategy in [PartitionStrategy::KeyHash, PartitionStrategy::Locality] {
            let legacy = FleetRun::new(cfg(strategy), 7).execute();
            for threads in [1, 2, 4, 8] {
                let sharded = FleetRun::new(cfg(strategy), 7).execute_sharded(threads);
                assert_eq!(sharded, legacy, "{strategy:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn sharded_trace_matches_sequential_trace() {
        let (_, mut sink) = FleetRun::new(cfg(PartitionStrategy::KeyHash), 7)
            .execute_traced(Box::new(RingBufferSink::new(8192)));
        let legacy_events = sink.drain();
        let (_, sharded_events) =
            FleetRun::new(cfg(PartitionStrategy::KeyHash), 7).execute_sharded_traced(4);
        assert_eq!(sharded_events, legacy_events);
    }

    #[test]
    fn round_robin_is_thread_invariant_and_conserves() {
        let baseline = FleetRun::new(cfg(PartitionStrategy::RoundRobin), 11).execute_sharded(1);
        for threads in [2, 4, 8] {
            let run =
                FleetRun::new(cfg(PartitionStrategy::RoundRobin), 11).execute_sharded(threads);
            assert_eq!(run, baseline, "round-robin at {threads} threads");
        }
        assert!(baseline.totals.produced > 0);
        for t in &baseline.tenants {
            assert_eq!(t.produced, t.delivered + t.lost(), "tenant {}", t.tenant);
        }
        assert_eq!(
            baseline.totals.delivered,
            baseline.partition_appends.iter().sum::<u64>()
        );
        // The round-robin cursor deals across partitions, so cross-shard
        // batches must actually have flowed.
        let spread = baseline
            .partition_appends
            .iter()
            .filter(|&&a| a > 0)
            .count();
        assert!(spread > 1, "round-robin should spread appends");
    }

    #[test]
    fn coalesced_accept_matches_sequential_singles() {
        // accept(n) must be bit-identical to n accept(1) calls at the same
        // instant, across refills and partial acceptance.
        let times = [0u64, 40, 40, 90, 400, 1000, 1001, 5000];
        let batches = [3u64, 1, 7, 2, 30, 9, 1, 14];
        let mut a = PartitionState::fresh(25.0);
        let mut b = PartitionState::fresh(25.0);
        for (&ms, &n) in times.iter().zip(&batches) {
            let now = SimTime::from_millis(ms);
            let accepted = a.accept(25.0, now, n);
            let mut singles = 0;
            for _ in 0..n {
                singles += b.accept(25.0, now, 1);
            }
            assert_eq!(accepted, singles);
            assert_eq!(a.tokens.to_bits(), b.tokens.to_bits());
            assert_eq!(a.appends, b.appends);
        }
    }
}
