//! The fleet event engine: N producers → partitioned topic → consumer
//! group, with per-tenant reliability accounting.
//!
//! This engine deliberately does **not** instantiate N copies of the
//! protocol-level [`crate::runtime::KafkaRun`] — at 10³–10⁶ producers
//! that would be millions of batch/ack events per second of simulated
//! time. Instead it models the fleet at the *flow* level on the same
//! [`desim`] event loop: producers emit deterministic Poisson-free
//! (rate × elapsed, fractional carry) message counts per flush, a
//! pluggable [`Partitioner`] routes every message, per-partition token
//! buckets bound append throughput (the *How Fast Can We Insert?*
//! envelope), and a [`GroupCoordinator`] rebalances consumer ownership
//! under join/leave churn. Loss is attributed per tenant to either the
//! network (`base_loss` Bernoulli per message, per-tenant forked RNG) or
//! partition overload (bucket exhausted); duplicates arise when a
//! partition changes owner and the new consumer re-reads uncommitted
//! records under at-least-once — modelled as one duplicate per append to
//! a moved partition during its re-read window.
//!
//! **Conservation invariants** (pinned by the workspace proptests): for
//! every tenant, `produced == delivered + lost` and
//! `lost == lost_network + lost_overload`; summing any ledger column
//! over tenants equals the fleet-level total. All state lives in plain
//! `Vec`s indexed by tenant/partition/class and all randomness comes
//! from per-tenant forks of one master [`SimRng`], so a `(config, seed)`
//! pair replays bit-identically.

use desim::{EventContext, EventSim, EventWorld, SimDuration, SimRng, SimTime};
use obs::{NoopSink, Profiler, TenantSeries, TenantWindowRow, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};

use super::group::{Assignor, GroupCoordinator};
use super::partition::{PartitionStrategy, Partitioner};
use super::population::Population;

/// Producers flush accumulated messages on this cadence.
pub(crate) const FLUSH_INTERVAL: SimDuration = SimDuration::from_millis(200);
/// Consumer drain cadence.
pub(crate) const CONSUME_TICK: SimDuration = SimDuration::from_millis(100);
/// Token-bucket burst window: a partition can absorb this many seconds
/// of its sustained capacity at once.
pub(crate) const BURST_SECS: f64 = 0.25;
/// A consumer drains an owned partition at this multiple of the
/// partition's append capacity (it must outrun producers to ever catch
/// up after a pause).
pub(crate) const DRAIN_FACTOR: f64 = 2.0;

/// What a churn event does to the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// The member joins the group.
    Join,
    /// The member leaves the group.
    Leave,
}

/// One scripted membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the change happens (must fall strictly inside the run).
    pub at: SimTime,
    /// Join or leave.
    pub action: ChurnAction,
    /// The consumer member id.
    pub member: u32,
}

/// Full fleet-run description.
///
/// # Example
///
/// ```
/// use desim::SimDuration;
/// use kafkasim::fleet::{
///     Assignor, FleetConfig, PartitionStrategy, Population, PopulationEntry, StreamClass,
/// };
/// use kafkasim::source::SizeSpec;
///
/// let cfg = FleetConfig {
///     producers: 100,
///     partitions: 8,
///     strategy: PartitionStrategy::KeyHash,
///     population: Population::new(vec![PopulationEntry {
///         class: StreamClass {
///             name: "web-access-records".into(),
///             size: SizeSpec::Fixed(200),
///             rate_hz: 1.0,
///             timeliness: SimDuration::from_secs(30),
///         },
///         weight: 1.0,
///     }])
///     .unwrap(),
///     ..FleetConfig::default()
/// };
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of producers (tenants).
    pub producers: usize,
    /// Partitions of the shared topic.
    pub partitions: u32,
    /// Partitioning strategy routing tenants to partitions.
    pub strategy: PartitionStrategy,
    /// The producer population mix.
    pub population: Population,
    /// Consumer-group members present at time zero (ids `0..n`).
    pub initial_consumers: u32,
    /// Partition-assignment policy at each rebalance.
    pub assignor: Assignor,
    /// Scripted membership changes.
    pub churn: Vec<ChurnEvent>,
    /// Simulated run length.
    pub duration: SimDuration,
    /// KPI window length (must divide `duration`).
    pub window: SimDuration,
    /// Sustained append capacity of one partition, messages/second.
    pub partition_capacity_hz: f64,
    /// Per-message network-loss probability (at-most-once leg).
    pub base_loss: f64,
    /// How long a moved partition is paused (consumer hand-off) and
    /// re-read (duplicate window) after a rebalance.
    pub rebalance_pause: SimDuration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            producers: 100,
            partitions: 8,
            strategy: PartitionStrategy::KeyHash,
            population: Population::new(vec![super::population::PopulationEntry {
                class: super::population::StreamClass {
                    name: "web-access-records".into(),
                    size: crate::source::SizeSpec::Fixed(200),
                    rate_hz: 1.0,
                    timeliness: SimDuration::from_secs(30),
                },
                weight: 1.0,
            }])
            .expect("default population is valid"),
            initial_consumers: 4,
            assignor: Assignor::Sticky,
            churn: Vec::new(),
            duration: SimDuration::from_secs(30),
            window: SimDuration::from_secs(5),
            partition_capacity_hz: 50.0,
            base_loss: 0.001,
            rebalance_pause: SimDuration::from_secs(2),
        }
    }
}

impl FleetConfig {
    /// Validates the config.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.producers == 0 {
            return Err("fleet needs at least one producer".into());
        }
        if self.partitions == 0 {
            return Err("topic needs at least one partition".into());
        }
        if self.initial_consumers == 0 {
            return Err("group needs at least one initial consumer".into());
        }
        if self.duration.is_zero() || self.window.is_zero() {
            return Err("duration and window must be non-zero".into());
        }
        if !self
            .duration
            .as_micros()
            .is_multiple_of(self.window.as_micros())
        {
            return Err("window must divide duration evenly".into());
        }
        if !self.partition_capacity_hz.is_finite() || self.partition_capacity_hz <= 0.0 {
            return Err("partition capacity must be finite and positive".into());
        }
        if !self.base_loss.is_finite() || !(0.0..=1.0).contains(&self.base_loss) {
            return Err("base loss must be a probability".into());
        }
        for (i, c) in self.churn.iter().enumerate() {
            if c.at == SimTime::ZERO || c.at >= SimTime::ZERO + self.duration {
                return Err(format!("churn[{i}] must fall strictly inside the run"));
            }
        }
        Ok(())
    }
}

/// Per-tenant delivery ledger: where every message of one producer went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantLedger {
    /// Tenant (producer) id.
    pub tenant: u32,
    /// Stream-class index into the population.
    pub class: u16,
    /// Messages the tenant emitted.
    pub produced: u64,
    /// Messages appended to the topic (first copies).
    pub delivered: u64,
    /// Messages dropped by the network leg.
    pub lost_network: u64,
    /// Messages rejected by a saturated partition.
    pub lost_overload: u64,
    /// Duplicate deliveries (rebalance re-reads).
    pub duplicated: u64,
}

impl TenantLedger {
    /// Total messages lost, all causes.
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.lost_network + self.lost_overload
    }
}

/// Fleet-level totals (sums of the per-tenant ledgers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FleetTotals {
    /// Sum of [`TenantLedger::produced`].
    pub produced: u64,
    /// Sum of [`TenantLedger::delivered`].
    pub delivered: u64,
    /// Sum of [`TenantLedger::lost_network`].
    pub lost_network: u64,
    /// Sum of [`TenantLedger::lost_overload`].
    pub lost_overload: u64,
    /// Sum of [`TenantLedger::duplicated`].
    pub duplicated: u64,
}

impl FleetTotals {
    /// Total messages lost, all causes.
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.lost_network + self.lost_overload
    }
}

/// Per-class rollup of the tenant ledgers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// Class label.
    pub class: String,
    /// Producers in the class.
    pub producers: u64,
    /// Messages emitted by the class.
    pub produced: u64,
    /// First copies appended.
    pub delivered: u64,
    /// Network losses.
    pub lost_network: u64,
    /// Overload losses.
    pub lost_overload: u64,
    /// Duplicate deliveries.
    pub duplicated: u64,
}

/// One rebalance as it happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalanceRecord {
    /// When the membership change landed.
    pub at: SimTime,
    /// Group generation it produced.
    pub generation: u64,
    /// Members after the change.
    pub members: Vec<u32>,
    /// Partitions that changed owner.
    pub moved: Vec<u32>,
}

/// Everything a fleet run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// One ledger per tenant, in tenant order.
    pub tenants: Vec<TenantLedger>,
    /// Fleet-level totals.
    pub totals: FleetTotals,
    /// Per-class rollups, in population declaration order.
    pub classes: Vec<ClassSummary>,
    /// First-copy appends per partition (the skew profile).
    pub partition_appends: Vec<u64>,
    /// Every rebalance, in time order.
    pub rebalances: Vec<RebalanceRecord>,
    /// The windowed per-tenant (per-class cohort) KPI series.
    pub windows: TenantSeries,
    /// Events the simulation loop fired.
    pub events_fired: u64,
}

impl FleetOutcome {
    /// Partition skew: hottest partition's appends over the mean.
    /// `1.0` is perfectly even; `0.0` when nothing was appended.
    #[must_use]
    pub fn skew(&self) -> f64 {
        let max = self.partition_appends.iter().copied().max().unwrap_or(0) as f64;
        let total: u64 = self.partition_appends.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.partition_appends.len() as f64;
        max / mean
    }
}

/// Per-partition runtime state.
#[derive(Debug, Clone)]
pub(crate) struct PartitionState {
    /// Token bucket: available append tokens.
    pub(crate) tokens: f64,
    pub(crate) last_refill: SimTime,
    /// First-copy appends.
    pub(crate) appends: u64,
    /// Records drained by the group.
    pub(crate) consumed: u64,
    /// Consumption is paused until this instant (rebalance hand-off).
    pub(crate) paused_until: SimTime,
    /// Appends until this instant are re-read by the new owner
    /// (at-least-once duplicate window).
    pub(crate) reread_until: SimTime,
}

impl PartitionState {
    /// Fresh-topic state at time zero: a full burst bucket, nothing
    /// appended, nothing paused.
    pub(crate) fn fresh(capacity_hz: f64) -> Self {
        PartitionState {
            tokens: capacity_hz * BURST_SECS,
            last_refill: SimTime::ZERO,
            appends: 0,
            consumed: 0,
            paused_until: SimTime::ZERO,
            reread_until: SimTime::ZERO,
        }
    }

    /// Refill the token bucket to `now`, then accept up to `n` appends in
    /// one step. Returns how many were accepted; the rest are overload.
    ///
    /// Bit-identical to `n` sequential single-message attempts at the same
    /// instant: the refill at equal `now` adds exactly `0.0` tokens (an
    /// exact no-op), and for token counts in the bucket's range,
    /// `tokens - 1.0` repeated `k` times equals `tokens - k as f64`
    /// exactly (1.0 is an integer multiple of the ulp of any f64 in
    /// `[1, 2^52]`). The coalescing proptest pins this equivalence.
    pub(crate) fn accept(&mut self, capacity_hz: f64, now: SimTime, n: u64) -> u64 {
        let elapsed = (now - self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + capacity_hz * elapsed).min(capacity_hz * BURST_SECS);
        self.last_refill = now;
        let accepted = n.min(self.tokens as u64);
        self.tokens -= accepted as f64;
        self.appends += accepted;
        accepted
    }
}

/// Per-class accumulator for the open KPI window.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ClassWindowAcc {
    pub(crate) produced: u64,
    pub(crate) delivered: u64,
    pub(crate) lost: u64,
    pub(crate) duplicated: u64,
}

/// Fold the per-tenant ledgers into fleet totals and per-class rollups —
/// shared between the sequential engine and the sharded engine so both
/// produce byte-identical summaries from equal ledgers.
pub(crate) fn totals_and_classes(
    ledgers: &[TenantLedger],
    class_producers: &[u64],
    population: &Population,
) -> (FleetTotals, Vec<ClassSummary>) {
    let mut totals = FleetTotals::default();
    for l in ledgers {
        totals.produced += l.produced;
        totals.delivered += l.delivered;
        totals.lost_network += l.lost_network;
        totals.lost_overload += l.lost_overload;
        totals.duplicated += l.duplicated;
    }
    let mut classes: Vec<ClassSummary> = population
        .entries()
        .iter()
        .enumerate()
        .map(|(i, e)| ClassSummary {
            class: e.class.name.clone(),
            producers: class_producers[i],
            produced: 0,
            delivered: 0,
            lost_network: 0,
            lost_overload: 0,
            duplicated: 0,
        })
        .collect();
    for l in ledgers {
        let c = &mut classes[l.class as usize];
        c.produced += l.produced;
        c.delivered += l.delivered;
        c.lost_network += l.lost_network;
        c.lost_overload += l.lost_overload;
        c.duplicated += l.duplicated;
    }
    (totals, classes)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FleetEvent {
    /// Tenant flushes accumulated messages.
    Flush(u32),
    /// Scripted churn entry (index into `FleetConfig::churn`).
    Churn(u32),
    /// Group drains owned, unpaused partitions.
    ConsumeTick,
    /// Close the open KPI window.
    WindowClose,
}

struct FleetWorld {
    cfg: FleetConfig,
    end: SimTime,
    /// Tenant → class index.
    classes_of: Vec<u16>,
    /// Per-tenant forked RNG (network-loss Bernoulli draws).
    rngs: Vec<SimRng>,
    router: Box<dyn Partitioner>,
    group: GroupCoordinator,
    partitions: Vec<PartitionState>,
    ledgers: Vec<TenantLedger>,
    last_flush: Vec<SimTime>,
    carry: Vec<f64>,
    class_producers: Vec<u64>,
    class_window: Vec<ClassWindowAcc>,
    window_idx: u64,
    window_moved: u64,
    rebalances: Vec<RebalanceRecord>,
    series: TenantSeries,
    trace: Box<dyn TraceSink>,
    prof: Profiler,
}

impl FleetWorld {
    fn rate_of(&self, tenant: u32) -> f64 {
        self.cfg
            .population
            .class(self.classes_of[tenant as usize])
            .rate_hz
    }

    fn try_append(&mut self, partition: u32, now: SimTime) -> bool {
        let cap = self.cfg.partition_capacity_hz;
        self.partitions[partition as usize].accept(cap, now, 1) == 1
    }

    fn apply_churn(&mut self, idx: usize, now: SimTime) {
        let _span = self.prof.span("fleet.rebalance");
        let ev = self.cfg.churn[idx];
        let reb = match ev.action {
            ChurnAction::Join => self.group.join(ev.member),
            ChurnAction::Leave => self.group.leave(ev.member),
        };
        if self.trace.enabled() {
            let generation = reb
                .as_ref()
                .map_or_else(|| self.group.generation(), |r| r.generation);
            self.trace.record(match ev.action {
                ChurnAction::Join => TraceEvent::ConsumerJoined {
                    at: now,
                    member: ev.member,
                    generation,
                },
                ChurnAction::Leave => TraceEvent::ConsumerLeft {
                    at: now,
                    member: ev.member,
                    generation,
                },
            });
        }
        let Some(reb) = reb else { return };
        let until = now + self.cfg.rebalance_pause;
        for &p in &reb.moved {
            let st = &mut self.partitions[p as usize];
            st.paused_until = until;
            st.reread_until = until;
        }
        self.window_moved += reb.moved.len() as u64;
        if self.trace.enabled() {
            for (member, parts) in &reb.assignments {
                let moved = parts.iter().filter(|p| reb.moved.contains(p)).count() as u64;
                self.trace.record(TraceEvent::PartitionsAssigned {
                    at: now,
                    member: *member,
                    generation: reb.generation,
                    partitions: parts.clone(),
                    moved,
                });
            }
        }
        self.rebalances.push(RebalanceRecord {
            at: now,
            generation: reb.generation,
            members: self.group.members().to_vec(),
            moved: reb.moved,
        });
    }

    fn close_window(&mut self, now: SimTime) {
        let _span = self.prof.span("fleet.window");
        let backlog: u64 = self.partitions.iter().map(|p| p.appends - p.consumed).sum();
        let start = now - self.cfg.window;
        for (idx, acc) in self.class_window.iter().enumerate() {
            self.series.push(TenantWindowRow {
                window: self.window_idx,
                start_s: start.as_secs_f64(),
                cohort: self.cfg.population.class(idx as u16).name.clone(),
                producers: self.class_producers[idx],
                produced: acc.produced,
                delivered: acc.delivered,
                lost: acc.lost,
                duplicated: acc.duplicated,
                backlog,
                moved_partitions: self.window_moved,
                group_members: self.group.members().len() as u64,
            });
        }
        self.class_window
            .iter_mut()
            .for_each(|a| *a = ClassWindowAcc::default());
        self.window_moved = 0;
        self.window_idx += 1;
    }
}

impl EventWorld for FleetWorld {
    type Event = FleetEvent;

    fn handle(&mut self, event: FleetEvent, ctx: &mut EventContext<FleetEvent>) {
        let now = ctx.now();
        match event {
            FleetEvent::Flush(tenant) => {
                let _span = self.prof.span("fleet.flush");
                let t = tenant as usize;
                let elapsed = (now - self.last_flush[t]).as_secs_f64();
                self.last_flush[t] = now;
                let emitted = self.rate_of(tenant) * elapsed + self.carry[t];
                let n = emitted.floor() as u64;
                self.carry[t] = emitted - n as f64;
                let class = self.classes_of[t];
                for _ in 0..n {
                    self.ledgers[t].produced += 1;
                    self.class_window[class as usize].produced += 1;
                    if self.rngs[t].bernoulli(self.cfg.base_loss) {
                        self.ledgers[t].lost_network += 1;
                        self.class_window[class as usize].lost += 1;
                        continue;
                    }
                    let partition = self.router.route(tenant, class, self.cfg.partitions);
                    if self.try_append(partition, now) {
                        self.ledgers[t].delivered += 1;
                        self.class_window[class as usize].delivered += 1;
                        if now < self.partitions[partition as usize].reread_until {
                            self.ledgers[t].duplicated += 1;
                            self.class_window[class as usize].duplicated += 1;
                        }
                    } else {
                        self.ledgers[t].lost_overload += 1;
                        self.class_window[class as usize].lost += 1;
                    }
                }
                let next = now + FLUSH_INTERVAL;
                if next < self.end {
                    ctx.schedule_at(next, FleetEvent::Flush(tenant));
                }
            }
            FleetEvent::Churn(idx) => self.apply_churn(idx as usize, now),
            FleetEvent::ConsumeTick => {
                let _span = self.prof.span("fleet.consume");
                let drain_per_tick =
                    (self.cfg.partition_capacity_hz * DRAIN_FACTOR * CONSUME_TICK.as_secs_f64())
                        .floor() as u64;
                for p in 0..self.cfg.partitions {
                    if self.group.owner_of(p).is_none() {
                        continue;
                    }
                    let st = &mut self.partitions[p as usize];
                    if st.paused_until > now {
                        continue;
                    }
                    let backlog = st.appends - st.consumed;
                    st.consumed += backlog.min(drain_per_tick);
                }
                let next = now + CONSUME_TICK;
                if next < self.end {
                    ctx.schedule_at(next, FleetEvent::ConsumeTick);
                }
            }
            FleetEvent::WindowClose => {
                self.close_window(now);
                let next = now + self.cfg.window;
                if next <= self.end {
                    ctx.schedule_at(next, FleetEvent::WindowClose);
                }
            }
        }
    }
}

/// One fleet run: a validated [`FleetConfig`] plus a seed.
///
/// # Example
///
/// ```
/// use kafkasim::fleet::{FleetConfig, FleetRun};
///
/// let cfg = FleetConfig::default();
/// let outcome = FleetRun::new(cfg, 42).execute();
/// let t = &outcome.tenants[0];
/// assert_eq!(t.produced, t.delivered + t.lost());
/// assert_eq!(
///     outcome.totals.produced,
///     outcome.tenants.iter().map(|t| t.produced).sum::<u64>()
/// );
/// ```
pub struct FleetRun {
    pub(crate) cfg: FleetConfig,
    pub(crate) seed: u64,
}

impl FleetRun {
    /// Builds a run.
    ///
    /// # Panics
    /// Panics when the config is invalid (validate first for a `Result`).
    #[must_use]
    pub fn new(cfg: FleetConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid fleet config: {e}");
        }
        FleetRun { cfg, seed }
    }

    /// Runs untraced and unprofiled.
    #[must_use]
    pub fn execute(self) -> FleetOutcome {
        self.execute_profiled(Box::new(NoopSink), Profiler::disabled())
            .0
    }

    /// Runs with trace events delivered to `sink`.
    pub fn execute_traced(self, sink: Box<dyn TraceSink>) -> (FleetOutcome, Box<dyn TraceSink>) {
        self.execute_profiled(sink, Profiler::disabled())
    }

    /// Runs with trace events *and* wall-clock span profiling.
    pub fn execute_profiled(
        self,
        sink: Box<dyn TraceSink>,
        prof: Profiler,
    ) -> (FleetOutcome, Box<dyn TraceSink>) {
        let cfg = self.cfg;
        let setup = prof.span("fleet.setup");
        let classes_of = cfg.population.apportion(cfg.producers);
        let mut master = SimRng::seed_from_u64(self.seed);
        let rngs: Vec<SimRng> = (0..cfg.producers).map(|_| master.fork()).collect();
        let router = cfg.strategy.build(cfg.partitions, &cfg.population);
        let initial: Vec<u32> = (0..cfg.initial_consumers).collect();
        let group = GroupCoordinator::new(cfg.assignor, cfg.partitions, &initial);

        let mut trace = sink;
        if trace.enabled() {
            // Generation-1 assignment, so the trace tells the whole
            // ownership story from time zero.
            for &member in group.members() {
                let partitions = group.partitions_of(member);
                let moved = partitions.len() as u64;
                trace.record(TraceEvent::PartitionsAssigned {
                    at: SimTime::ZERO,
                    member,
                    generation: group.generation(),
                    partitions,
                    moved,
                });
            }
        }

        let n_classes = cfg.population.entries().len();
        let mut class_producers = vec![0u64; n_classes];
        for &c in &classes_of {
            class_producers[c as usize] += 1;
        }
        let ledgers: Vec<TenantLedger> = classes_of
            .iter()
            .enumerate()
            .map(|(t, &class)| TenantLedger {
                tenant: t as u32,
                class,
                produced: 0,
                delivered: 0,
                lost_network: 0,
                lost_overload: 0,
                duplicated: 0,
            })
            .collect();
        let partitions =
            vec![PartitionState::fresh(cfg.partition_capacity_hz); cfg.partitions as usize];

        let end = SimTime::ZERO + cfg.duration;
        let world = FleetWorld {
            end,
            classes_of,
            rngs,
            router,
            group,
            partitions,
            ledgers,
            last_flush: vec![SimTime::ZERO; cfg.producers],
            carry: vec![0.0; cfg.producers],
            class_producers,
            class_window: vec![ClassWindowAcc::default(); n_classes],
            window_idx: 0,
            window_moved: 0,
            rebalances: Vec::new(),
            series: TenantSeries::new(cfg.window),
            trace,
            prof: prof.clone(),
            cfg,
        };
        let mut sim = EventSim::new(world);
        // Stagger tenant flushes across the interval so fleet arrivals
        // spread over time instead of synchronising on one grid point.
        for t in 0..sim.world().cfg.producers {
            let phase = (t % 8) as u64 + 1;
            let first =
                SimTime::ZERO + SimDuration::from_micros(FLUSH_INTERVAL.as_micros() * phase / 8);
            sim.schedule_at(first, FleetEvent::Flush(t as u32));
        }
        for (i, c) in sim.world().cfg.churn.clone().iter().enumerate() {
            sim.schedule_at(c.at, FleetEvent::Churn(i as u32));
        }
        sim.schedule_at(SimTime::ZERO + CONSUME_TICK, FleetEvent::ConsumeTick);
        sim.schedule_at(
            SimTime::ZERO + sim.world().cfg.window,
            FleetEvent::WindowClose,
        );
        drop(setup);

        {
            let _run = prof.span("fleet.run");
            sim.run_until_idle();
        }

        let events_fired = sim.events_fired();
        let world = sim.into_world();
        let (totals, classes) = totals_and_classes(
            &world.ledgers,
            &world.class_producers,
            &world.cfg.population,
        );
        (
            FleetOutcome {
                tenants: world.ledgers,
                totals,
                classes,
                partition_appends: world.partitions.iter().map(|p| p.appends).collect(),
                rebalances: world.rebalances,
                windows: world.series,
                events_fired,
            },
            world.trace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::population::{PopulationEntry, StreamClass};
    use super::*;
    use crate::source::SizeSpec;
    use obs::RingBufferSink;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            producers: 200,
            partitions: 8,
            strategy: PartitionStrategy::KeyHash,
            population: Population::new(vec![
                PopulationEntry {
                    class: StreamClass {
                        name: "social-media".into(),
                        size: SizeSpec::Uniform {
                            low: 120,
                            high: 400,
                        },
                        rate_hz: 1.0,
                        timeliness: SimDuration::from_secs(2),
                    },
                    weight: 0.6,
                },
                PopulationEntry {
                    class: StreamClass {
                        name: "game-traffic".into(),
                        size: SizeSpec::Uniform { low: 40, high: 100 },
                        rate_hz: 2.0,
                        timeliness: SimDuration::from_millis(300),
                    },
                    weight: 0.4,
                },
            ])
            .unwrap(),
            initial_consumers: 4,
            assignor: Assignor::Sticky,
            churn: vec![
                ChurnEvent {
                    at: SimTime::from_secs(6),
                    action: ChurnAction::Join,
                    member: 4,
                },
                ChurnEvent {
                    at: SimTime::from_secs(12),
                    action: ChurnAction::Leave,
                    member: 1,
                },
            ],
            duration: SimDuration::from_secs(20),
            window: SimDuration::from_secs(5),
            partition_capacity_hz: 25.0,
            base_loss: 0.01,
            rebalance_pause: SimDuration::from_secs(2),
        }
    }

    #[test]
    fn per_tenant_accounting_conserves() {
        let out = FleetRun::new(small_cfg(), 7).execute();
        assert!(out.totals.produced > 0);
        let mut produced = 0u64;
        let mut delivered = 0u64;
        let mut lost = 0u64;
        let mut dup = 0u64;
        for t in &out.tenants {
            assert_eq!(t.produced, t.delivered + t.lost(), "tenant {}", t.tenant);
            produced += t.produced;
            delivered += t.delivered;
            lost += t.lost();
            dup += t.duplicated;
        }
        assert_eq!(produced, out.totals.produced);
        assert_eq!(delivered, out.totals.delivered);
        assert_eq!(lost, out.totals.lost());
        assert_eq!(dup, out.totals.duplicated);
        let class_produced: u64 = out.classes.iter().map(|c| c.produced).sum();
        assert_eq!(class_produced, out.totals.produced);
        assert_eq!(
            out.totals.delivered,
            out.partition_appends.iter().sum::<u64>()
        );
    }

    #[test]
    fn runs_are_bit_identical_at_fixed_seed() {
        let a = FleetRun::new(small_cfg(), 99).execute();
        let b = FleetRun::new(small_cfg(), 99).execute();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a = FleetRun::new(small_cfg(), 1).execute();
        let b = FleetRun::new(small_cfg(), 2).execute();
        assert_ne!(
            a.totals.lost_network, b.totals.lost_network,
            "different seeds draw different network losses"
        );
    }

    #[test]
    fn churn_rebalances_and_duplicates_are_visible() {
        let (out, mut sink) =
            FleetRun::new(small_cfg(), 7).execute_traced(Box::new(RingBufferSink::new(4096)));
        assert_eq!(out.rebalances.len(), 2);
        assert!(!out.rebalances[0].moved.is_empty());
        assert!(
            out.totals.duplicated > 0,
            "moved partitions re-read under at-least-once"
        );
        // The duplicates land in the rebalance windows of the series.
        assert!(out.windows.max_moved_partitions() > 0);
        let events: Vec<String> = sink.drain().iter().map(|e| e.kind().to_string()).collect();
        assert!(events.iter().any(|k| k == "consumer-joined"));
        assert!(events.iter().any(|k| k == "consumer-left"));
        assert!(events.iter().any(|k| k == "partitions-assigned"));
    }

    #[test]
    fn windows_cover_the_whole_run() {
        let out = FleetRun::new(small_cfg(), 7).execute();
        // 20 s / 5 s windows × 2 classes.
        assert_eq!(out.windows.rows.len(), 4 * 2);
        assert_eq!(out.windows.total_produced(), out.totals.produced);
    }

    #[test]
    fn overload_attribution_reacts_to_capacity() {
        let mut starved = small_cfg();
        starved.partition_capacity_hz = 5.0;
        let lean = FleetRun::new(starved, 7).execute();
        let rich = FleetRun::new(small_cfg(), 7).execute();
        assert!(lean.totals.lost_overload > rich.totals.lost_overload);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = small_cfg();
        c.producers = 0;
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.window = SimDuration::from_secs(3); // does not divide 20 s
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.churn[0].at = SimTime::from_secs(20); // not strictly inside
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.base_loss = 1.5;
        assert!(c.validate().is_err());
        assert!(small_cfg().validate().is_ok());
    }
}
