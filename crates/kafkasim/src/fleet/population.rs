//! The producer population: which stream classes exist and how many
//! producers each one gets.
//!
//! The paper's Table II describes three application scenarios (social
//! media, web access records, game traffic); a fleet run instantiates a
//! *population* of producers drawn from a weighted mix of such classes.
//! Apportionment is deterministic largest-remainder (no sampling), so the
//! same population always yields the same tenant→class map and fleet runs
//! stay bit-identical at a fixed seed.

use desim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::source::SizeSpec;

/// One stream class of the population — the per-producer workload shape.
///
/// This is the `kafkasim`-level projection of a Table II scenario: just
/// the payload-size model, the per-producer emission rate and the
/// timeliness bound. The KPI-weight side of a scenario (needed for the
/// per-class γ of Eq. 2) stays in `testbed`/`core`, keeping the crate
/// dependency direction intact.
///
/// # Example
///
/// ```
/// use desim::SimDuration;
/// use kafkasim::fleet::StreamClass;
/// use kafkasim::source::SizeSpec;
///
/// let game = StreamClass {
///     name: "game-traffic".into(),
///     size: SizeSpec::Uniform { low: 40, high: 100 },
///     rate_hz: 2.0,
///     timeliness: SimDuration::from_millis(300),
/// };
/// assert_eq!(game.size.mean(), 70.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamClass {
    /// Class label (kebab-case by convention, e.g. `"social-media"`).
    pub name: String,
    /// Payload-size model of one producer of this class.
    pub size: SizeSpec,
    /// Per-producer emission rate, messages/second.
    pub rate_hz: f64,
    /// Message timeliness bound `S` of the class.
    pub timeliness: SimDuration,
}

/// One entry of the population mix: a class and its share of producers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationEntry {
    /// The stream class.
    pub class: StreamClass,
    /// Relative weight (any positive finite number; normalised over the
    /// population).
    pub weight: f64,
}

/// A weighted mix of stream classes, apportioned deterministically over
/// a producer count.
///
/// # Example
///
/// ```
/// use desim::SimDuration;
/// use kafkasim::fleet::{Population, PopulationEntry, StreamClass};
/// use kafkasim::source::SizeSpec;
///
/// let class = |name: &str| StreamClass {
///     name: name.into(),
///     size: SizeSpec::Fixed(200),
///     rate_hz: 1.0,
///     timeliness: SimDuration::from_secs(30),
/// };
/// let pop = Population::new(vec![
///     PopulationEntry { class: class("a"), weight: 0.7 },
///     PopulationEntry { class: class("b"), weight: 0.3 },
/// ])
/// .unwrap();
///
/// let classes = pop.apportion(10);
/// assert_eq!(classes.len(), 10);
/// assert_eq!(classes.iter().filter(|&&c| c == 0).count(), 7);
/// assert_eq!(classes.iter().filter(|&&c| c == 1).count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    entries: Vec<PopulationEntry>,
}

impl Population {
    /// Builds a population from a non-empty weighted mix.
    ///
    /// # Errors
    ///
    /// Rejects an empty mix, non-finite or non-positive weights, and
    /// non-positive rates.
    pub fn new(entries: Vec<PopulationEntry>) -> Result<Self, String> {
        if entries.is_empty() {
            return Err("population must have at least one class".into());
        }
        for e in &entries {
            if !e.weight.is_finite() || e.weight <= 0.0 {
                return Err(format!(
                    "class '{}' weight must be finite and positive, got {}",
                    e.class.name, e.weight
                ));
            }
            if !e.class.rate_hz.is_finite() || e.class.rate_hz <= 0.0 {
                return Err(format!(
                    "class '{}' rate must be finite and positive, got {}",
                    e.class.name, e.class.rate_hz
                ));
            }
        }
        Ok(Population { entries })
    }

    /// The class mix, in declaration order.
    #[must_use]
    pub fn entries(&self) -> &[PopulationEntry] {
        &self.entries
    }

    /// The class at `idx` (as produced by [`Population::apportion`]).
    #[must_use]
    pub fn class(&self, idx: u16) -> &StreamClass {
        &self.entries[idx as usize].class
    }

    /// Assigns every producer `0..producers` a class index.
    ///
    /// Per-class counts come from largest-remainder apportionment of the
    /// normalised weights; producers are then dealt round-robin across
    /// the classes (one per class per cycle while any remain), so class
    /// membership interleaves rather than forming contiguous tenant-id
    /// blocks. Purely arithmetic — no RNG — hence reproducible.
    #[must_use]
    pub fn apportion(&self, producers: usize) -> Vec<u16> {
        let total: f64 = self.entries.iter().map(|e| e.weight).sum();
        // Floor quotas first, then hand leftover seats to the largest
        // fractional remainders (ties to the earlier-declared class).
        let quotas: Vec<f64> = self
            .entries
            .iter()
            .map(|e| e.weight / total * producers as f64)
            .collect();
        let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let assigned: usize = counts.iter().sum();
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - quotas[a].floor();
            let rb = quotas[b] - quotas[b].floor();
            rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
        });
        for i in 0..producers.saturating_sub(assigned) {
            counts[order[i % order.len()]] += 1;
        }

        let mut remaining = counts;
        let mut out = Vec::with_capacity(producers);
        while out.len() < producers {
            for (idx, left) in remaining.iter_mut().enumerate() {
                if *left > 0 {
                    *left -= 1;
                    out.push(idx as u16);
                    if out.len() == producers {
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(name: &str, rate_hz: f64) -> StreamClass {
        StreamClass {
            name: name.into(),
            size: SizeSpec::Fixed(200),
            rate_hz,
            timeliness: SimDuration::from_secs(30),
        }
    }

    #[test]
    fn rejects_bad_mixes() {
        assert!(Population::new(vec![]).is_err());
        assert!(Population::new(vec![PopulationEntry {
            class: class("a", 1.0),
            weight: 0.0,
        }])
        .is_err());
        assert!(Population::new(vec![PopulationEntry {
            class: class("a", 1.0),
            weight: f64::NAN,
        }])
        .is_err());
        assert!(Population::new(vec![PopulationEntry {
            class: class("a", 0.0),
            weight: 1.0,
        }])
        .is_err());
    }

    #[test]
    fn apportionment_is_exact_and_interleaved() {
        let pop = Population::new(vec![
            PopulationEntry {
                class: class("a", 1.0),
                weight: 0.5,
            },
            PopulationEntry {
                class: class("b", 1.0),
                weight: 0.3,
            },
            PopulationEntry {
                class: class("c", 1.0),
                weight: 0.2,
            },
        ])
        .unwrap();
        let classes = pop.apportion(1000);
        assert_eq!(classes.len(), 1000);
        assert_eq!(classes.iter().filter(|&&c| c == 0).count(), 500);
        assert_eq!(classes.iter().filter(|&&c| c == 1).count(), 300);
        assert_eq!(classes.iter().filter(|&&c| c == 2).count(), 200);
        // Interleaved: the first cycle deals one of each.
        assert_eq!(&classes[..3], &[0, 1, 2]);
    }

    #[test]
    fn largest_remainder_settles_fractional_seats() {
        // 1/3 weights over 10 producers: 4/3/3, remainder to the
        // earliest-declared class.
        let pop = Population::new(
            (0..3)
                .map(|i| PopulationEntry {
                    class: class(&format!("c{i}"), 1.0),
                    weight: 1.0,
                })
                .collect(),
        )
        .unwrap();
        let classes = pop.apportion(10);
        assert_eq!(classes.iter().filter(|&&c| c == 0).count(), 4);
        assert_eq!(classes.iter().filter(|&&c| c == 1).count(), 3);
        assert_eq!(classes.iter().filter(|&&c| c == 2).count(), 3);
    }

    #[test]
    fn apportionment_is_deterministic() {
        let pop = Population::new(vec![
            PopulationEntry {
                class: class("a", 1.0),
                weight: 0.61,
            },
            PopulationEntry {
                class: class("b", 1.0),
                weight: 0.39,
            },
        ])
        .unwrap();
        assert_eq!(pop.apportion(997), pop.apportion(997));
    }
}
