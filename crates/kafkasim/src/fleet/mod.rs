//! Fleet-scale simulation: producer populations, consumer groups, and
//! rebalancing.
//!
//! The protocol-level simulator ([`crate::runtime`]) models *one*
//! producer in wire-level detail; this module models *many* — the fleets
//! the paper's reliability model is ultimately meant to serve. A fleet
//! run instantiates:
//!
//! * a **population** ([`Population`]) of N producers drawn from a
//!   weighted mix of stream classes (the paper's Table II workloads),
//!   apportioned deterministically (largest-remainder, interleaved);
//! * a partitioned topic with **keyed routing** under a pluggable
//!   [`Partitioner`] — round-robin, key-hash, or the locality strategy
//!   after Raptis & Passarella ([`PartitionStrategy`]) — the sweep axis
//!   that makes partition *skew* visible;
//! * a **consumer group** with scripted join/leave churn and
//!   deterministic rebalance under range or sticky assignment
//!   ([`GroupCoordinator`], [`Assignor`]), whose ownership moves are the
//!   "rebalance storms" the fleet figure plots;
//! * **per-tenant reliability accounting** ([`TenantLedger`]): every
//!   message of every producer is attributed to delivered, network loss,
//!   overload loss, or duplicate — and the per-tenant ledgers sum
//!   exactly to the fleet totals.
//!
//! The engine ([`FleetRun`]) emits `obs` consumer-group trace events
//! and a windowed per-tenant KPI series ([`obs::TenantSeries`]); runs
//! are bit-identical at a fixed seed. See `DESIGN.md` §6 for the
//! architecture.
//!
//! # Example
//!
//! ```
//! use desim::SimTime;
//! use kafkasim::fleet::{ChurnAction, ChurnEvent, FleetConfig, FleetRun};
//!
//! let mut cfg = FleetConfig::default();
//! cfg.churn = vec![ChurnEvent {
//!     at: SimTime::from_secs(10),
//!     action: ChurnAction::Join,
//!     member: 4,
//! }];
//! let outcome = FleetRun::new(cfg, 42).execute();
//! assert_eq!(outcome.rebalances.len(), 1, "the join rebalanced the group");
//! assert_eq!(
//!     outcome.totals.produced,
//!     outcome.totals.delivered + outcome.totals.lost(),
//! );
//! ```

mod engine;
mod group;
mod partition;
mod population;
mod sharded;

pub use engine::{
    ChurnAction, ChurnEvent, ClassSummary, FleetConfig, FleetOutcome, FleetRun, FleetTotals,
    RebalanceRecord, TenantLedger,
};
pub use group::{Assignor, GroupCoordinator, Rebalance};
pub use partition::{PartitionStrategy, Partitioner};
pub use population::{Population, PopulationEntry, StreamClass};
