//! The integrated Kafka run: producer + cluster + network in one
//! deterministic event loop.
//!
//! [`KafkaRun::execute`] reproduces the paper's per-experiment procedure
//! (§III-E): start a fresh cluster and topic, feed `N` uniquely-keyed source
//! messages through the producer while network faults are injected, let the
//! system drain, then read everything back with a consumer and build the
//! [`DeliveryReport`].
//!
//! # Mechanisms that shape the paper's figures
//!
//! * **Expiry** — a message that spends more than `T_o` buffered producer-
//!   side is dropped (Kafka's `delivery.timeout.ms`). This is the loss mode
//!   of an overloaded producer (Figs. 5 and 6).
//! * **Connection recycling** — when an in-socket batch passes its deadline,
//!   or the transport stalls through repeated RTO backoffs, the producer
//!   tears the connection down, exactly like a real client disconnecting an
//!   unresponsive broker. The bytes in the dead socket are gone: under
//!   `acks=0` that is *silent* loss (Fig. 4's at-most-once penalty); under
//!   `acks=1` the missing responses trigger retries.
//! * **Retries** — an unanswered produce request times out, fails the
//!   connection, and is retried up to `τ_r` times within `T_o`. A retry of a
//!   request whose original *was* persisted (the ack was lost or late)
//!   appends the batch again — duplicates, the paper's Case 5 (Fig. 8).

use std::collections::VecDeque;
use std::sync::Arc;

use desim::{EventContext, EventSim, EventWorld, SimDuration, SimRng, SimTime};
use netsim::channel::{ResetReport, SendRecordError};
use netsim::{
    ChannelConfig, ChannelEvent, ConditionTimeline, DuplexChannel, Endpoint, NetCondition,
};
use obs::{LossCause, MetricsSummary, NoopSink, Profiler, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};

use crate::audit::{audit_threaded, DeliveryReport, LossReason};
use crate::broker::{BrokerId, ProduceRecord};
use crate::cluster::{Cluster, ClusterSpec, ReplicationDelta};
use crate::config::{DeliverySemantics, ProducerConfig};
use crate::consumer::ConsumedTopic;
use crate::message::{Message, MessageKey};
use crate::producer::{
    Accumulator, InFlightRequest, InFlightTable, Ledger, LedgerColumns, PendingBatch,
};
use crate::source::SourceSpec;
use crate::wire::WireFormat;
use desim::fasthash::{FastMap, FastSet};

/// Producer-side statistics over one observation window, handed to an
/// [`OnlineController`].
///
/// Everything here is observable by a *real* producer client: its own
/// counters and its transport's RTT estimate. Nothing peeks at the
/// simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// End of the window.
    pub at: SimTime,
    /// Window length.
    pub window: SimDuration,
    /// Produce requests written in the window (including retries).
    pub requests_sent: u64,
    /// Requests acknowledged in the window (`acks=1` only).
    pub acks_received: u64,
    /// Retries issued in the window.
    pub retries: u64,
    /// Connections recycled in the window.
    pub connection_resets: u64,
    /// Messages expired producer-side in the window.
    pub expired: u64,
    /// Current accumulator backlog in messages.
    pub backlog: usize,
    /// Largest smoothed RTT across connections, in milliseconds.
    pub srtt_ms: Option<f64>,
    /// 99th-percentile produce-request RTT in milliseconds, when a metrics
    /// sink (`obs::MetricsSink`) is attached to the run.
    pub rtt_p99_ms: Option<f64>,
    /// 99th-percentile end-to-end delivery latency in milliseconds so far,
    /// when a metrics sink is attached.
    pub e2e_p99_ms: Option<f64>,
    /// Mean records per formed batch so far, when a metrics sink is
    /// attached.
    pub batch_fill_mean: Option<f64>,
}

/// An online configuration controller: decides, from the producer's own
/// recent statistics, whether to reconfigure.
///
/// This is the paper's deferred future work ("running an online algorithm
/// for dynamic configuration is beyond the scope of this paper"): unlike
/// the offline §V scheme, the network state is *estimated*, not known.
pub trait OnlineController: Send + Sync {
    /// Returns the configuration for the next window, or `None` to keep
    /// the current one.
    fn decide(&self, stats: &WindowStats, current: &ProducerConfig) -> Option<ProducerConfig>;

    /// Adds the controller's own counters (planner caches, replan tallies,
    /// …) to a metrics registry after a run. The default exports nothing;
    /// controllers with internal state override this so their bookkeeping
    /// shows up next to the trace-derived metrics.
    fn export_metrics(&self, registry: &mut obs::MetricsRegistry) {
        let _ = registry;
    }

    /// Moves any trace events the controller buffered since the last tick
    /// (drift detections, model refits) into `out`. The runtime drains at
    /// every online tick regardless of tracing — so controller buffers stay
    /// bounded — and records the drained events only on traced runs. The
    /// default drains nothing.
    fn drain_events(&self, out: &mut Vec<obs::TraceEvent>) {
        let _ = out;
    }
}

/// Online-control settings for a run.
#[derive(Clone)]
pub struct OnlineSpec {
    /// Observation-window length between decisions.
    pub interval: SimDuration,
    /// The controller consulted at each window boundary.
    pub controller: Arc<dyn OnlineController>,
}

impl core::fmt::Debug for OnlineSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OnlineSpec")
            .field("interval", &self.interval)
            .finish_non_exhaustive()
    }
}

/// A scheduled broker outage (the paper's future-work failure scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerOutage {
    /// The broker that goes down.
    pub broker: BrokerId,
    /// When it crashes.
    pub from: SimTime,
    /// When it comes back.
    pub until: SimTime,
}

/// A broker fault pattern: one crash, a crash-with-restart, or repeated
/// flapping. Expands into [`BrokerOutage`] cycles driven through the
/// event engine, each crash/restart traced as
/// [`TraceEvent::BrokerDown`]/[`TraceEvent::BrokerUp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerFault {
    /// The faulty broker.
    pub broker: BrokerId,
    /// First crash instant.
    pub at: SimTime,
    /// Outage length of each crash.
    pub down_for: SimDuration,
    /// Number of crash/restart cycles (1 = a single crash).
    pub flaps: u32,
    /// Healthy time between a restart and the next crash (ignored when
    /// `flaps == 1`).
    pub up_for: SimDuration,
}

impl BrokerFault {
    /// One crash at `at`, restarting after `down_for`.
    #[must_use]
    pub fn crash(broker: BrokerId, at: SimTime, down_for: SimDuration) -> Self {
        BrokerFault {
            broker,
            at,
            down_for,
            flaps: 1,
            up_for: SimDuration::ZERO,
        }
    }

    /// The outage cycles this fault expands to.
    #[must_use]
    pub fn outages(&self) -> Vec<BrokerOutage> {
        (0..self.flaps)
            .map(|k| {
                let from = self.at + (self.down_for + self.up_for) * u64::from(k);
                BrokerOutage {
                    broker: self.broker,
                    from,
                    until: from + self.down_for,
                }
            })
            .collect()
    }
}

/// Full specification of one experiment run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Producer configuration at the start of the run.
    pub producer: ProducerConfig,
    /// Cluster layout.
    pub cluster: ClusterSpec,
    /// Source stream description.
    pub source: SourceSpec,
    /// Injected network condition over time (NetEm schedule).
    pub network: ConditionTimeline,
    /// Transport parameters (link rate, TCP, reconnect cost).
    pub channel: ChannelConfig,
    /// Protocol sizing.
    pub wire: WireFormat,
    /// Mid-run configuration changes, `(apply at, new config)`, sorted by
    /// time — the §V dynamic-configuration hook.
    pub config_schedule: Vec<(SimTime, ProducerConfig)>,
    /// Hard simulation horizon; anything unresolved by then counts lost.
    pub max_duration: SimDuration,
    /// Scheduled broker outages.
    pub outages: Vec<BrokerOutage>,
    /// Broker fault patterns (crash / restart / flapping); each expands
    /// into outage cycles on top of `outages`.
    pub faults: Vec<BrokerFault>,
    /// When set, partitions led by a downed broker fail over after this
    /// detection delay (Kafka's controller moving leadership): a new
    /// leader is elected from the partition's ISR (clean) or — if the
    /// cluster allows it — from a lagging replica (unclean, truncating
    /// unfetched records). With a replication factor of 1 the old
    /// fresh-log handover is used instead. When `None`, producers must
    /// wait the outage out.
    pub failover_after: Option<SimDuration>,
    /// Online (feedback) configuration control, the EXT-3 extension.
    pub online: Option<OnlineSpec>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            producer: ProducerConfig::default(),
            cluster: ClusterSpec::default(),
            source: SourceSpec::default(),
            network: ConditionTimeline::constant(netsim::NetCondition::default()),
            channel: ChannelConfig::default(),
            wire: WireFormat::default(),
            config_schedule: Vec::new(),
            max_duration: SimDuration::from_secs(7_200),
            outages: Vec::new(),
            faults: Vec::new(),
            failover_after: None,
            online: None,
        }
    }
}

impl RunSpec {
    /// Validates the whole spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid component.
    pub fn validate(&self) -> Result<(), String> {
        self.producer.validate().map_err(|e| e.to_string())?;
        self.cluster.validate()?;
        self.source.validate()?;
        for (_, cfg) in &self.config_schedule {
            cfg.validate().map_err(|e| e.to_string())?;
        }
        if self.config_schedule.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("config schedule must strictly increase in time".into());
        }
        for outage in &self.outages {
            if outage.from >= outage.until {
                return Err("outage must end after it starts".into());
            }
            if outage.broker.0 >= self.cluster.brokers {
                return Err("outage names an unknown broker".into());
            }
        }
        for fault in &self.faults {
            if fault.down_for.is_zero() {
                return Err("fault outage length must be positive".into());
            }
            if fault.flaps == 0 {
                return Err("fault must have at least one crash cycle".into());
            }
            if fault.flaps > 1 && fault.up_for.is_zero() {
                return Err("flapping fault needs a positive up time between crashes".into());
            }
            if fault.broker.0 >= self.cluster.brokers {
                return Err("fault names an unknown broker".into());
            }
        }
        if let Some(online) = &self.online {
            if online.interval.is_zero() {
                return Err("online control interval must be positive".into());
            }
        }
        Ok(())
    }
}

/// Producer-side counters accumulated during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerStats {
    /// Produce requests written to a socket (including retries).
    pub requests_sent: u64,
    /// Requests that were retries of an earlier attempt.
    pub retries: u64,
    /// Connections torn down and re-established.
    pub connection_resets: u64,
    /// Messages expired producer-side before completing.
    pub expired: u64,
    /// Messages rejected by a full accumulator.
    pub overflowed: u64,
    /// Messages lost inside a torn-down socket (at-most-once).
    pub reset_losses: u64,
    /// Batches whose send was deferred by backpressure at least once.
    pub backpressured_batches: u64,
    /// Produce-request acknowledgements received (`acks=1`).
    pub acks_received: u64,
    /// Online-controller reconfigurations applied.
    pub online_reconfigurations: u64,
}

/// Cluster-side counters accumulated during a run: replication traffic,
/// ISR churn, and leader elections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerStats {
    /// Leader failovers performed (elections plus the replication-factor-1
    /// fresh-log handovers).
    pub failovers: u64,
    /// Elections that promoted an in-sync replica.
    pub clean_elections: u64,
    /// Elections that promoted a lagging replica (may truncate records).
    pub unclean_elections: u64,
    /// Follower fetch rounds that copied records.
    pub replica_fetches: u64,
    /// Replicas evicted from an ISR for lagging.
    pub isr_shrinks: u64,
    /// Replicas that caught up and rejoined an ISR.
    pub isr_expands: u64,
    /// Record copies truncated off partition logs by elections.
    pub records_truncated: u64,
    /// Messages whose *only* copies were truncated — broker-caused loss,
    /// audited as [`LossReason::LeaderFailover`].
    pub lost_to_failover: u64,
    /// Produce acknowledgements withheld (`acks=all`) until the ISR had
    /// fetched the records.
    pub acks_held: u64,
}

/// The result of a run: the audit report plus low-level statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The paper-style reliability report.
    pub report: DeliveryReport,
    /// Producer counters.
    pub producer: ProducerStats,
    /// Cluster-side counters (replication, ISR churn, elections).
    pub brokers: BrokerStats,
    /// Per-connection TCP sender statistics (producer side).
    pub tcp: Vec<netsim::tcp::TcpSenderStats>,
    /// Per-connection forward-link statistics.
    pub links: Vec<netsim::link::LinkStats>,
    /// Events fired by the simulation.
    pub events_fired: u64,
    /// Instant of the last productive activity.
    pub ended_at: SimTime,
    /// Total records appended across all brokers (every copy, including
    /// duplicates) — `delivered_once + duplicated + extra_copies`.
    pub records_appended: u64,
    /// Metrics folded from the trace, when the run's sink was an
    /// [`obs::MetricsSink`].
    pub metrics: Option<MetricsSummary>,
}

struct Conn {
    channel: DuplexChannel,
    broker: BrokerId,
    blocked: VecDeque<PendingBatch>,
    resp_queue: VecDeque<u64>,
    wake_at: Option<SimTime>,
    down_until: Option<SimTime>,
}

struct RequestInfo {
    partition: u32,
    records: Vec<ProduceRecord>,
    wants_ack: bool,
    batch_id: u64,
}

/// An `acks=all` acknowledgement the leader is withholding until every
/// in-sync replica has fetched the request's records.
struct PendingAck {
    conn: usize,
    req_id: u64,
    partition: u32,
    /// The leader log-end offset the ISR must reach.
    required: u64,
}

/// The run's event alphabet for the typed engine ([`desim::EventSim`]).
///
/// Each variant replaces what used to be a boxed closure: scheduling is now
/// a plain enum write into the event queue, so the hot loop allocates
/// nothing per event. Stale timers (sender kicks, linger wakes, connection
/// wakes, request timeouts) are retired by the guard flags in [`World`]
/// rather than by cancellation, exactly as before.
enum Event {
    /// Pull the next message from the source.
    PollSource,
    /// Periodic expiry sweep and termination check.
    Housekeeping,
    /// A NetEm breakpoint: apply a new network condition to every link.
    SetCondition(NetCondition),
    /// A scheduled (§V) producer reconfiguration.
    ApplyConfig(Box<ProducerConfig>),
    /// Broker `ci` crashes until `until`.
    OutageStart { ci: usize, until: SimTime },
    /// The controller notices broker `ci` is dead and moves leadership.
    Failover { ci: usize },
    /// Broker `ci`'s outage window ended.
    BrokerUp { ci: usize },
    /// One follower-fetch round.
    ReplicationTick,
    /// One online-controller observation window boundary.
    OnlineTick,
    /// The sender CPU became free; look for work.
    SenderKick,
    /// An open batch lingered out.
    LingerWake,
    /// Serialisation of `batch` finished; put it on the wire.
    Dispatch(PendingBatch),
    /// `req_id`'s response deadline passed.
    RequestTimeout { req_id: u64 },
    /// Connection `ci` may accept blocked batches again.
    DrainBlocked { ci: usize },
    /// Connection `ci`'s transport has queued work due now.
    ConnWake { ci: usize },
    /// Broker-side append of a processed request (payload parked in
    /// `World::append_info`). `via_teardown` marks requests that arrived
    /// while their connection was being torn down (no response possible).
    Append {
        ci: usize,
        id: u64,
        via_teardown: bool,
    },
}

/// The profiler span each event kind's handler is charged to.
///
/// Kinds that share a handler path share a span name, so the profile
/// groups wall-clock time by *phase* (batch formation, request pump,
/// replication, election) rather than by raw enum variant.
fn phase_name(event: &Event) -> &'static str {
    match event {
        Event::PollSource => "kafkasim.poll-source",
        Event::Housekeeping => "kafkasim.housekeeping",
        Event::SetCondition(_) => "kafkasim.set-condition",
        Event::ApplyConfig(_) => "kafkasim.apply-config",
        Event::OutageStart { .. } | Event::BrokerUp { .. } => "kafkasim.fault",
        Event::Failover { .. } => "kafkasim.election",
        Event::ReplicationTick => "kafkasim.replication",
        Event::OnlineTick => "kafkasim.online-tick",
        Event::SenderKick | Event::LingerWake => "kafkasim.batch-form",
        Event::Dispatch(_) => "kafkasim.dispatch",
        Event::RequestTimeout { .. } | Event::DrainBlocked { .. } | Event::ConnWake { .. } => {
            "kafkasim.request-pump"
        }
        Event::Append { .. } => "kafkasim.append",
    }
}

impl EventWorld for World {
    type Event = Event;

    fn handle(&mut self, event: Event, ctx: &mut Ctx) {
        if self.prof_on {
            let _guard = self.prof.span(phase_name(&event));
            self.dispatch(event, ctx);
        } else {
            self.dispatch(event, ctx);
        }
    }
}

impl World {
    /// The single dispatch point for every scheduled event.
    fn dispatch(&mut self, event: Event, ctx: &mut Ctx) {
        match event {
            Event::PollSource => poll_source(self, ctx),
            Event::Housekeeping => housekeeping(self, ctx),
            Event::SetCondition(cond) => {
                let now = ctx.now();
                for conn in &mut self.conns {
                    conn.channel.set_condition(cond, now);
                }
            }
            Event::ApplyConfig(cfg) => apply_config(self, ctx, *cfg),
            Event::OutageStart { ci, until } => on_outage_start(self, ctx, ci, until),
            Event::Failover { ci } => on_failover(self, ctx, ci),
            Event::BrokerUp { ci } => on_broker_up(self, ctx, ci),
            Event::ReplicationTick => replication_tick(self, ctx),
            Event::OnlineTick => online_tick(self, ctx),
            Event::SenderKick => {
                self.sender_kick_scheduled = false;
                let now = ctx.now();
                kick_sender(self, ctx, now);
            }
            Event::LingerWake => {
                self.linger_wake_at = None;
                let now = ctx.now();
                kick_sender(self, ctx, now);
            }
            Event::Dispatch(batch) => {
                dispatch_batch(self, ctx, batch);
                let now = ctx.now();
                kick_sender(self, ctx, now);
            }
            Event::RequestTimeout { req_id } => on_request_timeout(self, ctx, req_id),
            Event::DrainBlocked { ci } => drain_blocked(self, ctx, ci),
            Event::ConnWake { ci } => {
                if self.conns[ci].wake_at.is_some_and(|s| s <= ctx.now()) {
                    self.conns[ci].wake_at = None;
                }
                pump_conn(self, ctx, ci);
            }
            Event::Append {
                ci,
                id,
                via_teardown,
            } => do_append(self, ctx, ci, id, via_teardown),
        }
    }
}

struct World {
    /// Wall-clock span profiler; disabled outside profiled runs.
    prof: Profiler,
    /// Cached `prof.is_enabled()` — one branch per event instead of an
    /// `Option` probe per instrumented site.
    prof_on: bool,
    cfg: ProducerConfig,
    wire: WireFormat,
    source: SourceSpec,
    cluster: Cluster,
    conns: Vec<Conn>,
    partition_conn: Vec<usize>,
    accumulator: Accumulator,
    in_flight: InFlightTable,
    amo_outstanding: FastMap<u64, (usize, PendingBatch)>,
    requests: FastMap<u64, RequestInfo>,
    /// Requests whose broker-side processing delay is elapsing: the payload
    /// of a scheduled [`Event::Append`], parked here so the event itself
    /// stays a few words (the queue memcpys every entry it sifts).
    append_info: FastMap<u64, RequestInfo>,
    ledger: Ledger,
    rng: SimRng,
    next_key: u64,
    n_messages: u64,
    next_request_id: u64,
    next_partition: u32,
    sticky_count: usize,
    sender_busy_until: SimTime,
    sender_kick_scheduled: bool,
    linger_wake_at: Option<SimTime>,
    stats: ProducerStats,
    broker_stats: BrokerStats,
    pending_acks: Vec<PendingAck>,
    online: Option<OnlineSpec>,
    window_base: ProducerStats,
    done_polling: bool,
    finished: bool,
    last_activity: SimTime,
    housekeep_interval: SimDuration,
    /// Run horizon (`SimTime::ZERO + max_duration`); the poll-coalescing
    /// loop in [`poll_source`] must not process messages past it inline,
    /// because the driver loop only ever fires *one* event past it.
    hard_deadline: SimTime,
    trace: Box<dyn TraceSink>,
    /// Cached `trace.enabled()` — one virtual call at construction instead
    /// of one per trace site per event.
    trace_on: bool,
    conn_epochs: Vec<u32>,
    appended_keys: FastSet<u64>,
    /// Scratch buffer for expired-message sweeps (reused, never freed).
    msg_scratch: Vec<Message>,
    /// Scratch buffer for draining channel events (reused, never freed).
    chan_events: Vec<ChannelEvent>,
    /// Retired record buffers for [`RequestInfo::records`] reuse.
    rec_pool: Vec<Vec<ProduceRecord>>,
    /// Scratch deque for rebuilding blocked queues in housekeeping.
    deque_scratch: VecDeque<PendingBatch>,
    /// Pooled reset report reused across connection teardowns.
    reset_report: ResetReport,
}

impl World {
    /// Which brokers are crashed at `now` (conns map 1:1 to brokers).
    fn down_mask(&self, now: SimTime) -> Vec<bool> {
        self.conns
            .iter()
            .map(|c| c.down_until.is_some_and(|u| now < u))
            .collect()
    }

    fn mark_expired(&mut self, now: SimTime, messages: &[Message]) {
        for m in messages {
            self.ledger.mark_lost(m.key, LossReason::ExpiredInBuffer);
        }
        self.stats.expired += messages.len() as u64;
        self.trace_losses(now, messages, LossCause::ExpiredInBuffer, None);
    }

    /// Emits one `Expired` trace event per dropped message (no-op when the
    /// sink is disabled).
    fn trace_losses(
        &mut self,
        now: SimTime,
        messages: &[Message],
        cause: LossCause,
        batch: Option<u64>,
    ) {
        if !self.trace_on {
            return;
        }
        for m in messages {
            self.trace.record(TraceEvent::Expired {
                at: now,
                key: m.key.0,
                cause,
                batch,
            });
        }
    }

    /// A cleared record buffer, reused from the pool when possible.
    fn take_rec_buf(&mut self) -> Vec<ProduceRecord> {
        self.rec_pool.pop().unwrap_or_default()
    }

    /// Returns a request's record buffer to the pool.
    fn recycle_records(&mut self, mut records: Vec<ProduceRecord>) {
        if self.rec_pool.len() < 256 {
            records.clear();
            self.rec_pool.push(records);
        }
    }
}

type Ctx = EventContext<Event>;

/// Reusable allocation pools threaded across runs.
///
/// A single run recycles its message and record buffers internally; an
/// arena carries those pools *between* runs, so a sweep worker executing
/// many experiment points allocates its buffers once. Pass it to
/// [`KafkaRun::execute_pooled`]; a fresh arena is equivalent to none.
#[derive(Debug, Default)]
pub struct RunArena {
    msg_bufs: Vec<Vec<Message>>,
    rec_bufs: Vec<Vec<ProduceRecord>>,
    /// Typed ledger columns (created / attempts / loss tags), reused so
    /// repeated runs never regrow the per-message accounting arrays.
    ledger_cols: LedgerColumns,
}

impl RunArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        RunArena::default()
    }
}

/// One executable experiment.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct KafkaRun {
    spec: RunSpec,
    seed: u64,
    threads: usize,
}

impl KafkaRun {
    /// Prepares a run of `spec` with a deterministic `seed`.
    #[must_use]
    pub fn new(spec: RunSpec, seed: u64) -> Self {
        KafkaRun {
            spec,
            seed,
            threads: 1,
        }
    }

    /// Sets how many worker threads the run may use (`0` is treated as
    /// `1`).
    ///
    /// The protocol event loop itself is inherently sequential — one
    /// producer conversing with a handful of brokers over one causal
    /// timeline (fleet-scale parallelism lives in
    /// [`crate::fleet::FleetRun::execute_sharded`]). The knob parallelises
    /// the end-of-run phases whose merges are exact: the consumer
    /// read-back ([`ConsumedTopic::read_all_threaded`]) and the audit's
    /// counting pass ([`crate::audit::audit_threaded`]). The
    /// [`RunOutcome`] is bit-identical at every thread count; the
    /// workspace determinism test pins it.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Executes the run to completion and audits the result.
    ///
    /// Runs untraced (an [`obs::NoopSink`] is attached): the hot path asks
    /// the sink once per site whether to construct an event, so this costs
    /// one constant-returning virtual call per site and nothing else.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation — call [`RunSpec::validate`]
    /// first when the spec comes from untrusted input.
    #[must_use]
    pub fn execute(self) -> RunOutcome {
        self.execute_traced(Box::new(NoopSink)).0
    }

    /// Executes the run untraced, drawing buffers from (and returning them
    /// to) `arena` so repeated runs on one thread reuse their allocations.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation — call [`RunSpec::validate`]
    /// first when the spec comes from untrusted input.
    #[must_use]
    pub fn execute_pooled(self, arena: &mut RunArena) -> RunOutcome {
        self.execute_traced_with(Box::new(NoopSink), arena).0
    }

    /// Executes the run with `sink` receiving a [`TraceEvent`] for every
    /// hop of every message, and returns the sink alongside the outcome so
    /// its contents (events, metrics) can be inspected.
    ///
    /// Tracing is observational only: a traced run takes the exact same
    /// decisions as an untraced one with the same spec and seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation — call [`RunSpec::validate`]
    /// first when the spec comes from untrusted input.
    #[must_use]
    pub fn execute_traced(self, sink: Box<dyn TraceSink>) -> (RunOutcome, Box<dyn TraceSink>) {
        self.execute_traced_with(sink, &mut RunArena::new())
    }

    /// [`KafkaRun::execute_traced`] with a wall-clock span [`Profiler`]
    /// attached: the event loop runs in profiled slices and every handler
    /// is charged to a per-phase span (see the crate's span taxonomy).
    ///
    /// Profiling is observational only: a profiled run takes the exact
    /// same decisions as an unprofiled one with the same spec and seed,
    /// whether the profiler is enabled or disabled.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation — call [`RunSpec::validate`]
    /// first when the spec comes from untrusted input.
    #[must_use]
    pub fn execute_profiled(
        self,
        sink: Box<dyn TraceSink>,
        prof: Profiler,
    ) -> (RunOutcome, Box<dyn TraceSink>) {
        self.execute_profiled_with(sink, &mut RunArena::new(), prof)
    }

    /// [`KafkaRun::execute_traced`] with an explicit buffer arena.
    ///
    /// Pooling is observational only: a pooled run takes the exact same
    /// decisions as an unpooled one with the same spec and seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation — call [`RunSpec::validate`]
    /// first when the spec comes from untrusted input.
    #[must_use]
    pub fn execute_traced_with(
        self,
        sink: Box<dyn TraceSink>,
        arena: &mut RunArena,
    ) -> (RunOutcome, Box<dyn TraceSink>) {
        self.execute_profiled_with(sink, arena, Profiler::disabled())
    }

    /// [`KafkaRun::execute_profiled`] with an explicit buffer arena.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation — call [`RunSpec::validate`]
    /// first when the spec comes from untrusted input.
    #[must_use]
    pub fn execute_profiled_with(
        self,
        sink: Box<dyn TraceSink>,
        arena: &mut RunArena,
        prof: Profiler,
    ) -> (RunOutcome, Box<dyn TraceSink>) {
        let setup_guard = prof.span("kafkasim.setup");
        self.spec.validate().expect("invalid run spec");
        let threads = self.threads;
        let RunSpec {
            producer,
            cluster: cluster_spec,
            source,
            network,
            channel,
            wire,
            config_schedule,
            max_duration,
            outages,
            faults,
            failover_after,
            online,
        } = self.spec;

        let mut rng = SimRng::seed_from_u64(self.seed);
        let cluster = Cluster::new(cluster_spec).expect("validated");
        let initial_condition = network.at(SimTime::ZERO);
        let conns: Vec<Conn> = cluster
            .brokers()
            .iter()
            .map(|b| {
                let mut ch = DuplexChannel::new(channel.clone(), rng.fork());
                ch.set_condition(initial_condition, SimTime::ZERO);
                Conn {
                    channel: ch,
                    broker: b.id(),
                    blocked: VecDeque::new(),
                    resp_queue: VecDeque::new(),
                    wake_at: None,
                    down_until: None,
                }
            })
            .collect();
        let partition_conn: Vec<usize> = (0..cluster.partitions())
            .map(|p| cluster.leader_of(p).0 as usize)
            .collect();
        let mut accumulator = Accumulator::new(
            producer.batch_size,
            producer.linger,
            producer.buffer_capacity,
            cluster.partitions(),
        );
        accumulator.adopt_pool(std::mem::take(&mut arena.msg_bufs));
        let n_messages = source.n_messages;
        let n_conns = conns.len();
        let trace_on = sink.enabled();
        let prof_on = prof.is_enabled();
        let world = World {
            prof: prof.clone(),
            prof_on,
            cfg: producer,
            wire,
            source,
            cluster,
            conns,
            partition_conn,
            accumulator,
            in_flight: InFlightTable::new(),
            amo_outstanding: FastMap::default(),
            requests: FastMap::default(),
            append_info: FastMap::default(),
            ledger: Ledger::with_columns(std::mem::take(&mut arena.ledger_cols)),
            rng,
            next_key: 0,
            n_messages,
            next_request_id: 0,
            next_partition: 0,
            sticky_count: 0,
            sender_busy_until: SimTime::ZERO,
            sender_kick_scheduled: false,
            linger_wake_at: None,
            stats: ProducerStats::default(),
            broker_stats: BrokerStats::default(),
            pending_acks: Vec::new(),
            online,
            window_base: ProducerStats::default(),
            done_polling: false,
            finished: false,
            last_activity: SimTime::ZERO,
            housekeep_interval: SimDuration::from_millis(100),
            hard_deadline: SimTime::ZERO + max_duration,
            trace: sink,
            trace_on,
            conn_epochs: vec![0; n_conns],
            appended_keys: FastSet::default(),
            msg_scratch: Vec::new(),
            chan_events: Vec::new(),
            rec_pool: std::mem::take(&mut arena.rec_bufs),
            deque_scratch: VecDeque::new(),
            reset_report: ResetReport::default(),
        };

        let mut sim = EventSim::new(world);
        sim.schedule_at(SimTime::ZERO, Event::PollSource);
        sim.schedule_in(SimDuration::from_millis(100), Event::Housekeeping);
        for (t, cond) in network.breakpoints().iter().skip(1).copied() {
            sim.schedule_at(t, Event::SetCondition(cond));
        }
        for (t, cfg) in config_schedule {
            sim.schedule_at(t, Event::ApplyConfig(Box::new(cfg)));
        }
        let all_outages: Vec<BrokerOutage> = outages
            .into_iter()
            .chain(faults.iter().flat_map(BrokerFault::outages))
            .collect();
        for outage in all_outages {
            let ci = outage.broker.0 as usize;
            sim.schedule_at(
                outage.from,
                Event::OutageStart {
                    ci,
                    until: outage.until,
                },
            );
            if let Some(detect) = failover_after {
                sim.schedule_at(outage.from + detect, Event::Failover { ci });
            }
            sim.schedule_at(outage.until, Event::BrokerUp { ci });
        }
        if sim.world().cluster.spec().replication.factor > 1 {
            let interval = sim.world().cluster.spec().replication.fetch_interval;
            sim.schedule_in(interval, Event::ReplicationTick);
        }

        if let Some(interval) = sim.world().online.as_ref().map(|o| o.interval) {
            sim.schedule_in(interval, Event::OnlineTick);
        }
        let hard_deadline = SimTime::ZERO + max_duration;
        drop(setup_guard);
        if prof_on {
            // Identical event-for-event to the plain loop below (see
            // `EventSim::run_slice`), but each slice of the loop gets its
            // own span so the trace shows event-loop occupancy over time.
            const SLICE_EVENTS: u64 = 4096;
            loop {
                let fired = {
                    let _guard = prof.span("desim.run-slice");
                    sim.run_slice(hard_deadline, SLICE_EVENTS)
                };
                if fired == 0 {
                    break;
                }
            }
        } else {
            while sim.now() <= hard_deadline {
                if !sim.step() {
                    break;
                }
            }
        }

        let audit_guard = prof.span("kafkasim.audit");
        let (report, metrics, trace) = {
            let world = sim.world_mut();
            let topic = ConsumedTopic::read_all_threaded(&world.cluster, threads);
            if world.trace.enabled() {
                let end = world.last_activity;
                // Messages still unresolved at the horizon: the audit
                // counts them as UnsentAtEnd, so the trace must too.
                for (i, &tag) in world.ledger.lost_col().iter().enumerate() {
                    let key = MessageKey(i as u64);
                    if tag == 0 && topic.copies(key) == 0 {
                        world.trace.record(TraceEvent::Expired {
                            at: end,
                            key: key.0,
                            cause: LossCause::UnsentAtEnd,
                            batch: None,
                        });
                    }
                }
                // Replay the audit consumer's pass over the topic.
                for rec in topic.records() {
                    world.trace.record(TraceEvent::ConsumerRead {
                        at: end,
                        key: rec.key.0,
                        partition: rec.partition,
                        offset: rec.offset,
                        latency: rec.latency,
                    });
                }
            }
            let report = audit_threaded(
                &world.ledger,
                &topic,
                world.source.timeliness,
                world.last_activity,
                threads,
            );
            let metrics = world.trace.metrics().map(obs::MetricsRegistry::summary);
            let trace = std::mem::replace(&mut world.trace, Box::new(NoopSink));
            (report, metrics, trace)
        };
        let events_fired = sim.events_fired();
        let mut world = sim.into_world();
        let outcome = RunOutcome {
            report,
            producer: ProducerStats {
                overflowed: world.accumulator.overflowed(),
                ..world.stats
            },
            brokers: world.broker_stats,
            tcp: world
                .conns
                .iter()
                .map(|c| c.channel.sender_stats(Endpoint::A))
                .collect(),
            links: world
                .conns
                .iter()
                .map(|c| c.channel.link_stats(Endpoint::A))
                .collect(),
            events_fired,
            ended_at: world.last_activity,
            records_appended: world
                .cluster
                .brokers()
                .iter()
                .map(|b| b.records_appended())
                .sum(),
            metrics,
        };
        // Salvage the run's buffer pools for the next run on this arena.
        arena.msg_bufs = world.accumulator.take_pool();
        arena.rec_bufs = std::mem::take(&mut world.rec_pool);
        arena.ledger_cols = world.ledger.take_columns();
        drop(audit_guard);
        (outcome, trace)
    }
}

// ---------------------------------------------------------------------------
// Source polling
// ---------------------------------------------------------------------------

fn poll_source(w: &mut World, ctx: &mut Ctx) {
    if w.next_key >= w.n_messages {
        w.done_polling = true;
        return;
    }
    // Coalescing loop: after handling the poll this event was scheduled
    // for, keep polling *inline* as long as the next poll instant `t` is
    // strictly earlier than every pending event and within the run
    // horizon. The engine would have popped that poll next anyway, so the
    // inline execution is order-identical — same RNG draw sequence, same
    // trace order, same state evolution, same tie-breaks (ties with a
    // pending event at exactly `t` fall out of the loop, and the
    // re-scheduled poll gets a later seq than the pending event, exactly
    // as in the uncoalesced engine). Only `events_fired` differs.
    let mut now = ctx.now();
    loop {
        let payload = w.source.size.sample(&mut w.rng);
        let key = MessageKey(w.next_key);
        w.next_key += 1;
        let message = Message::new(key, payload, now, w.cfg.message_timeout);
        w.ledger.register(key, now);
        w.last_activity = now;
        // Sticky partitioning (the modern Kafka default for keyless
        // records): fill one partition's batch before moving to the next,
        // so the configured batch size B is actually reached at any
        // arrival rate.
        let partition = w.next_partition;
        w.sticky_count += 1;
        if w.sticky_count >= w.cfg.batch_size {
            w.sticky_count = 0;
            w.next_partition = (w.next_partition + 1) % w.cluster.partitions();
        }
        if w.trace_on {
            w.trace.record(TraceEvent::Enqueued {
                at: now,
                key: key.0,
                partition,
                deadline: message.deadline,
            });
        }
        if let Err(rejected) = w.accumulator.push(message, partition, now) {
            w.ledger.mark_lost(rejected.key, LossReason::BufferOverflow);
            if w.trace_on {
                w.trace.record(TraceEvent::Expired {
                    at: now,
                    key: rejected.key.0,
                    cause: LossCause::BufferOverflow,
                    batch: None,
                });
            }
        }
        kick_sender(w, ctx, now);
        let gap = w.source.poll_gap(now, payload, &w.cfg.host);
        let t = now + gap;
        // The final poll (which flips `done_polling`) must stay a real
        // event: flipping it inline would let an earlier housekeeping
        // pass observe it too soon.
        if w.next_key >= w.n_messages
            || t > w.hard_deadline
            || ctx.next_deadline().is_some_and(|d| t >= d)
        {
            ctx.schedule_at(t, Event::PollSource);
            return;
        }
        now = t;
    }
}

// ---------------------------------------------------------------------------
// Sender (serialisation CPU)
// ---------------------------------------------------------------------------

fn kick_sender(w: &mut World, ctx: &mut Ctx, now: SimTime) {
    if now < w.sender_busy_until {
        if !w.sender_kick_scheduled {
            w.sender_kick_scheduled = true;
            ctx.schedule_at(w.sender_busy_until, Event::SenderKick);
        }
        return;
    }
    w.accumulator.flush_due(now);
    let mut expired = std::mem::take(&mut w.msg_scratch);
    loop {
        expired.clear();
        let picked = w.accumulator.pop_ready_with_expiry(now, &mut expired);
        w.mark_expired(now, &expired);
        let Some(mut batch) = picked else {
            w.msg_scratch = expired;
            schedule_linger_wake(w, ctx, now);
            return;
        };
        let mean = w
            .cfg
            .host
            .service_time(batch.messages.len(), batch.payload_bytes());
        let service = if w.cfg.host.jittered_service && !mean.is_zero() {
            let secs = w.rng.exponential(1.0 / mean.as_secs_f64());
            SimDuration::from_secs_f64(secs)
        } else {
            mean
        };
        // The sender checks delivery.timeout when it *picks* the batch:
        // messages that would expire before serialisation is expected to
        // complete are dropped now, so no CPU is wasted on doomed work.
        // The lookahead uses the *mean* service time — the actual duration
        // is not known in advance — and once picked, the batch is
        // committed.
        expired.clear();
        batch.drop_expired_into(now + mean, &mut expired);
        w.mark_expired(now, &expired);
        if batch.messages.is_empty() {
            w.accumulator.recycle(batch);
            continue;
        }
        if w.trace_on {
            w.trace.record(TraceEvent::BatchFormed {
                at: now,
                batch: batch.id,
                partition: batch.partition,
                keys: batch.messages.iter().map(|m| m.key.0).collect(),
                bytes: batch.payload_bytes(),
            });
        }
        w.sender_busy_until = now + service;
        ctx.schedule_at(w.sender_busy_until, Event::Dispatch(batch));
        w.msg_scratch = expired;
        return;
    }
}

fn schedule_linger_wake(w: &mut World, ctx: &mut Ctx, now: SimTime) {
    if let Some(deadline) = w.accumulator.next_linger_deadline() {
        let due = deadline.max(now);
        if w.linger_wake_at.is_none_or(|t| due < t) {
            w.linger_wake_at = Some(due);
            ctx.schedule_at(due, Event::LingerWake);
        }
    }
}

fn dispatch_batch(w: &mut World, ctx: &mut Ctx, batch: PendingBatch) {
    let ci = w.partition_conn[batch.partition as usize];
    match try_send(w, ctx, ci, batch) {
        Ok(()) => {}
        Err(batch) => {
            w.stats.backpressured_batches += 1;
            w.conns[ci].blocked.push_back(batch);
        }
    }
}

/// Attempts to put `batch` on the wire; hands it back when backpressured.
fn try_send(
    w: &mut World,
    ctx: &mut Ctx,
    ci: usize,
    mut batch: PendingBatch,
) -> Result<(), PendingBatch> {
    let now = ctx.now();
    // First-attempt batches were committed when the sender picked them (the
    // expiry check happened at pop, with service lookahead) - they go out
    // even if serialisation ran long. Retry batches re-check the deadline:
    // delivery.timeout covers the whole retry loop.
    if batch.attempts > 0 {
        let mut expired = std::mem::take(&mut w.msg_scratch);
        expired.clear();
        batch.drop_expired_into(now, &mut expired);
        for m in &expired {
            w.ledger.mark_lost(m.key, LossReason::RetriesExhausted);
        }
        w.stats.expired += expired.len() as u64;
        w.trace_losses(now, &expired, LossCause::RetriesExhausted, Some(batch.id));
        w.msg_scratch = expired;
    }
    if batch.messages.is_empty() {
        w.accumulator.recycle(batch);
        return Ok(());
    }
    if w.conns[ci].down_until.is_some_and(|u| now < u) {
        return Err(batch); // broker down: wait (or fail over)
    }
    let wants_ack = w.cfg.semantics != DeliverySemantics::AtMostOnce;
    if wants_ack && w.in_flight.count(ci) >= w.cfg.max_in_flight {
        return Err(batch);
    }
    let bytes = w
        .wire
        .request_bytes(batch.messages.iter().map(|m| m.payload_bytes));
    let req_id = w.next_request_id;
    match w.conns[ci]
        .channel
        .send_record(Endpoint::A, req_id, bytes, now)
    {
        Ok(()) => {
            w.next_request_id += 1;
            batch.attempts += 1;
            for m in &batch.messages {
                w.ledger.note_attempt(m.key);
            }
            w.stats.requests_sent += 1;
            if batch.attempts > 1 {
                w.stats.retries += 1;
            }
            if w.trace_on {
                let epoch = w.conn_epochs[ci];
                w.trace.record(TraceEvent::RequestSent {
                    at: now,
                    batch: batch.id,
                    request: req_id,
                    conn: ci as u32,
                    epoch,
                    attempt: batch.attempts,
                    records: batch.messages.len() as u64,
                    bytes,
                });
                if batch.attempts > 1 {
                    w.trace.record(TraceEvent::Retry {
                        at: now,
                        batch: batch.id,
                        request: req_id,
                        conn: ci as u32,
                        epoch,
                        attempt: batch.attempts,
                    });
                }
            }
            let mut records = w.take_rec_buf();
            batch.to_records_into(&mut records);
            w.requests.insert(
                req_id,
                RequestInfo {
                    partition: batch.partition,
                    records,
                    wants_ack,
                    batch_id: batch.id,
                },
            );
            if wants_ack {
                let timeout_at = now + w.cfg.request_timeout;
                w.in_flight.insert(
                    req_id,
                    InFlightRequest {
                        batch,
                        conn: ci,
                        sent_at: now,
                        timeout_at,
                    },
                );
                ctx.schedule_at(timeout_at, Event::RequestTimeout { req_id });
            } else {
                w.amo_outstanding.insert(req_id, (ci, batch));
            }
            sched_conn_wake(w, ctx, ci);
            Ok(())
        }
        Err(SendRecordError::BufferFull { .. }) => Err(batch),
        Err(SendRecordError::Reconnecting { until }) => {
            ctx.schedule_at(until, Event::DrainBlocked { ci });
            Err(batch)
        }
    }
}

fn drain_blocked(w: &mut World, ctx: &mut Ctx, ci: usize) {
    while let Some(batch) = w.conns[ci].blocked.pop_front() {
        match try_send(w, ctx, ci, batch) {
            Ok(()) => {}
            Err(batch) => {
                w.conns[ci].blocked.push_front(batch);
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Channel event handling
// ---------------------------------------------------------------------------

fn sched_conn_wake(w: &mut World, ctx: &mut Ctx, ci: usize) {
    if let Some(t) = w.conns[ci].channel.next_wakeup() {
        let t = t.max(ctx.now());
        if w.conns[ci].wake_at.is_none_or(|s| t < s) {
            w.conns[ci].wake_at = Some(t);
            ctx.schedule_at(t, Event::ConnWake { ci });
        }
    }
}

fn pump_conn(w: &mut World, ctx: &mut Ctx, ci: usize) {
    let now = ctx.now();
    let mut events = std::mem::take(&mut w.chan_events);
    events.clear();
    w.conns[ci].channel.advance_into(now, &mut events);
    let mut drain = false;
    for &ev in &events {
        match ev {
            ChannelEvent::RecordDelivered {
                to: Endpoint::B,
                id,
                ..
            } => on_request_arrived(w, ctx, ci, id),
            ChannelEvent::RecordDelivered {
                to: Endpoint::A,
                id,
                ..
            } => {
                if let Some(req) = w.in_flight.complete(id) {
                    w.stats.acks_received += 1;
                    w.last_activity = now;
                    if w.trace_on {
                        w.trace.record(TraceEvent::AckReceived {
                            at: now,
                            batch: req.batch.id,
                            request: id,
                            conn: ci as u32,
                            epoch: w.conn_epochs[ci],
                            rtt: now.saturating_since(req.sent_at),
                        });
                    }
                    w.accumulator.recycle(req.batch);
                    drain = true;
                }
            }
            ChannelEvent::SendSpaceAvailable {
                endpoint: Endpoint::A,
                ..
            } => drain = true,
            ChannelEvent::SendSpaceAvailable {
                endpoint: Endpoint::B,
                ..
            } => flush_responses(w, ctx, ci),
        }
    }
    w.chan_events = events;
    if drain {
        drain_blocked(w, ctx, ci);
    }
    amo_stall_check(w, ctx, ci);
    sched_conn_wake(w, ctx, ci);
}

fn on_request_arrived(w: &mut World, ctx: &mut Ctx, ci: usize, id: u64) {
    let Some(info) = w.requests.remove(&id) else {
        return; // stale duplicate of an already-processed request
    };
    // The batch's bytes crossed the wire: it is no longer at reset risk.
    if let Some((_, batch)) = w.amo_outstanding.remove(&id) {
        w.accumulator.recycle(batch);
    }
    let proc = w
        .cluster
        .broker(w.conns[ci].broker)
        .expect("broker exists")
        .processing_time(info.records.len());
    w.append_info.insert(id, info);
    ctx.schedule_in(
        proc,
        Event::Append {
            ci,
            id,
            via_teardown: false,
        },
    );
}

/// Broker-side append of a request whose processing delay elapsed. For a
/// regular arrival (`via_teardown == false`) the broker then answers (or
/// holds the answer under `acks=all`); a teardown append persists the
/// records but can never respond — its connection is gone.
fn do_append(w: &mut World, ctx: &mut Ctx, ci: usize, id: u64, via_teardown: bool) {
    let info = w.append_info.remove(&id).expect("append payload parked");
    let broker_id = w.conns[ci].broker;
    let now = ctx.now();
    let base = w
        .cluster
        .broker_mut(broker_id)
        .expect("broker exists")
        .append(info.partition, &info.records, now)
        .expect("partition is led by this broker");
    w.last_activity = now;
    trace_appends(w, now, &info, id, base, broker_id, via_teardown);
    if !via_teardown && info.wants_ack {
        let required = base + info.records.len() as u64;
        if w.cfg.semantics == DeliverySemantics::All && !w.cluster.isr_has(info.partition, required)
        {
            // acks=all: hold the response until every in-sync replica
            // has fetched up to this batch's last offset. The next
            // replication tick (or an ISR shrink) releases it.
            w.broker_stats.acks_held += 1;
            w.pending_acks.push(PendingAck {
                conn: ci,
                req_id: id,
                partition: info.partition,
                required,
            });
        } else {
            send_response(w, ctx, ci, id);
        }
    }
    w.recycle_records(info.records);
}

/// Emits one `BrokerAppend` per record just persisted, tagging the ones
/// whose key was already in a partition log — those appends are the
/// moments Case 5 duplicates come into being. The duplicate-detection set
/// is only maintained while tracing, so untraced runs pay nothing.
fn trace_appends(
    w: &mut World,
    now: SimTime,
    info: &RequestInfo,
    request: u64,
    base_offset: u64,
    broker: BrokerId,
    via_teardown: bool,
) {
    if !w.trace_on {
        return;
    }
    for (i, r) in info.records.iter().enumerate() {
        let duplicate = !w.appended_keys.insert(r.key.0);
        w.trace.record(TraceEvent::BrokerAppend {
            at: now,
            batch: info.batch_id,
            request,
            broker: broker.0,
            partition: info.partition,
            key: r.key.0,
            offset: base_offset + i as u64,
            latency: now.saturating_since(r.created_at),
            duplicate,
            via_teardown,
        });
    }
}

fn send_response(w: &mut World, ctx: &mut Ctx, ci: usize, id: u64) {
    let now = ctx.now();
    let bytes = w.wire.response_bytes;
    match w.conns[ci].channel.send_record(Endpoint::B, id, bytes, now) {
        Ok(()) => sched_conn_wake(w, ctx, ci),
        Err(_) => w.conns[ci].resp_queue.push_back(id),
    }
}

fn flush_responses(w: &mut World, ctx: &mut Ctx, ci: usize) {
    let now = ctx.now();
    while let Some(&id) = w.conns[ci].resp_queue.front() {
        let bytes = w.wire.response_bytes;
        match w.conns[ci].channel.send_record(Endpoint::B, id, bytes, now) {
            Ok(()) => {
                w.conns[ci].resp_queue.pop_front();
            }
            Err(_) => break,
        }
    }
    sched_conn_wake(w, ctx, ci);
}

// ---------------------------------------------------------------------------
// Failure handling
// ---------------------------------------------------------------------------

fn on_request_timeout(w: &mut World, ctx: &mut Ctx, req_id: u64) {
    if !w.in_flight.contains(req_id) {
        return; // answered in time
    }
    // An unanswered request fails the whole connection (as in a real
    // client): reset it and retry everything that was in flight on it.
    let ci = w.in_flight.conn_of(req_id).expect("request is in flight");
    fail_connection_alo(w, ctx, ci);
}

fn fail_connection_alo(w: &mut World, ctx: &mut Ctx, ci: usize) {
    let now = ctx.now();
    let mut report = std::mem::take(&mut w.reset_report);
    w.conns[ci].channel.reset_into(now, &mut report);
    w.stats.connection_resets += 1;
    if w.trace_on {
        // Under acks=1 nothing is lost in the socket itself: the in-flight
        // batches are requeued, and any that die do so as RetriesExhausted
        // expiries below.
        w.trace.record(TraceEvent::ConnectionReset {
            at: now,
            conn: ci as u32,
            epoch: w.conn_epochs[ci],
            lost_keys: Vec::new(),
        });
    }
    w.conn_epochs[ci] += 1;
    // Responses that were already on the wire still count: those requests
    // completed and must not be retried.
    for id in &report.teardown_delivered_to_a {
        if let Some(req) = w.in_flight.complete(*id) {
            w.accumulator.recycle(req.batch);
        }
    }
    // Requests whose bytes reached the broker during teardown are appended
    // there — but the producer never hears back, so it will retry them:
    // this is exactly how Case 5 duplicates arise.
    for &id in &report.teardown_delivered_to_b {
        teardown_append(w, ctx, ci, id);
    }
    let taken = w.in_flight.take_conn(ci);
    for id in &report.undelivered_from_a {
        if let Some(info) = w.requests.remove(id) {
            w.recycle_records(info.records);
        }
    }
    w.reset_report = report;
    w.conns[ci].resp_queue.clear();
    // Requeue newest-first with push_front so the oldest batch (closest to
    // its deadline) ends up at the head of the retry queue.
    let mut expired = std::mem::take(&mut w.msg_scratch);
    for (_, inflight) in taken.into_iter().rev() {
        let mut batch = inflight.batch;
        if batch.attempts > w.cfg.max_retries {
            for m in &batch.messages {
                w.ledger.mark_lost(m.key, LossReason::RetriesExhausted);
            }
            let given_up = std::mem::take(&mut batch.messages);
            w.trace_losses(now, &given_up, LossCause::RetriesExhausted, Some(batch.id));
            batch.messages = given_up;
            w.accumulator.recycle(batch);
            continue;
        }
        expired.clear();
        batch.drop_expired_into(now, &mut expired);
        for m in &expired {
            w.ledger.mark_lost(m.key, LossReason::RetriesExhausted);
        }
        w.trace_losses(now, &expired, LossCause::RetriesExhausted, Some(batch.id));
        if !batch.messages.is_empty() {
            w.conns[ci].blocked.push_front(batch);
        } else {
            w.accumulator.recycle(batch);
        }
    }
    w.msg_scratch = expired;
    let reopen = w.conns[ci].channel.open_at();
    ctx.schedule_at(reopen, Event::DrainBlocked { ci });
    sched_conn_wake(w, ctx, ci);
}

fn amo_stall_check(w: &mut World, ctx: &mut Ctx, ci: usize) {
    if w.cfg.semantics != DeliverySemantics::AtMostOnce {
        return;
    }
    // With acks=0 a batch "completes" at the socket write, so nothing
    // producer-side expires it afterwards; the only thing that kills
    // in-socket data is the transport stalling hard enough (consecutive
    // RTO backoffs with no progress) that the client recycles the
    // connection — exactly the silent-loss mode of a real fire-and-forget
    // producer.
    let now = ctx.now();
    let channel = &w.conns[ci].channel;
    if channel.bytes_unacked(Endpoint::A) == 0 {
        return;
    }
    let backed_off = channel.backoffs(Endpoint::A) >= w.cfg.stall_backoffs;
    let timed_out = channel.is_stalled(Endpoint::A, now, w.cfg.stall_patience);
    if backed_off || timed_out {
        reset_amo(w, ctx, ci);
    }
}

fn reset_amo(w: &mut World, ctx: &mut Ctx, ci: usize) {
    let now = ctx.now();
    let mut report = std::mem::take(&mut w.reset_report);
    w.conns[ci].channel.reset_into(now, &mut report);
    w.stats.connection_resets += 1;
    // Requests that crossed the wire during teardown still get persisted.
    for &id in &report.teardown_delivered_to_b {
        if let Some((_, batch)) = w.amo_outstanding.remove(&id) {
            w.accumulator.recycle(batch);
        }
        teardown_append(w, ctx, ci, id);
    }
    let mut lost_keys = Vec::new();
    for id in &report.undelivered_from_a {
        if let Some((_, batch)) = w.amo_outstanding.remove(id) {
            for m in &batch.messages {
                w.ledger.mark_lost(m.key, LossReason::ConnectionReset);
                if w.trace_on {
                    lost_keys.push(m.key.0);
                }
            }
            w.stats.reset_losses += batch.messages.len() as u64;
            w.accumulator.recycle(batch);
        }
        if let Some(info) = w.requests.remove(id) {
            w.recycle_records(info.records);
        }
    }
    w.reset_report = report;
    if w.trace_on {
        // The keys that died silently in the torn-down socket: acks=0's
        // loss mode, attributable only through this event.
        w.trace.record(TraceEvent::ConnectionReset {
            at: now,
            conn: ci as u32,
            epoch: w.conn_epochs[ci],
            lost_keys,
        });
    }
    w.conn_epochs[ci] += 1;
    let reopen = w.conns[ci].channel.open_at();
    ctx.schedule_at(reopen, Event::DrainBlocked { ci });
    sched_conn_wake(w, ctx, ci);
}

/// Appends a request that arrived at the broker while its connection was
/// being torn down. No response is possible: the connection is gone.
fn teardown_append(w: &mut World, ctx: &mut Ctx, ci: usize, id: u64) {
    let Some(info) = w.requests.remove(&id) else {
        return;
    };
    let proc = w
        .cluster
        .broker(w.conns[ci].broker)
        .expect("broker exists")
        .processing_time(info.records.len());
    w.append_info.insert(id, info);
    ctx.schedule_in(
        proc,
        Event::Append {
            ci,
            id,
            via_teardown: true,
        },
    );
}

// ---------------------------------------------------------------------------
// Housekeeping and termination
// ---------------------------------------------------------------------------

/// A broker crashes: the connection dies exactly like a stall-reset, but
/// nothing can be resent to this broker until it returns (or leadership
/// moves).
fn on_outage_start(w: &mut World, ctx: &mut Ctx, ci: usize, until: SimTime) {
    w.conns[ci].down_until = Some(until);
    if w.trace_on {
        w.trace.record(TraceEvent::BrokerDown {
            at: ctx.now(),
            broker: w.conns[ci].broker.0,
        });
    }
    match w.cfg.semantics {
        DeliverySemantics::AtMostOnce => reset_amo(w, ctx, ci),
        DeliverySemantics::AtLeastOnce | DeliverySemantics::All => {
            fail_connection_alo(w, ctx, ci);
        }
    }
}

/// The broker's outage window ends: the connection is usable again and the
/// broker's replicas start catching up (rejoining ISRs via fetch rounds).
fn on_broker_up(w: &mut World, ctx: &mut Ctx, ci: usize) {
    let now = ctx.now();
    if w.conns[ci].down_until.is_some_and(|u| now < u) {
        return; // a later outage window is still in force
    }
    w.conns[ci].down_until = None;
    if w.trace_on {
        w.trace.record(TraceEvent::BrokerUp {
            at: now,
            broker: w.conns[ci].broker.0,
        });
    }
    drain_blocked(w, ctx, ci);
}

/// The controller detects the dead broker and elects a new leader for each
/// partition it led: from the ISR when possible (clean — no acknowledged
/// record can be lost), from the least-lagging live replica when unclean
/// election is enabled (truncating everything the winner had not fetched),
/// or — when the partition has no replica to elect (`factor == 1`) — via
/// the legacy fresh-log transfer to the first alive broker. The producer
/// re-routes its backlog to the new leaders.
fn on_failover(w: &mut World, ctx: &mut Ctx, ci: usize) {
    let now = ctx.now();
    if w.conns[ci].down_until.is_none_or(|u| now >= u) {
        return; // back already
    }
    let down = w.down_mask(now);
    for p in 0..w.partition_conn.len() {
        if w.partition_conn[p] != ci {
            continue;
        }
        let partition = p as u32;
        if let Some((candidate, _)) = w.cluster.election_candidate(partition, &down) {
            let outcome = w.cluster.elect_leader(partition, candidate, now);
            w.broker_stats.failovers += 1;
            if outcome.clean {
                w.broker_stats.clean_elections += 1;
            } else {
                w.broker_stats.unclean_elections += 1;
            }
            w.broker_stats.records_truncated += outcome.truncated.len() as u64;
            let mut truncated_keys: Vec<u64> = outcome.truncated.iter().map(|r| r.key.0).collect();
            truncated_keys.sort_unstable();
            // A truncated key with no surviving copy in the new leader's
            // log is broker-caused loss. The mark is pessimistic on
            // purpose: an unacknowledged copy may still be retried to the
            // new leader, and the audit trusts the final log over the mark.
            let surviving: FastSet<u64> = w
                .cluster
                .broker(outcome.leader)
                .and_then(|b| b.log(partition))
                .map(|log| log.iter().map(|r| r.key.0).collect())
                .unwrap_or_default();
            let mut lost_keys = truncated_keys.clone();
            lost_keys.dedup();
            lost_keys.retain(|k| !surviving.contains(k));
            for &k in &lost_keys {
                w.ledger
                    .mark_lost(MessageKey(k), LossReason::LeaderFailover);
            }
            w.broker_stats.lost_to_failover += lost_keys.len() as u64;
            if w.trace_on {
                w.trace.record(TraceEvent::LeaderElected {
                    at: now,
                    partition,
                    leader: outcome.leader.0,
                    clean: outcome.clean,
                    truncated_keys,
                    lost_keys,
                });
            }
            w.partition_conn[p] = outcome.leader.0 as usize;
        } else {
            let target = (0..w.conns.len())
                .find(|&c| c != ci && w.conns[c].down_until.is_none_or(|u| now >= u));
            let Some(target) = target else {
                continue; // nowhere to go
            };
            let to = w.conns[target].broker;
            w.cluster.transfer_leadership(partition, to);
            w.partition_conn[p] = target;
            w.broker_stats.failovers += 1;
            if w.trace_on {
                w.trace.record(TraceEvent::LeaderElected {
                    at: now,
                    partition,
                    leader: to.0,
                    clean: false,
                    truncated_keys: Vec::new(),
                    lost_keys: Vec::new(),
                });
            }
        }
    }
    // Re-route the backlog to the new leaders' connections.
    let backlog: Vec<PendingBatch> = w.conns[ci].blocked.drain(..).collect();
    for batch in backlog {
        let new_ci = w.partition_conn[batch.partition as usize];
        w.conns[new_ci].blocked.push_back(batch);
    }
    for c in 0..w.conns.len() {
        drain_blocked(w, ctx, c);
    }
    // The election may have shrunk an ISR past a held ack's requirement.
    release_pending_acks(w, ctx);
}

/// One follower-fetch round: followers pull from their leaders, the ISR is
/// re-evaluated against `replica.lag.time.max`, and held `acks=all`
/// responses whose offsets are now fully in-sync are released.
///
/// Deliberately leaves `last_activity` alone — replication traffic on its
/// own never keeps a run alive.
fn replication_tick(w: &mut World, ctx: &mut Ctx) {
    let now = ctx.now();
    let down = w.down_mask(now);
    for delta in w.cluster.replicate(now, &down) {
        match delta {
            ReplicationDelta::Fetch {
                partition,
                leader,
                follower,
                from_offset,
                records,
            } => {
                w.broker_stats.replica_fetches += 1;
                if w.trace_on {
                    w.trace.record(TraceEvent::ReplicaFetch {
                        at: now,
                        partition,
                        leader: leader.0,
                        follower: follower.0,
                        from_offset,
                        records,
                    });
                }
            }
            ReplicationDelta::Shrink {
                partition,
                broker,
                isr,
            } => {
                w.broker_stats.isr_shrinks += 1;
                if w.trace_on {
                    w.trace.record(TraceEvent::IsrShrink {
                        at: now,
                        partition,
                        broker: broker.0,
                        isr,
                    });
                }
            }
            ReplicationDelta::Expand {
                partition,
                broker,
                isr,
            } => {
                w.broker_stats.isr_expands += 1;
                if w.trace_on {
                    w.trace.record(TraceEvent::IsrExpand {
                        at: now,
                        partition,
                        broker: broker.0,
                        isr,
                    });
                }
            }
        }
    }
    release_pending_acks(w, ctx);
    if !w.finished {
        let interval = w.cluster.spec().replication.fetch_interval;
        ctx.schedule_in(interval, Event::ReplicationTick);
    }
}

/// Sends every held `acks=all` response whose required offset the ISR now
/// has, and drops entries whose request is no longer in flight (the
/// connection reset underneath them and the batch went back to the retry
/// queue).
fn release_pending_acks(w: &mut World, ctx: &mut Ctx) {
    let pending = std::mem::take(&mut w.pending_acks);
    for ack in pending {
        if !w.in_flight.contains(ack.req_id) {
            continue; // reset underneath us: the batch will be retried
        }
        if w.cluster.isr_has(ack.partition, ack.required) {
            send_response(w, ctx, ack.conn, ack.req_id);
        } else {
            w.pending_acks.push(ack);
        }
    }
}

fn housekeeping(w: &mut World, ctx: &mut Ctx) {
    let now = ctx.now();
    let expired = w.accumulator.expire_all(now);
    w.mark_expired(now, &expired);
    // Blocked batches also age out.
    let mut expired = std::mem::take(&mut w.msg_scratch);
    for ci in 0..w.conns.len() {
        if !w.conns[ci].blocked.is_empty() {
            let mut kept = std::mem::take(&mut w.deque_scratch);
            while let Some(mut batch) = w.conns[ci].blocked.pop_front() {
                let (reason, cause) = if batch.attempts == 0 {
                    (LossReason::ExpiredInBuffer, LossCause::ExpiredInBuffer)
                } else {
                    (LossReason::RetriesExhausted, LossCause::RetriesExhausted)
                };
                expired.clear();
                batch.drop_expired_into(now, &mut expired);
                for m in &expired {
                    w.ledger.mark_lost(m.key, reason);
                }
                w.stats.expired += expired.len() as u64;
                w.trace_losses(now, &expired, cause, Some(batch.id));
                if !batch.messages.is_empty() {
                    kept.push_back(batch);
                } else {
                    w.accumulator.recycle(batch);
                }
            }
            std::mem::swap(&mut w.conns[ci].blocked, &mut kept);
            w.deque_scratch = kept;
        }
        amo_stall_check(w, ctx, ci);
    }
    w.msg_scratch = expired;
    w.accumulator.flush_due(now);
    if !w.accumulator.is_empty() {
        kick_sender(w, ctx, now);
    }
    let idle = w.done_polling
        && w.accumulator.is_empty()
        && w.in_flight.is_empty()
        && w.amo_outstanding.is_empty()
        && w.requests.is_empty()
        && w.conns.iter().all(|c| c.blocked.is_empty());
    if idle {
        w.finished = true;
        return; // stop rescheduling: the event queue will drain
    }
    let interval = w.housekeep_interval;
    ctx.schedule_in(interval, Event::Housekeeping);
}

/// One observation-window boundary of the online controller.
fn online_tick(w: &mut World, ctx: &mut Ctx) {
    let Some(online) = w.online.clone() else {
        return;
    };
    let now = ctx.now();
    let cur = w.stats;
    let base = w.window_base;
    w.window_base = cur;
    let srtt_ms = w
        .conns
        .iter()
        .filter_map(|c| c.channel.srtt(Endpoint::A))
        .map(|d| d.as_secs_f64() * 1e3)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        });
    let (rtt_p99_ms, e2e_p99_ms, batch_fill_mean) = match w.trace.metrics() {
        Some(m) => (
            m.rtt().quantile(0.99).map(|s| s * 1e3),
            m.e2e_latency().quantile(0.99).map(|s| s * 1e3),
            m.batch_fill_mean(),
        ),
        None => (None, None, None),
    };
    let stats = WindowStats {
        at: now,
        window: online.interval,
        requests_sent: cur.requests_sent - base.requests_sent,
        acks_received: cur.acks_received - base.acks_received,
        retries: cur.retries - base.retries,
        connection_resets: cur.connection_resets - base.connection_resets,
        expired: cur.expired - base.expired,
        backlog: w.accumulator.len(),
        srtt_ms,
        rtt_p99_ms,
        e2e_p99_ms,
        batch_fill_mean,
    };
    if let Some(new_cfg) = online.controller.decide(&stats, &w.cfg) {
        if new_cfg != w.cfg && new_cfg.validate().is_ok() {
            w.stats.online_reconfigurations += 1;
            apply_config(w, ctx, new_cfg);
        }
    }
    // Drain controller-buffered events (drift detections, refits) on every
    // tick so adaptive controllers never accumulate unbounded buffers; the
    // events reach the trace only on traced runs.
    let mut policy_events = Vec::new();
    online.controller.drain_events(&mut policy_events);
    if w.trace_on {
        for ev in policy_events {
            w.trace.record(ev);
        }
    }
    if w.trace_on {
        // Interleave the controller's cumulative counters (planner cache
        // hits/misses, replans) into the trace so windowed recorders can
        // difference them per window. Observational only: nothing about
        // the run's decisions depends on these events.
        let mut reg = obs::MetricsRegistry::new();
        online.controller.export_metrics(&mut reg);
        for (name, value) in reg.counters() {
            w.trace.record(TraceEvent::CounterSample {
                at: now,
                name: name.clone(),
                value: *value,
            });
        }
    }
    // Keep observing while work remains.
    if !w.finished {
        ctx.schedule_in(online.interval, Event::OnlineTick);
    }
}

fn apply_config(w: &mut World, ctx: &mut Ctx, cfg: ProducerConfig) {
    let now = ctx.now();
    w.accumulator.reconfigure(cfg.batch_size, cfg.linger, now);
    w.cfg = cfg;
    kick_sender(w, ctx, now);
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use netsim::NetCondition;

    fn quick_spec(n: u64) -> RunSpec {
        RunSpec {
            source: SourceSpec::fixed_rate(n, 200, 500.0),
            ..RunSpec::default()
        }
    }

    #[test]
    fn clean_network_delivers_everything_exactly_once() {
        let outcome = KafkaRun::new(quick_spec(2_000), 1).execute();
        let r = &outcome.report;
        assert_eq!(r.n_source, 2_000);
        assert_eq!(r.lost, 0, "loss reasons: {:?}", r.loss_reasons);
        assert_eq!(r.duplicated, 0);
        assert_eq!(r.delivered_once, 2_000);
        assert_eq!(outcome.producer.connection_resets, 0);
    }

    #[test]
    fn conservation_invariant_holds() {
        for seed in 0..3 {
            let mut spec = quick_spec(500);
            spec.network =
                ConditionTimeline::constant(NetCondition::new(SimDuration::from_millis(100), 0.15));
            let outcome = KafkaRun::new(spec, seed).execute();
            let r = &outcome.report;
            assert_eq!(
                r.delivered_once + r.lost + r.duplicated,
                r.n_source,
                "every message resolves exactly once"
            );
            let case_total: u64 = r.case_counts.iter().sum();
            assert_eq!(case_total, r.n_source);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut spec = quick_spec(800);
            spec.network =
                ConditionTimeline::constant(NetCondition::new(SimDuration::from_millis(50), 0.10));
            KafkaRun::new(spec, seed).execute()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.report, b.report);
        assert_eq!(a.events_fired, b.events_fired);
        let c = run(8);
        // A different seed should (almost surely) change something.
        assert!(
            a.events_fired != c.events_fired || a.report != c.report,
            "different seeds should differ"
        );
    }

    #[test]
    fn at_most_once_loses_under_heavy_loss() {
        let mut spec = quick_spec(1_000);
        spec.producer = ProducerConfig::builder()
            .semantics(DeliverySemantics::AtMostOnce)
            .message_timeout(SimDuration::from_millis(2_000))
            .build()
            .unwrap();
        spec.network =
            ConditionTimeline::constant(NetCondition::new(SimDuration::from_millis(100), 0.30));
        let outcome = KafkaRun::new(spec, 3).execute();
        assert!(
            outcome.report.p_loss() > 0.05,
            "30% packet loss must hurt at-most-once: P_l = {}",
            outcome.report.p_loss()
        );
        assert_eq!(outcome.report.duplicated, 0, "AMO can never duplicate");
    }

    #[test]
    fn at_least_once_beats_at_most_once_under_loss() {
        let run = |semantics| {
            let mut spec = quick_spec(1_000);
            spec.producer = ProducerConfig::builder()
                .semantics(semantics)
                .message_timeout(SimDuration::from_millis(4_000))
                .build()
                .unwrap();
            spec.network =
                ConditionTimeline::constant(NetCondition::new(SimDuration::from_millis(100), 0.20));
            KafkaRun::new(spec, 4).execute().report.p_loss()
        };
        let amo = run(DeliverySemantics::AtMostOnce);
        let alo = run(DeliverySemantics::AtLeastOnce);
        assert!(
            alo < amo,
            "retries should save messages: ALO {alo} vs AMO {amo}"
        );
    }

    #[test]
    fn duplicates_only_under_at_least_once() {
        let mut spec = quick_spec(2_000);
        spec.producer = ProducerConfig::builder()
            .semantics(DeliverySemantics::AtLeastOnce)
            .request_timeout(SimDuration::from_millis(400))
            .message_timeout(SimDuration::from_millis(5_000))
            .build()
            .unwrap();
        spec.network =
            ConditionTimeline::constant(NetCondition::new(SimDuration::from_millis(150), 0.25));
        let outcome = KafkaRun::new(spec, 5).execute();
        // With aggressive request timeouts and heavy loss some acks are
        // missed after the append happened → Case 5.
        assert!(
            outcome.report.duplicated > 0,
            "expected duplicates, got report {:?}",
            outcome.report.case_counts
        );
    }

    #[test]
    fn overload_expires_messages_via_timeout() {
        let mut spec = RunSpec {
            source: SourceSpec::full_load(3_000, 200),
            ..RunSpec::default()
        };
        spec.producer = ProducerConfig::builder()
            .message_timeout(SimDuration::from_millis(300))
            .build()
            .unwrap();
        let outcome = KafkaRun::new(spec, 6).execute();
        assert!(
            outcome.report.p_loss() > 0.01,
            "full load with a 300ms timeout must expire messages: {}",
            outcome.report.p_loss()
        );
        assert!(outcome
            .report
            .loss_reasons
            .keys()
            .any(|r| matches!(r, LossReason::ExpiredInBuffer | LossReason::ConnectionReset)));
    }

    #[test]
    fn batching_reduces_requests() {
        let run = |batch: usize| {
            let mut spec = quick_spec(1_000);
            spec.producer = ProducerConfig::builder().batch_size(batch).build().unwrap();
            KafkaRun::new(spec, 7).execute().producer.requests_sent
        };
        let single = run(1);
        let batched = run(8);
        assert!(
            batched * 4 < single,
            "8-batches need far fewer requests: {batched} vs {single}"
        );
    }

    #[test]
    fn dynamic_config_changes_apply_mid_run() {
        let mut spec = RunSpec {
            source: SourceSpec::fixed_rate(2_000, 200, 200.0),
            ..RunSpec::default()
        };
        let late_cfg = ProducerConfig::builder().batch_size(10).build().unwrap();
        spec.config_schedule = vec![(SimTime::from_secs(5), late_cfg)];
        let outcome = KafkaRun::new(spec, 8).execute();
        assert_eq!(outcome.report.lost, 0);
        // 2000 msgs at 200/s = 10s; second half batched by 10 → far fewer
        // requests than 2000.
        assert!(
            outcome.producer.requests_sent < 1_600,
            "requests: {}",
            outcome.producer.requests_sent
        );
    }

    #[test]
    fn broker_outage_loses_messages_without_failover() {
        let mut spec = RunSpec {
            source: SourceSpec::fixed_rate(2_000, 200, 100.0), // 20s of traffic
            ..RunSpec::default()
        };
        spec.producer = ProducerConfig::builder()
            .message_timeout(SimDuration::from_millis(1_000))
            .build()
            .unwrap();
        spec.outages = vec![BrokerOutage {
            broker: crate::broker::BrokerId(0),
            from: SimTime::from_secs(5),
            until: SimTime::from_secs(15),
        }];
        let outcome = KafkaRun::new(spec, 11).execute();
        // Broker 0 leads 1 of 3 partitions; ~10s of its traffic expires.
        let r = &outcome.report;
        assert!(
            r.p_loss() > 0.10,
            "a 10s outage must cost about a partition's share: {}",
            r.p_loss()
        );
        assert_eq!(r.delivered_once + r.lost + r.duplicated, r.n_source);
    }

    #[test]
    fn failover_rescues_most_of_an_outage() {
        let base = |failover| {
            let mut spec = RunSpec {
                source: SourceSpec::fixed_rate(2_000, 200, 100.0),
                ..RunSpec::default()
            };
            spec.producer = ProducerConfig::builder()
                .message_timeout(SimDuration::from_millis(1_000))
                .build()
                .unwrap();
            spec.outages = vec![BrokerOutage {
                broker: crate::broker::BrokerId(0),
                from: SimTime::from_secs(5),
                until: SimTime::from_secs(15),
            }];
            spec.failover_after = failover;
            KafkaRun::new(spec, 11).execute().report.p_loss()
        };
        let without = base(None);
        let with = base(Some(SimDuration::from_millis(500)));
        assert!(
            with < without / 2.0,
            "failover must rescue most of the outage window: {with} vs {without}"
        );
    }

    #[test]
    fn outage_validation_rejects_nonsense() {
        let spec = RunSpec {
            outages: vec![BrokerOutage {
                broker: crate::broker::BrokerId(0),
                from: SimTime::from_secs(5),
                until: SimTime::from_secs(5),
            }],
            ..RunSpec::default()
        };
        assert!(spec.validate().is_err());
        let spec = RunSpec {
            outages: vec![BrokerOutage {
                broker: crate::broker::BrokerId(9),
                from: SimTime::ZERO,
                until: SimTime::from_secs(1),
            }],
            ..RunSpec::default()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn online_controller_observes_and_reconfigures() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        struct Batcher {
            windows: AtomicU64,
        }
        impl OnlineController for Batcher {
            fn decide(
                &self,
                stats: &WindowStats,
                current: &ProducerConfig,
            ) -> Option<ProducerConfig> {
                self.windows.fetch_add(1, Ordering::Relaxed);
                // Requests flowed, so the window stats are live.
                if stats.requests_sent > 0 && current.batch_size == 1 {
                    let mut cfg = current.clone();
                    cfg.batch_size = 8;
                    return Some(cfg);
                }
                None
            }
        }

        let controller = Arc::new(Batcher {
            windows: AtomicU64::new(0),
        });
        let mut spec = RunSpec {
            source: SourceSpec::fixed_rate(3_000, 200, 150.0), // 20s of traffic
            ..RunSpec::default()
        };
        spec.online = Some(OnlineSpec {
            interval: SimDuration::from_secs(2),
            controller: controller.clone(),
        });
        let outcome = KafkaRun::new(spec, 21).execute();
        assert!(controller.windows.load(Ordering::Relaxed) >= 5);
        assert_eq!(outcome.producer.online_reconfigurations, 1);
        // Batching kicked in after ~2s: far fewer requests than messages.
        assert!(
            outcome.producer.requests_sent < 1_500,
            "requests: {}",
            outcome.producer.requests_sent
        );
        assert_eq!(outcome.report.lost, 0);
    }

    #[test]
    fn online_interval_must_be_positive() {
        use std::sync::Arc;
        struct Noop;
        impl OnlineController for Noop {
            fn decide(&self, _: &WindowStats, _: &ProducerConfig) -> Option<ProducerConfig> {
                None
            }
        }
        let spec = RunSpec {
            online: Some(OnlineSpec {
                interval: SimDuration::ZERO,
                controller: Arc::new(Noop),
            }),
            ..RunSpec::default()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn hard_horizon_bounds_the_run() {
        let mut spec = quick_spec(100);
        spec.network =
            ConditionTimeline::constant(NetCondition::new(SimDuration::from_millis(100), 0.95));
        spec.max_duration = SimDuration::from_secs(30);
        let outcome = KafkaRun::new(spec, 9).execute();
        // The run finishes (does not hang) and every message resolves.
        let r = &outcome.report;
        assert_eq!(r.delivered_once + r.lost + r.duplicated, r.n_source);
        assert!(r.lost > 0, "a 95%-loss network must lose messages");
    }

    #[test]
    fn multi_partition_spreads_over_brokers() {
        let mut spec = quick_spec(900);
        spec.cluster = ClusterSpec {
            brokers: 3,
            partitions: 3,
            ..ClusterSpec::default()
        };
        let outcome = KafkaRun::new(spec, 10).execute();
        assert_eq!(outcome.report.lost, 0);
        assert_eq!(outcome.tcp.len(), 3);
        assert!(outcome.links.iter().all(|l| l.delivered > 0));
    }
}
