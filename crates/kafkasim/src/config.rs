//! Producer configuration: the paper's tunable features.
//!
//! The prediction model's configuration features (§III-D) are the delivery
//! semantics, the batch size `B`, the polling interval `δ` and the message
//! timeout `T_o`. This module also exposes the secondary knobs a real
//! producer has (request timeout, in-flight limit, retries `τ_r`, linger,
//! buffer capacity) plus the CPU/I-O cost model of the producer host, which
//! the paper holds fixed ("we assume that the hardware resources for a
//! producer are fixed").

use desim::SimDuration;
use serde::{Deserialize, Serialize};

/// Delivery semantics of the producer (the paper's feature (e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliverySemantics {
    /// `acks=0`: fire-and-forget; each message is sent once and no broker
    /// response is expected. Only Case 1 and Case 2 can occur.
    AtMostOnce,
    /// `acks=1`: the broker acknowledges each produce request; the producer
    /// retries unacknowledged requests until `τ_r` or `T_o` is exhausted.
    AtLeastOnce,
    /// `acks=all`: the leader withholds the acknowledgement until every
    /// in-sync replica has fetched the records, so a clean leader failover
    /// can never lose an acknowledged message. Retry behaviour matches
    /// at-least-once; with a replication factor of 1 it degenerates to
    /// `acks=1`. (Beyond the paper, which studies `acks={0,1}` only.)
    All,
}

impl core::fmt::Display for DeliverySemantics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeliverySemantics::AtMostOnce => write!(f, "at-most-once"),
            DeliverySemantics::AtLeastOnce => write!(f, "at-least-once"),
            DeliverySemantics::All => write!(f, "acks-all"),
        }
    }
}

/// Fixed hardware cost model of the producer host.
///
/// The paper fixes the producer's physical resources and varies only
/// configuration and network; these constants are the simulation's stand-in
/// for that fixed machine. They are calibrated once (see
/// `testbed::calibration`) and then frozen for every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostModel {
    /// CPU time to serialise one message, excluding payload bytes.
    pub cpu_per_message: SimDuration,
    /// CPU time per payload byte serialised.
    pub cpu_per_byte_ns: f64,
    /// Fixed per-request CPU overhead (framing, compression bookkeeping).
    pub cpu_per_request: SimDuration,
    /// If `true`, service times are exponentially distributed around their
    /// mean (models CPU contention/GC jitter in a containerised producer);
    /// if `false`, they are deterministic.
    pub jittered_service: bool,
    /// I/O time to fetch one message from the upstream source, excluding
    /// payload bytes. Bounds the full-load polling rate.
    pub io_per_message: SimDuration,
    /// Upstream I/O throughput in bytes/second; with `io_per_message` this
    /// bounds the full-load (δ = 0) arrival rate `λ_max(M)`.
    pub io_bytes_per_sec: f64,
}

impl Default for HostModel {
    fn default() -> Self {
        HostModel {
            cpu_per_message: SimDuration::from_micros(300),
            cpu_per_byte_ns: 60.0,
            cpu_per_request: SimDuration::from_micros(400),
            jittered_service: true,
            io_per_message: SimDuration::from_micros(200),
            io_bytes_per_sec: 1_000_000.0,
        }
    }
}

impl HostModel {
    /// Mean CPU time to serialise a batch of `count` messages totalling
    /// `payload_bytes`.
    #[must_use]
    pub fn service_time(&self, count: usize, payload_bytes: u64) -> SimDuration {
        self.cpu_per_request
            + self.cpu_per_message * count as u64
            + SimDuration::from_secs_f64(self.cpu_per_byte_ns * 1e-9 * payload_bytes as f64)
    }

    /// Time to fetch one message of `payload_bytes` from the source at full
    /// speed.
    #[must_use]
    pub fn fetch_time(&self, payload_bytes: u64) -> SimDuration {
        self.io_per_message
            + SimDuration::from_secs_f64(payload_bytes as f64 / self.io_bytes_per_sec)
    }
}

/// Full producer configuration.
///
/// Build with [`ProducerConfig::builder`]; [`ProducerConfigBuilder::build`]
/// validates the combination.
///
/// # Example
///
/// ```
/// use kafkasim::config::{DeliverySemantics, ProducerConfig};
/// use desim::SimDuration;
///
/// let config = ProducerConfig::builder()
///     .semantics(DeliverySemantics::AtLeastOnce)
///     .batch_size(4)
///     .message_timeout(SimDuration::from_millis(1500))
///     .poll_interval(SimDuration::from_millis(10))
///     .build()?;
/// assert_eq!(config.batch_size, 4);
/// # Ok::<(), kafkasim::config::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProducerConfig {
    /// Delivery semantics (paper feature (e)).
    pub semantics: DeliverySemantics,
    /// Messages per batch, `B ≥ 1` (paper feature (f)).
    pub batch_size: usize,
    /// Polling interval `δ` between source fetches; `ZERO` = full load
    /// (paper feature (g)).
    pub poll_interval: SimDuration,
    /// Message timeout `T_o`: the maximum time a producer may spend on one
    /// message, including retries (paper feature (h)).
    pub message_timeout: SimDuration,
    /// How long an open batch may wait for more messages before being sent
    /// anyway (Kafka's `linger.ms`).
    pub linger: SimDuration,
    /// Maximum Kafka-level retries `τ_r` per batch (at-least-once only).
    pub max_retries: u32,
    /// Response timeout per produce request (at-least-once only); an
    /// unanswered request fails the connection and triggers retries.
    pub request_timeout: SimDuration,
    /// Maximum unacknowledged produce requests in flight per connection
    /// (at-least-once only).
    pub max_in_flight: usize,
    /// Accumulator capacity in messages (Kafka's `buffer.memory`); overflow
    /// drops new messages.
    pub buffer_capacity: usize,
    /// Consecutive RTO backoffs after which a connection is declared dead
    /// and reset (at-most-once's silent-loss mechanism).
    pub stall_backoffs: u32,
    /// Maximum time without transport progress before a fire-and-forget
    /// connection is recycled (the client-side analogue of
    /// `TCP_USER_TIMEOUT`; at-least-once uses the request timeout instead).
    pub stall_patience: SimDuration,
    /// Host cost model (fixed hardware).
    pub host: HostModel,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        ProducerConfig {
            semantics: DeliverySemantics::AtLeastOnce,
            batch_size: 1,
            poll_interval: SimDuration::ZERO,
            message_timeout: SimDuration::from_millis(3_000),
            linger: SimDuration::from_millis(200),
            max_retries: 5,
            request_timeout: SimDuration::from_millis(1_000),
            max_in_flight: 5,
            buffer_capacity: 500_000,
            stall_backoffs: 3,
            stall_patience: SimDuration::from_millis(1_500),
            host: HostModel::default(),
        }
    }
}

impl ProducerConfig {
    /// Starts building a configuration from the defaults.
    #[must_use]
    pub fn builder() -> ProducerConfigBuilder {
        ProducerConfigBuilder {
            config: ProducerConfig::default(),
        }
    }

    /// Validates an already-built configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if self.message_timeout.is_zero() {
            return Err(ConfigError::ZeroMessageTimeout);
        }
        if self.max_in_flight == 0 {
            return Err(ConfigError::ZeroInFlight);
        }
        if self.buffer_capacity < self.batch_size {
            return Err(ConfigError::BufferSmallerThanBatch);
        }
        if self.request_timeout.is_zero() {
            return Err(ConfigError::ZeroRequestTimeout);
        }
        if self.stall_backoffs == 0 {
            return Err(ConfigError::ZeroStallBackoffs);
        }
        if self.stall_patience.is_zero() {
            return Err(ConfigError::ZeroStallPatience);
        }
        Ok(())
    }
}

/// Validation error for [`ProducerConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `batch_size` must be at least 1.
    ZeroBatchSize,
    /// `message_timeout` must be positive.
    ZeroMessageTimeout,
    /// `max_in_flight` must be at least 1.
    ZeroInFlight,
    /// `buffer_capacity` must hold at least one batch.
    BufferSmallerThanBatch,
    /// `request_timeout` must be positive.
    ZeroRequestTimeout,
    /// `stall_backoffs` must be at least 1.
    ZeroStallBackoffs,
    /// `stall_patience` must be positive.
    ZeroStallPatience,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::ZeroBatchSize => write!(f, "batch_size must be at least 1"),
            ConfigError::ZeroMessageTimeout => write!(f, "message_timeout must be positive"),
            ConfigError::ZeroInFlight => write!(f, "max_in_flight must be at least 1"),
            ConfigError::BufferSmallerThanBatch => {
                write!(f, "buffer_capacity must hold at least one batch")
            }
            ConfigError::ZeroRequestTimeout => write!(f, "request_timeout must be positive"),
            ConfigError::ZeroStallBackoffs => write!(f, "stall_backoffs must be at least 1"),
            ConfigError::ZeroStallPatience => write!(f, "stall_patience must be positive"),
        }
    }
}

impl ConfigError {
    /// The name of the [`ProducerConfig`] field the error is about.
    ///
    /// Spec-layer validation uses this to anchor the message at a full
    /// field path (`experiment.Sweep.base.batch_size`), keeping producer
    /// and spec errors consistent.
    #[must_use]
    pub fn field(&self) -> &'static str {
        match self {
            ConfigError::ZeroBatchSize => "batch_size",
            ConfigError::ZeroMessageTimeout => "message_timeout",
            ConfigError::ZeroInFlight => "max_in_flight",
            ConfigError::BufferSmallerThanBatch => "buffer_capacity",
            ConfigError::ZeroRequestTimeout => "request_timeout",
            ConfigError::ZeroStallBackoffs => "stall_backoffs",
            ConfigError::ZeroStallPatience => "stall_patience",
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`ProducerConfig`].
#[derive(Debug, Clone)]
pub struct ProducerConfigBuilder {
    config: ProducerConfig,
}

impl ProducerConfigBuilder {
    /// Sets the delivery semantics.
    #[must_use]
    pub fn semantics(mut self, semantics: DeliverySemantics) -> Self {
        self.config.semantics = semantics;
        self
    }

    /// Sets the batch size `B`.
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// Sets the polling interval `δ` (`ZERO` = full load).
    #[must_use]
    pub fn poll_interval(mut self, poll_interval: SimDuration) -> Self {
        self.config.poll_interval = poll_interval;
        self
    }

    /// Sets the message timeout `T_o`.
    #[must_use]
    pub fn message_timeout(mut self, message_timeout: SimDuration) -> Self {
        self.config.message_timeout = message_timeout;
        self
    }

    /// Sets the batch linger time.
    #[must_use]
    pub fn linger(mut self, linger: SimDuration) -> Self {
        self.config.linger = linger;
        self
    }

    /// Sets the retry budget `τ_r`.
    #[must_use]
    pub fn max_retries(mut self, max_retries: u32) -> Self {
        self.config.max_retries = max_retries;
        self
    }

    /// Sets the per-request response timeout.
    #[must_use]
    pub fn request_timeout(mut self, request_timeout: SimDuration) -> Self {
        self.config.request_timeout = request_timeout;
        self
    }

    /// Sets the in-flight request limit.
    #[must_use]
    pub fn max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.config.max_in_flight = max_in_flight;
        self
    }

    /// Sets the accumulator capacity in messages.
    #[must_use]
    pub fn buffer_capacity(mut self, buffer_capacity: usize) -> Self {
        self.config.buffer_capacity = buffer_capacity;
        self
    }

    /// Sets the stall threshold in consecutive RTO backoffs.
    #[must_use]
    pub fn stall_backoffs(mut self, stall_backoffs: u32) -> Self {
        self.config.stall_backoffs = stall_backoffs;
        self
    }

    /// Sets the no-progress patience before recycling a connection.
    #[must_use]
    pub fn stall_patience(mut self, stall_patience: SimDuration) -> Self {
        self.config.stall_patience = stall_patience;
        self
    }

    /// Sets the host cost model.
    #[must_use]
    pub fn host(mut self, host: HostModel) -> Self {
        self.config.host = host;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`ProducerConfig::validate`].
    pub fn build(self) -> Result<ProducerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ProducerConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_sets_fields() {
        let c = ProducerConfig::builder()
            .semantics(DeliverySemantics::AtMostOnce)
            .batch_size(10)
            .poll_interval(SimDuration::from_millis(90))
            .message_timeout(SimDuration::from_millis(500))
            .max_retries(7)
            .max_in_flight(2)
            .build()
            .unwrap();
        assert_eq!(c.semantics, DeliverySemantics::AtMostOnce);
        assert_eq!(c.batch_size, 10);
        assert_eq!(c.poll_interval, SimDuration::from_millis(90));
        assert_eq!(c.message_timeout, SimDuration::from_millis(500));
        assert_eq!(c.max_retries, 7);
        assert_eq!(c.max_in_flight, 2);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert_eq!(
            ProducerConfig::builder().batch_size(0).build().unwrap_err(),
            ConfigError::ZeroBatchSize
        );
        assert_eq!(
            ProducerConfig::builder()
                .message_timeout(SimDuration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroMessageTimeout
        );
        assert_eq!(
            ProducerConfig::builder()
                .max_in_flight(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroInFlight
        );
        assert_eq!(
            ProducerConfig::builder()
                .buffer_capacity(2)
                .batch_size(5)
                .build()
                .unwrap_err(),
            ConfigError::BufferSmallerThanBatch
        );
        assert_eq!(
            ProducerConfig::builder()
                .request_timeout(SimDuration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroRequestTimeout
        );
        assert_eq!(
            ProducerConfig::builder()
                .stall_backoffs(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroStallBackoffs
        );
    }

    #[test]
    fn service_time_scales_with_batch() {
        let host = HostModel::default();
        let one = host.service_time(1, 100);
        let ten = host.service_time(10, 1000);
        assert!(ten > one);
        // Per-request overhead is amortised: 10 messages in one request cost
        // less than 10 single-message requests.
        let ten_singles = SimDuration::from_micros(one.as_micros() * 10);
        assert!(ten < ten_singles);
    }

    #[test]
    fn fetch_time_is_byte_bound_for_large_messages() {
        let host = HostModel::default();
        let small = host.fetch_time(50);
        let large = host.fetch_time(5_000);
        assert!(large > small * 4);
    }

    #[test]
    fn semantics_display() {
        assert_eq!(DeliverySemantics::AtMostOnce.to_string(), "at-most-once");
        assert_eq!(DeliverySemantics::AtLeastOnce.to_string(), "at-least-once");
        assert_eq!(DeliverySemantics::All.to_string(), "acks-all");
    }

    #[test]
    fn serde_round_trip() {
        let c = ProducerConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: ProducerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
