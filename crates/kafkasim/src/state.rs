//! The paper's message state machine (Fig. 2) and delivery cases (Table I).
//!
//! A message starts *Ready to be sent* and moves through the transitions
//!
//! | # | Transition |
//! |---|---|
//! | I | Ready → Delivered (successful initial send) |
//! | II | Ready → Lost (initial send fails) |
//! | III | Lost → Lost (a retry fails; repeated `τ_r` times) |
//! | IV | Lost → Delivered (a retry succeeds) |
//! | V | Delivered → Lost *from the producer's view* (ack missing) |
//! | VI | Lost → Duplicated (retry of an already-persisted message) |
//!
//! and ends in one of Table I's five cases. Only Case 1 and Case 4 are
//! successful deliveries; the paper's metrics are
//! `P_l = P(Case2 ∪ Case3)` and `P_d = P(Case5)`.

use serde::{Deserialize, Serialize};

/// A state in the Fig. 2 diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageState {
    /// Initial state: buffered at the producer, not yet on the wire.
    Ready,
    /// Persisted on a broker.
    Delivered,
    /// Not persisted (or, mid-protocol, believed unpersisted by the
    /// producer).
    Lost,
    /// Persisted more than once due to duplicated retries.
    Duplicated,
}

/// A transition in the Fig. 2 diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transition {
    /// Ready → Delivered: successful initial send.
    I,
    /// Ready → Lost: failed initial send.
    II,
    /// Lost → Lost: failed retry.
    III,
    /// Lost → Delivered: successful retry.
    IV,
    /// Delivered → Lost (producer's view): persisted but unacknowledged.
    V,
    /// Lost → Duplicated: retry duplicates a persisted message.
    VI,
}

/// The five terminal delivery cases of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliveryCase {
    /// `I` — delivered on the first attempt.
    Case1,
    /// `II` — lost on the first attempt, never retried.
    Case2,
    /// `II → τ_r·III` — still lost after exhausting retries.
    Case3,
    /// `II → τ_r·III → IV` — eventually delivered by a retry.
    Case4,
    /// `II → τ_r·III → IV → V → τ_d·VI` — delivered but duplicated.
    Case5,
}

impl DeliveryCase {
    /// `true` for the cases the paper counts as successful deliveries.
    #[must_use]
    pub fn is_success(self) -> bool {
        matches!(self, DeliveryCase::Case1 | DeliveryCase::Case4)
    }

    /// `true` for the cases contributing to `P_l`.
    #[must_use]
    pub fn is_loss(self) -> bool {
        matches!(self, DeliveryCase::Case2 | DeliveryCase::Case3)
    }

    /// `true` for the case contributing to `P_d`.
    #[must_use]
    pub fn is_duplicate(self) -> bool {
        self == DeliveryCase::Case5
    }

    /// Classifies a finished message from its observable outcome.
    ///
    /// * `attempts` — Kafka-level send attempts (0 means the message expired
    ///   before ever reaching the wire; the paper folds this into Case 2
    ///   because the initial sending failed).
    /// * `copies` — how many copies the audit found in the topic.
    #[must_use]
    pub fn classify(attempts: u32, copies: u64) -> DeliveryCase {
        match copies {
            0 => {
                if attempts <= 1 {
                    DeliveryCase::Case2
                } else {
                    DeliveryCase::Case3
                }
            }
            1 => {
                if attempts <= 1 {
                    DeliveryCase::Case1
                } else {
                    DeliveryCase::Case4
                }
            }
            _ => DeliveryCase::Case5,
        }
    }

    /// Branch-free form of [`DeliveryCase::classify`], returning
    /// [`DeliveryCase::index`] directly.
    ///
    /// Used by the audit hot loop so per-message outcome accounting is a
    /// table lookup instead of a nested match; pinned equal to `classify`
    /// by a unit test.
    #[must_use]
    pub fn classify_index(attempts: u32, copies: u64) -> usize {
        // Rows: copies 0 / 1 / 2+; columns: attempts ≤ 1 / > 1.
        const CASE: [[usize; 2]; 3] = [
            [1, 2], // copies 0 → Case2 / Case3
            [0, 3], // copies 1 → Case1 / Case4
            [4, 4], // copies 2+ → Case5
        ];
        CASE[copies.min(2) as usize][usize::from(attempts > 1)]
    }

    /// All five cases in order.
    #[must_use]
    pub fn all() -> [DeliveryCase; 5] {
        [
            DeliveryCase::Case1,
            DeliveryCase::Case2,
            DeliveryCase::Case3,
            DeliveryCase::Case4,
            DeliveryCase::Case5,
        ]
    }

    /// Index 0..5, for counting arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            DeliveryCase::Case1 => 0,
            DeliveryCase::Case2 => 1,
            DeliveryCase::Case3 => 2,
            DeliveryCase::Case4 => 3,
            DeliveryCase::Case5 => 4,
        }
    }
}

impl core::fmt::Display for DeliveryCase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Case{}", self.index() + 1)
    }
}

/// Error returned by [`StateMachine::apply`] for an illegal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidTransition {
    /// The state the machine was in.
    pub from: MessageState,
    /// The transition that was attempted.
    pub transition: Transition,
}

impl core::fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "transition {:?} is not legal from state {:?}",
            self.transition, self.from
        )
    }
}

impl std::error::Error for InvalidTransition {}

/// An executable copy of the Fig. 2 state machine.
///
/// Mostly used by tests and the audit to prove that every simulated
/// delivery corresponds to a legal transition sequence.
///
/// # Example
///
/// ```
/// use kafkasim::state::{StateMachine, Transition, MessageState, DeliveryCase};
///
/// let mut sm = StateMachine::new();
/// sm.apply(Transition::II).unwrap();
/// sm.apply(Transition::III).unwrap();
/// sm.apply(Transition::IV).unwrap();
/// assert_eq!(sm.state(), MessageState::Delivered);
/// assert_eq!(sm.case(), Some(DeliveryCase::Case4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMachine {
    state: MessageState,
    history: Vec<Transition>,
}

impl Default for StateMachine {
    fn default() -> Self {
        StateMachine::new()
    }
}

impl StateMachine {
    /// A machine in the initial *Ready* state.
    #[must_use]
    pub fn new() -> Self {
        StateMachine {
            state: MessageState::Ready,
            history: Vec::new(),
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> MessageState {
        self.state
    }

    /// The transitions applied so far.
    #[must_use]
    pub fn history(&self) -> &[Transition] {
        &self.history
    }

    /// Applies a transition.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTransition`] when the transition is not legal in the
    /// current state per Fig. 2.
    pub fn apply(&mut self, t: Transition) -> Result<MessageState, InvalidTransition> {
        use MessageState::*;
        use Transition::*;
        let next = match (self.state, t) {
            (Ready, I) => Delivered,
            (Ready, II) => Lost,
            (Lost, III) => Lost,
            (Lost, IV) => Delivered,
            (Delivered, V) => Lost,
            (Lost, VI) => Duplicated,
            // Additional duplicated retries stay in Duplicated.
            (Duplicated, VI) => Duplicated,
            (from, transition) => return Err(InvalidTransition { from, transition }),
        };
        self.state = next;
        self.history.push(t);
        Ok(next)
    }

    /// The Table I case this history corresponds to, if terminal.
    ///
    /// Returns `None` while the machine is still in `Ready`, or when the
    /// history does not match any of the five enumerated case patterns
    /// (e.g. a message currently "Lost" mid-retry that could still recover).
    #[must_use]
    pub fn case(&self) -> Option<DeliveryCase> {
        use Transition::*;
        let h = &self.history;
        if h.is_empty() {
            return None;
        }
        if h == &[I] {
            return Some(DeliveryCase::Case1);
        }
        if h[0] != II {
            return None;
        }
        // Skip the III repetitions.
        let mut i = 1;
        while i < h.len() && h[i] == III {
            i += 1;
        }
        match &h[i..] {
            [] => Some(if i == 1 {
                DeliveryCase::Case2
            } else {
                DeliveryCase::Case3
            }),
            [IV] => Some(DeliveryCase::Case4),
            [IV, V, rest @ ..] if !rest.is_empty() && rest.iter().all(|t| *t == VI) => {
                Some(DeliveryCase::Case5)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn case1_is_single_successful_send() {
        let mut sm = StateMachine::new();
        sm.apply(Transition::I).unwrap();
        assert_eq!(sm.state(), MessageState::Delivered);
        assert_eq!(sm.case(), Some(DeliveryCase::Case1));
    }

    #[test]
    fn case2_is_unretried_failure() {
        let mut sm = StateMachine::new();
        sm.apply(Transition::II).unwrap();
        assert_eq!(sm.case(), Some(DeliveryCase::Case2));
    }

    #[test]
    fn case3_is_retry_exhaustion() {
        let mut sm = StateMachine::new();
        sm.apply(Transition::II).unwrap();
        for _ in 0..5 {
            sm.apply(Transition::III).unwrap();
        }
        assert_eq!(sm.state(), MessageState::Lost);
        assert_eq!(sm.case(), Some(DeliveryCase::Case3));
    }

    #[test]
    fn case4_recovers_via_retry() {
        let mut sm = StateMachine::new();
        sm.apply(Transition::II).unwrap();
        sm.apply(Transition::III).unwrap();
        sm.apply(Transition::IV).unwrap();
        assert_eq!(sm.case(), Some(DeliveryCase::Case4));
    }

    #[test]
    fn case5_duplicates_after_missing_ack() {
        let mut sm = StateMachine::new();
        for t in [
            Transition::II,
            Transition::III,
            Transition::IV,
            Transition::V,
            Transition::VI,
            Transition::VI,
        ] {
            sm.apply(t).unwrap();
        }
        assert_eq!(sm.state(), MessageState::Duplicated);
        assert_eq!(sm.case(), Some(DeliveryCase::Case5));
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut sm = StateMachine::new();
        let err = sm.apply(Transition::III).unwrap_err();
        assert_eq!(err.from, MessageState::Ready);
        sm.apply(Transition::I).unwrap();
        assert!(sm.apply(Transition::I).is_err());
        assert!(sm.apply(Transition::II).is_err());
    }

    #[test]
    fn classify_matches_table() {
        assert_eq!(DeliveryCase::classify(1, 1), DeliveryCase::Case1);
        assert_eq!(DeliveryCase::classify(0, 0), DeliveryCase::Case2);
        assert_eq!(DeliveryCase::classify(1, 0), DeliveryCase::Case2);
        assert_eq!(DeliveryCase::classify(4, 0), DeliveryCase::Case3);
        assert_eq!(DeliveryCase::classify(3, 1), DeliveryCase::Case4);
        assert_eq!(DeliveryCase::classify(2, 2), DeliveryCase::Case5);
        assert_eq!(DeliveryCase::classify(1, 3), DeliveryCase::Case5);
    }

    #[test]
    fn classify_index_matches_classify() {
        for attempts in 0..6u32 {
            for copies in 0..6u64 {
                assert_eq!(
                    DeliveryCase::classify_index(attempts, copies),
                    DeliveryCase::classify(attempts, copies).index(),
                    "attempts={attempts} copies={copies}"
                );
            }
        }
    }

    #[test]
    fn success_loss_duplicate_partition() {
        for case in DeliveryCase::all() {
            let flags = [case.is_success(), case.is_loss(), case.is_duplicate()];
            assert_eq!(
                flags.iter().filter(|f| **f).count(),
                1,
                "{case} must belong to exactly one bucket"
            );
        }
    }

    #[test]
    fn display_and_index_agree() {
        for (i, case) in DeliveryCase::all().into_iter().enumerate() {
            assert_eq!(case.index(), i);
            assert_eq!(case.to_string(), format!("Case{}", i + 1));
        }
    }

    proptest! {
        /// Every legal transition sequence that ends the message's life
        /// classifies into exactly one Table I case, and classification by
        /// (attempts, copies) agrees with the history-based classification.
        #[test]
        fn histories_classify_consistently(retries in 0u32..8, recovered in proptest::bool::ANY, dups in 0u32..3) {
            let mut sm = StateMachine::new();
            let mut attempts = 1u32;
            if retries == 0 && recovered {
                sm.apply(Transition::I).unwrap();
            } else {
                sm.apply(Transition::II).unwrap();
                for _ in 0..retries {
                    sm.apply(Transition::III).unwrap();
                    attempts += 1;
                }
                if recovered {
                    sm.apply(Transition::IV).unwrap();
                    attempts += 1;
                    if dups > 0 {
                        sm.apply(Transition::V).unwrap();
                        for _ in 0..dups {
                            sm.apply(Transition::VI).unwrap();
                            attempts += 1;
                        }
                    }
                }
            }
            let case = sm.case().expect("terminal history");
            let copies = match sm.state() {
                MessageState::Delivered => 1,
                MessageState::Duplicated => 1 + u64::from(dups),
                MessageState::Lost => 0,
                MessageState::Ready => unreachable!(),
            };
            prop_assert_eq!(DeliveryCase::classify(attempts, copies), case);
        }
    }
}
