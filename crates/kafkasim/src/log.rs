//! Append-only partition logs.
//!
//! Messages under one topic are physically stored in multiple partitions;
//! each partition is an ordered, offset-addressed, append-only log. Without
//! idempotent producers (the paper studies plain at-most-once and
//! at-least-once), a retried batch whose original was already persisted is
//! appended *again* — that is exactly how duplicates (Case 5) materialise.
//!
//! The log is stored struct-of-arrays: one dense column per record field,
//! with the offset implicit in the index. The audit's read-back pass streams
//! each column sequentially (keys, then timestamps) instead of striding over
//! padded per-record structs, and a produce request's records append as one
//! bulk column extension ([`PartitionLog::append_batch`]) rather than `n`
//! scalar pushes.

use desim::SimTime;
use serde::{Deserialize, Serialize};

use crate::broker::ProduceRecord;
use crate::message::MessageKey;

/// One record as stored in a partition (a row view over the log columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredRecord {
    /// Offset within the partition.
    pub offset: u64,
    /// The producer-assigned unique key.
    pub key: MessageKey,
    /// Payload size in bytes.
    pub payload_bytes: u64,
    /// When the record was created at the producer.
    pub created_at: SimTime,
    /// When the broker appended it.
    pub appended_at: SimTime,
}

impl StoredRecord {
    /// End-to-end delivery latency of this copy.
    #[must_use]
    pub fn latency(&self) -> desim::SimDuration {
        self.appended_at.saturating_since(self.created_at)
    }
}

/// An append-only partition log.
///
/// # Example
///
/// ```
/// use kafkasim::log::PartitionLog;
/// use kafkasim::message::MessageKey;
/// use desim::SimTime;
///
/// let mut log = PartitionLog::new(0);
/// let offset = log.append(MessageKey(9), 200, SimTime::ZERO, SimTime::from_millis(3));
/// assert_eq!(offset, 0);
/// assert_eq!(log.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionLog {
    partition: u32,
    keys: Vec<MessageKey>,
    payload_bytes: Vec<u64>,
    created_at: Vec<SimTime>,
    appended_at: Vec<SimTime>,
}

impl PartitionLog {
    /// Creates an empty log for partition `partition`.
    #[must_use]
    pub fn new(partition: u32) -> Self {
        PartitionLog {
            partition,
            keys: Vec::new(),
            payload_bytes: Vec::new(),
            created_at: Vec::new(),
            appended_at: Vec::new(),
        }
    }

    /// The partition id.
    #[must_use]
    pub fn partition(&self) -> u32 {
        self.partition
    }

    /// Appends a record, returning its offset.
    pub fn append(
        &mut self,
        key: MessageKey,
        payload_bytes: u64,
        created_at: SimTime,
        appended_at: SimTime,
    ) -> u64 {
        let offset = self.keys.len() as u64;
        self.keys.push(key);
        self.payload_bytes.push(payload_bytes);
        self.created_at.push(created_at);
        self.appended_at.push(appended_at);
        offset
    }

    /// Appends every record of a produce request in one bulk column
    /// extension, returning the batch's base offset.
    ///
    /// Equivalent to `n` calls to [`PartitionLog::append`] in request order
    /// (`accept(n) ≡ n × accept(1)`, pinned by tests): same stored rows,
    /// same offsets — one branch and four `extend`s instead of `4n` pushes.
    pub fn append_batch(&mut self, records: &[ProduceRecord], appended_at: SimTime) -> u64 {
        let base = self.keys.len() as u64;
        self.keys.extend(records.iter().map(|r| r.key));
        self.payload_bytes
            .extend(records.iter().map(|r| r.payload_bytes));
        self.created_at.extend(records.iter().map(|r| r.created_at));
        self.appended_at
            .extend(std::iter::repeat_n(appended_at, records.len()));
        base
    }

    /// Number of records (the log-end offset).
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no records are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Materialises the row at `offset`.
    fn row(&self, offset: usize) -> StoredRecord {
        StoredRecord {
            offset: offset as u64,
            key: self.keys[offset],
            payload_bytes: self.payload_bytes[offset],
            created_at: self.created_at[offset],
            appended_at: self.appended_at[offset],
        }
    }

    /// The record at `offset`, if present.
    #[must_use]
    pub fn get(&self, offset: u64) -> Option<StoredRecord> {
        if (offset as usize) < self.keys.len() {
            Some(self.row(offset as usize))
        } else {
            None
        }
    }

    /// Iterates over records from a starting offset (a consumer fetch).
    pub fn fetch_from(&self, offset: u64) -> impl Iterator<Item = StoredRecord> + '_ {
        (offset as usize..self.keys.len()).map(|i| self.row(i))
    }

    /// Iterates over all records in offset order.
    pub fn iter(&self) -> impl Iterator<Item = StoredRecord> + '_ {
        self.fetch_from(0)
    }

    /// Record keys in offset order.
    #[must_use]
    pub fn keys(&self) -> &[MessageKey] {
        &self.keys
    }

    /// Producer creation timestamps in offset order.
    #[must_use]
    pub fn created_col(&self) -> &[SimTime] {
        &self.created_at
    }

    /// Broker append timestamps in offset order.
    #[must_use]
    pub fn appended_col(&self) -> &[SimTime] {
        &self.appended_at
    }

    /// Truncates the log to `offset` records (an unclean leader election
    /// rewinding to the new leader's log-end offset), returning the removed
    /// suffix in offset order.
    pub fn truncate_to(&mut self, offset: u64) -> Vec<StoredRecord> {
        let offset = offset as usize;
        if offset >= self.keys.len() {
            return Vec::new();
        }
        let removed = (offset..self.keys.len()).map(|i| self.row(i)).collect();
        self.keys.truncate(offset);
        self.payload_bytes.truncate(offset);
        self.created_at.truncate(offset);
        self.appended_at.truncate(offset);
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    #[test]
    fn offsets_are_dense_and_ordered() {
        let mut log = PartitionLog::new(3);
        for i in 0..10 {
            let off = log.append(MessageKey(i), 100, SimTime::ZERO, SimTime::from_millis(i));
            assert_eq!(off, i);
        }
        assert_eq!(log.partition(), 3);
        assert_eq!(log.len(), 10);
        let offsets: Vec<u64> = log.iter().map(|r| r.offset).collect();
        assert_eq!(offsets, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_keys_are_appended_not_deduplicated() {
        let mut log = PartitionLog::new(0);
        log.append(MessageKey(7), 10, SimTime::ZERO, SimTime::from_millis(1));
        log.append(MessageKey(7), 10, SimTime::ZERO, SimTime::from_millis(2));
        assert_eq!(log.len(), 2, "no idempotence: the duplicate is stored");
    }

    #[test]
    fn fetch_from_skips_consumed_prefix() {
        let mut log = PartitionLog::new(0);
        for i in 0..5 {
            log.append(MessageKey(i), 10, SimTime::ZERO, SimTime::ZERO);
        }
        let tail: Vec<u64> = log.fetch_from(3).map(|r| r.key.0).collect();
        assert_eq!(tail, vec![3, 4]);
    }

    #[test]
    fn append_batch_equals_scalar_appends() {
        let records: Vec<ProduceRecord> = (0..7)
            .map(|i| ProduceRecord {
                key: MessageKey(i),
                payload_bytes: 10 * i,
                created_at: SimTime::from_millis(i),
            })
            .collect();
        let now = SimTime::from_millis(40);
        let mut bulk = PartitionLog::new(2);
        let mut scalar = PartitionLog::new(2);
        // Pre-populate so base offsets are non-trivial.
        bulk.append(MessageKey(99), 1, SimTime::ZERO, SimTime::ZERO);
        scalar.append(MessageKey(99), 1, SimTime::ZERO, SimTime::ZERO);
        let base = bulk.append_batch(&records, now);
        let mut scalar_base = None;
        for r in &records {
            let off = scalar.append(r.key, r.payload_bytes, r.created_at, now);
            scalar_base.get_or_insert(off);
        }
        assert_eq!(Some(base), scalar_base);
        assert_eq!(bulk, scalar, "accept(n) must equal n × accept(1)");
        assert_eq!(bulk.append_batch(&[], now), 8, "empty batch is a no-op");
        assert_eq!(bulk.len(), 8);
    }

    #[test]
    fn truncate_returns_the_removed_suffix() {
        let mut log = PartitionLog::new(0);
        for i in 0..5 {
            log.append(MessageKey(i), 10, SimTime::ZERO, SimTime::ZERO);
        }
        let removed = log.truncate_to(3);
        assert_eq!(log.len(), 3);
        let keys: Vec<u64> = removed.iter().map(|r| r.key.0).collect();
        assert_eq!(keys, vec![3, 4]);
        assert!(log.truncate_to(10).is_empty(), "no-op past the end");
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn latency_is_append_minus_create() {
        let mut log = PartitionLog::new(0);
        log.append(
            MessageKey(0),
            10,
            SimTime::from_millis(5),
            SimTime::from_millis(25),
        );
        assert_eq!(log.get(0).unwrap().latency(), SimDuration::from_millis(20));
    }
}
