//! Append-only partition logs.
//!
//! Messages under one topic are physically stored in multiple partitions;
//! each partition is an ordered, offset-addressed, append-only log. Without
//! idempotent producers (the paper studies plain at-most-once and
//! at-least-once), a retried batch whose original was already persisted is
//! appended *again* — that is exactly how duplicates (Case 5) materialise.

use desim::SimTime;
use serde::{Deserialize, Serialize};

use crate::message::MessageKey;

/// One record as stored in a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredRecord {
    /// Offset within the partition.
    pub offset: u64,
    /// The producer-assigned unique key.
    pub key: MessageKey,
    /// Payload size in bytes.
    pub payload_bytes: u64,
    /// When the record was created at the producer.
    pub created_at: SimTime,
    /// When the broker appended it.
    pub appended_at: SimTime,
}

impl StoredRecord {
    /// End-to-end delivery latency of this copy.
    #[must_use]
    pub fn latency(&self) -> desim::SimDuration {
        self.appended_at.saturating_since(self.created_at)
    }
}

/// An append-only partition log.
///
/// # Example
///
/// ```
/// use kafkasim::log::PartitionLog;
/// use kafkasim::message::MessageKey;
/// use desim::SimTime;
///
/// let mut log = PartitionLog::new(0);
/// let offset = log.append(MessageKey(9), 200, SimTime::ZERO, SimTime::from_millis(3));
/// assert_eq!(offset, 0);
/// assert_eq!(log.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionLog {
    partition: u32,
    records: Vec<StoredRecord>,
}

impl PartitionLog {
    /// Creates an empty log for partition `partition`.
    #[must_use]
    pub fn new(partition: u32) -> Self {
        PartitionLog {
            partition,
            records: Vec::new(),
        }
    }

    /// The partition id.
    #[must_use]
    pub fn partition(&self) -> u32 {
        self.partition
    }

    /// Appends a record, returning its offset.
    pub fn append(
        &mut self,
        key: MessageKey,
        payload_bytes: u64,
        created_at: SimTime,
        appended_at: SimTime,
    ) -> u64 {
        let offset = self.records.len() as u64;
        self.records.push(StoredRecord {
            offset,
            key,
            payload_bytes,
            created_at,
            appended_at,
        });
        offset
    }

    /// Number of records (the log-end offset).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record at `offset`, if present.
    #[must_use]
    pub fn get(&self, offset: u64) -> Option<&StoredRecord> {
        self.records.get(offset as usize)
    }

    /// Iterates over records from a starting offset (a consumer fetch).
    pub fn fetch_from(&self, offset: u64) -> impl Iterator<Item = &StoredRecord> {
        self.records.iter().skip(offset as usize)
    }

    /// Iterates over all records in offset order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredRecord> {
        self.records.iter()
    }

    /// Truncates the log to `offset` records (an unclean leader election
    /// rewinding to the new leader's log-end offset), returning the removed
    /// suffix in offset order.
    pub fn truncate_to(&mut self, offset: u64) -> Vec<StoredRecord> {
        if offset as usize >= self.records.len() {
            return Vec::new();
        }
        self.records.split_off(offset as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    #[test]
    fn offsets_are_dense_and_ordered() {
        let mut log = PartitionLog::new(3);
        for i in 0..10 {
            let off = log.append(MessageKey(i), 100, SimTime::ZERO, SimTime::from_millis(i));
            assert_eq!(off, i);
        }
        assert_eq!(log.partition(), 3);
        assert_eq!(log.len(), 10);
        let offsets: Vec<u64> = log.iter().map(|r| r.offset).collect();
        assert_eq!(offsets, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_keys_are_appended_not_deduplicated() {
        let mut log = PartitionLog::new(0);
        log.append(MessageKey(7), 10, SimTime::ZERO, SimTime::from_millis(1));
        log.append(MessageKey(7), 10, SimTime::ZERO, SimTime::from_millis(2));
        assert_eq!(log.len(), 2, "no idempotence: the duplicate is stored");
    }

    #[test]
    fn fetch_from_skips_consumed_prefix() {
        let mut log = PartitionLog::new(0);
        for i in 0..5 {
            log.append(MessageKey(i), 10, SimTime::ZERO, SimTime::ZERO);
        }
        let tail: Vec<u64> = log.fetch_from(3).map(|r| r.key.0).collect();
        assert_eq!(tail, vec![3, 4]);
    }

    #[test]
    fn truncate_returns_the_removed_suffix() {
        let mut log = PartitionLog::new(0);
        for i in 0..5 {
            log.append(MessageKey(i), 10, SimTime::ZERO, SimTime::ZERO);
        }
        let removed = log.truncate_to(3);
        assert_eq!(log.len(), 3);
        let keys: Vec<u64> = removed.iter().map(|r| r.key.0).collect();
        assert_eq!(keys, vec![3, 4]);
        assert!(log.truncate_to(10).is_empty(), "no-op past the end");
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn latency_is_append_minus_create() {
        let mut log = PartitionLog::new(0);
        log.append(
            MessageKey(0),
            10,
            SimTime::from_millis(5),
            SimTime::from_millis(25),
        );
        assert_eq!(log.get(0).unwrap().latency(), SimDuration::from_millis(20));
    }
}
