//! `kafkasim` — a discrete-event simulated Apache Kafka.
//!
//! The paper ("Learning to Reliably Deliver Streaming Data with Apache
//! Kafka", DSN 2020) measures two reliability metrics of a Kafka producer —
//! the probability of message loss `P_l` and of message duplication `P_d` —
//! on a Docker testbed. This crate replaces the Docker testbed with a
//! protocol-level simulation that exercises exactly the message state
//! machine the paper analyses (its Fig. 2 / Table I):
//!
//! * a **producer** ([`producer`]) with the paper's configurable features:
//!   delivery semantics (`acks=0` at-most-once, `acks=1` at-least-once,
//!   and — beyond the paper — `acks=all`), batch size `B`, polling
//!   interval `δ`, message timeout `T_o`, retries `τ_r`, plus request
//!   timeouts and in-flight limits;
//! * **brokers** ([`broker`]) with per-partition append-only logs
//!   ([`log`]), organised into a [`cluster`] with intra-cluster
//!   **replication**: follower fetch rounds, an in-sync replica set with
//!   `replica.lag.time.max` eviction, and clean vs unclean leader
//!   elections ([`cluster::ReplicationSpec`]);
//! * a **consumer + audit** ([`consumer`], [`audit`]) that replays the
//!   paper's methodology: compare the unique keys of the source stream with
//!   the keys found in the topic, count `N_l` and `N_d`, and classify every
//!   message into one of Table I's five delivery cases;
//! * a **runtime** ([`runtime`]) that wires producer, brokers and
//!   [`netsim::DuplexChannel`]s into one deterministic event loop, with
//!   NetEm-style fault injection from a [`netsim::ConditionTimeline`],
//!   broker crash/restart/flapping injection ([`runtime::BrokerFault`])
//!   and support for mid-run configuration changes (the paper's §V
//!   dynamic configuration);
//! * **observability** — the runtime is instrumented with [`obs`]
//!   lifecycle trace events ([`runtime::KafkaRun::execute_traced`]), and
//!   [`explain`] cross-checks a reconstructed trace against the audit so
//!   every lost or duplicated message has a concrete traced cause;
//! * a **fleet layer** ([`fleet`]) that scales from one producer to
//!   populations of thousands: weighted stream-class mixes, pluggable
//!   partitioners (round-robin / key-hash / locality), consumer groups
//!   with join/leave churn and range/sticky rebalancing, and per-tenant
//!   loss/duplication ledgers that sum exactly to the fleet totals.
//!
//! # Example
//!
//! ```
//! use kafkasim::config::{DeliverySemantics, ProducerConfig};
//! use kafkasim::runtime::{KafkaRun, RunSpec};
//! use kafkasim::source::SourceSpec;
//!
//! let spec = RunSpec {
//!     producer: ProducerConfig::builder()
//!         .semantics(DeliverySemantics::AtLeastOnce)
//!         .batch_size(4)
//!         .build()
//!         .unwrap(),
//!     source: SourceSpec::fixed_rate(1_000, 200, 500.0),
//!     ..RunSpec::default()
//! };
//! let outcome = KafkaRun::new(spec, 42).execute();
//! assert_eq!(outcome.report.n_source, 1_000);
//! assert!(outcome.report.p_loss() < 0.05, "clean network loses almost nothing");
//! ```
//!
//! # Example: replication rides out a broker crash
//!
//! With a replication factor above one, `acks=all` holds producer acks
//! until every in-sync replica has the records, so a crash of the leader
//! followed by a *clean* election (a fully-caught-up ISR member takes
//! over) loses nothing:
//!
//! ```
//! use desim::{SimDuration, SimTime};
//! use kafkasim::broker::BrokerId;
//! use kafkasim::config::{DeliverySemantics, ProducerConfig};
//! use kafkasim::runtime::{BrokerFault, KafkaRun, RunSpec};
//! use kafkasim::source::SourceSpec;
//!
//! let mut spec = RunSpec {
//!     source: SourceSpec::fixed_rate(500, 200, 100.0),
//!     ..RunSpec::default()
//! };
//! spec.cluster.partitions = 1;
//! spec.cluster.replication.factor = 3;
//! spec.producer = ProducerConfig::builder()
//!     .semantics(DeliverySemantics::All)
//!     .max_in_flight(64)
//!     .build()
//!     .unwrap();
//! spec.faults = vec![BrokerFault::crash(
//!     BrokerId(0),
//!     SimTime::from_secs(2),
//!     SimDuration::from_secs(2),
//! )];
//! spec.failover_after = Some(SimDuration::from_millis(500));
//!
//! let outcome = KafkaRun::new(spec, 7).execute();
//! assert_eq!(outcome.brokers.clean_elections, 1);
//! assert_eq!(outcome.report.lost, 0, "acks=all + clean election loses nothing");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod broker;
pub mod cluster;
pub mod config;
pub mod consumer;
pub mod explain;
pub mod fleet;
pub mod log;
pub mod message;
pub mod producer;
pub mod runtime;
pub mod source;
pub mod state;
pub mod wire;

pub use audit::{DeliveryReport, LossReason};
pub use config::{ConfigError, DeliverySemantics, ProducerConfig};
pub use explain::{crosscheck, TraceAudit};
pub use fleet::{FleetConfig, FleetOutcome, FleetRun};
pub use runtime::{KafkaRun, RunArena, RunOutcome, RunSpec};
pub use source::SourceSpec;
pub use state::{DeliveryCase, MessageState};
