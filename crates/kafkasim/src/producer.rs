//! Producer-side bookkeeping: the record accumulator, batches, the
//! in-flight request table and the message ledger.
//!
//! These types are pure state machines (no events, no I/O) so their
//! behaviour — batching by count `B`, linger flushes, `T_o` expiry, retry
//! accounting — can be unit-tested in isolation; [`crate::runtime`] drives
//! them from the event loop.

use std::collections::{BTreeSet, VecDeque};

use desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::audit::LossReason;
use crate::broker::ProduceRecord;
use crate::message::{Message, MessageKey};
use desim::fasthash::FastMap;

/// A batch of messages bound for one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingBatch {
    /// Batch identifier (unique per run).
    pub id: u64,
    /// Destination partition.
    pub partition: u32,
    /// The batched messages.
    pub messages: Vec<Message>,
    /// Kafka-level send attempts so far.
    pub attempts: u32,
}

impl PendingBatch {
    /// The earliest message deadline — the batch must complete by then.
    #[must_use]
    pub fn deadline(&self) -> SimTime {
        self.messages
            .iter()
            .map(|m| m.deadline)
            .min()
            .unwrap_or(SimTime::MAX)
    }

    /// Total payload bytes.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.payload_bytes).sum()
    }

    /// Drops expired messages, returning them.
    pub fn drop_expired(&mut self, now: SimTime) -> Vec<Message> {
        let mut expired = Vec::new();
        self.drop_expired_into(now, &mut expired);
        expired
    }

    /// Drops expired messages in place, appending them to `expired`.
    ///
    /// The allocation-free form of [`PendingBatch::drop_expired`]: survivors
    /// keep their order and the expired messages are appended to `expired`
    /// in their original order.
    pub fn drop_expired_into(&mut self, now: SimTime, expired: &mut Vec<Message>) {
        self.messages.retain(|m| {
            if m.is_expired(now) {
                expired.push(*m);
                false
            } else {
                true
            }
        });
    }

    /// The records a broker stores for this batch.
    #[must_use]
    pub fn to_records(&self) -> Vec<ProduceRecord> {
        let mut records = Vec::new();
        self.to_records_into(&mut records);
        records
    }

    /// Writes the batch's broker records into `out` (cleared first), so a
    /// caller can reuse one buffer across requests.
    pub fn to_records_into(&self, out: &mut Vec<ProduceRecord>) {
        out.clear();
        out.extend(self.messages.iter().map(|m| ProduceRecord {
            key: m.key,
            payload_bytes: m.payload_bytes,
            created_at: m.created_at,
        }));
    }
}

#[derive(Debug, Clone)]
struct OpenBatch {
    messages: Vec<Message>,
    opened_at: SimTime,
}

/// The record accumulator: per-partition open batches plus a FIFO of ready
/// batches awaiting the sender.
///
/// # Example
///
/// ```
/// use kafkasim::producer::Accumulator;
/// use kafkasim::message::{Message, MessageKey};
/// use desim::{SimDuration, SimTime};
///
/// let mut acc = Accumulator::new(2, SimDuration::from_millis(5), 100, 1);
/// let msg = |k| Message::new(MessageKey(k), 100, SimTime::ZERO, SimDuration::from_secs(1));
/// acc.push(msg(0), 0, SimTime::ZERO).unwrap();
/// assert!(acc.pop_ready(SimTime::ZERO).is_none(), "batch of 2 not yet full");
/// acc.push(msg(1), 0, SimTime::ZERO).unwrap();
/// let batch = acc.pop_ready(SimTime::ZERO).expect("full batch");
/// assert_eq!(batch.messages.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Accumulator {
    batch_size: usize,
    linger: SimDuration,
    capacity: usize,
    open: Vec<Option<OpenBatch>>,
    ready: VecDeque<PendingBatch>,
    buffered: usize,
    next_batch_id: u64,
    overflowed: u64,
    /// Retired message buffers, reused for new open batches so the steady
    /// state allocates nothing per batch.
    pool: Vec<Vec<Message>>,
    /// Conservative lower bound on every buffered message's deadline: no
    /// buffered message expires strictly before it (`SimTime::MAX` when
    /// nothing is buffered). Pops may leave it stale — too early — which
    /// costs at most a wasted sweep, never a missed expiry. Lets
    /// [`Accumulator::expire_all`] skip its full scan in the common case
    /// where nothing can have timed out yet.
    earliest_deadline: SimTime,
}

/// Most message buffers the accumulator keeps around for reuse.
const POOL_LIMIT: usize = 256;

impl Accumulator {
    /// Creates an accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size`, `capacity` or `partitions` is zero.
    #[must_use]
    pub fn new(batch_size: usize, linger: SimDuration, capacity: usize, partitions: u32) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(capacity > 0, "capacity must be positive");
        assert!(partitions > 0, "need at least one partition");
        Accumulator {
            batch_size,
            linger,
            capacity,
            open: vec![None; partitions as usize],
            ready: VecDeque::new(),
            buffered: 0,
            next_batch_id: 0,
            overflowed: 0,
            pool: Vec::new(),
            earliest_deadline: SimTime::MAX,
        }
    }

    /// Returns a retired message buffer to the pool (cleared).
    fn pool_buf(&mut self, mut buf: Vec<Message>) {
        if self.pool.len() < POOL_LIMIT {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// Returns a dead batch's message buffer to the allocation pool so a
    /// future open batch can reuse it. Call this wherever a batch's life
    /// ends (acknowledged, given up, or lost); dropping the batch instead
    /// is harmless but wastes the buffer.
    pub fn recycle(&mut self, batch: PendingBatch) {
        self.pool_buf(batch.messages);
    }

    /// Seeds the buffer pool (e.g. from a previous run's arena).
    pub(crate) fn adopt_pool(&mut self, pool: Vec<Vec<Message>>) {
        self.pool = pool;
    }

    /// Takes the buffer pool out, for reuse by a later run.
    pub(crate) fn take_pool(&mut self) -> Vec<Vec<Message>> {
        std::mem::take(&mut self.pool)
    }

    /// Buffered messages (open + ready).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffered
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buffered == 0
    }

    /// Messages rejected because the accumulator was full.
    #[must_use]
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Ready (full or lingered-out) batches waiting for the sender.
    #[must_use]
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Applies a new batch size / linger (dynamic reconfiguration §V).
    ///
    /// Open batches are sealed under the old configuration.
    pub fn reconfigure(&mut self, batch_size: usize, linger: SimDuration, now: SimTime) {
        assert!(batch_size > 0, "batch_size must be positive");
        // Seal open batches so the new size applies cleanly.
        for p in 0..self.open.len() {
            self.seal(p, now);
        }
        self.batch_size = batch_size;
        self.linger = linger;
    }

    /// Adds a message to `partition`'s open batch.
    ///
    /// # Errors
    ///
    /// Hands the message back when the accumulator is at capacity
    /// (`buffer.memory` exhausted).
    pub fn push(&mut self, message: Message, partition: u32, now: SimTime) -> Result<(), Message> {
        if self.buffered >= self.capacity {
            self.overflowed += 1;
            return Err(message);
        }
        let batch_size = self.batch_size;
        let pool = &mut self.pool;
        let slot = &mut self.open[partition as usize];
        if slot.is_none() {
            *slot = Some(OpenBatch {
                messages: pool.pop().unwrap_or_else(|| Vec::with_capacity(batch_size)),
                opened_at: now,
            });
        }
        let open = slot.as_mut().expect("slot was just filled");
        self.earliest_deadline = self.earliest_deadline.min(message.deadline);
        open.messages.push(message);
        self.buffered += 1;
        if open.messages.len() >= self.batch_size {
            self.seal(partition as usize, now);
        }
        Ok(())
    }

    fn seal(&mut self, partition: usize, _now: SimTime) {
        if let Some(open) = self.open[partition].take() {
            if open.messages.is_empty() {
                self.pool_buf(open.messages);
                return;
            }
            let id = self.next_batch_id;
            self.next_batch_id += 1;
            self.ready.push_back(PendingBatch {
                id,
                partition: partition as u32,
                messages: open.messages,
                attempts: 0,
            });
        }
    }

    /// Seals open batches that have lingered past their deadline.
    pub fn flush_due(&mut self, now: SimTime) {
        for p in 0..self.open.len() {
            let due = self.open[p]
                .as_ref()
                .is_some_and(|o| now.saturating_since(o.opened_at) >= self.linger);
            if due {
                self.seal(p, now);
            }
        }
    }

    /// The earliest instant at which an open batch lingers out, if any.
    #[must_use]
    pub fn next_linger_deadline(&self) -> Option<SimTime> {
        self.open
            .iter()
            .flatten()
            .map(|o| o.opened_at + self.linger)
            .min()
    }

    /// Takes the next ready batch, discarding expired messages from it.
    ///
    /// Expired messages are returned via `expired`; empty husks are skipped.
    pub fn pop_ready_with_expiry(
        &mut self,
        now: SimTime,
        expired: &mut Vec<Message>,
    ) -> Option<PendingBatch> {
        while let Some(mut batch) = self.ready.pop_front() {
            let before = expired.len();
            batch.drop_expired_into(now, expired);
            self.buffered -= expired.len() - before;
            if batch.messages.is_empty() {
                self.pool_buf(batch.messages);
                continue;
            }
            self.buffered -= batch.messages.len();
            return Some(batch);
        }
        None
    }

    /// Convenience wrapper over [`Accumulator::pop_ready_with_expiry`] that
    /// drops the expired list (tests, examples).
    pub fn pop_ready(&mut self, now: SimTime) -> Option<PendingBatch> {
        let mut sink = Vec::new();
        self.pop_ready_with_expiry(now, &mut sink)
    }

    /// Requeues a batch at the front (retry path).
    pub fn requeue_front(&mut self, batch: PendingBatch) {
        self.earliest_deadline = self.earliest_deadline.min(batch.deadline());
        self.buffered += batch.messages.len();
        self.ready.push_front(batch);
    }

    /// Removes every expired message anywhere in the accumulator.
    ///
    /// Returns the expired messages; used by housekeeping so that `T_o`
    /// fires even when the sender is blocked.
    pub fn expire_all(&mut self, now: SimTime) -> Vec<Message> {
        if now < self.earliest_deadline {
            // Every buffered message's deadline is at or past the
            // watermark, so nothing can have expired yet.
            return Vec::new();
        }
        let mut expired = Vec::new();
        let mut emptied: Vec<Vec<Message>> = Vec::new();
        // Recompute the watermark exactly from the survivors as we sweep.
        let mut min_left = SimTime::MAX;
        for slot in &mut self.open {
            if let Some(open) = slot {
                let before = expired.len();
                open.messages.retain(|m| {
                    if m.is_expired(now) {
                        expired.push(*m);
                        false
                    } else {
                        min_left = min_left.min(m.deadline);
                        true
                    }
                });
                self.buffered -= expired.len() - before;
                if open.messages.is_empty() {
                    if let Some(open) = slot.take() {
                        emptied.push(open.messages);
                    }
                }
            }
        }
        let buffered = &mut self.buffered;
        self.ready.retain_mut(|batch| {
            let before = expired.len();
            batch.messages.retain(|m| {
                if m.is_expired(now) {
                    expired.push(*m);
                    false
                } else {
                    min_left = min_left.min(m.deadline);
                    true
                }
            });
            *buffered -= expired.len() - before;
            if batch.messages.is_empty() {
                emptied.push(std::mem::take(&mut batch.messages));
                false
            } else {
                true
            }
        });
        self.earliest_deadline = min_left;
        for buf in emptied {
            self.pool_buf(buf);
        }
        expired
    }
}

/// An in-flight produce request awaiting its broker response (`acks=1`).
#[derive(Debug, Clone)]
pub struct InFlightRequest {
    /// The batch the request carries.
    pub batch: PendingBatch,
    /// Connection index it was sent on.
    pub conn: usize,
    /// When it was written to the socket.
    pub sent_at: SimTime,
    /// When the response timeout fires.
    pub timeout_at: SimTime,
}

/// Table of in-flight requests keyed by request id.
#[derive(Debug, Clone, Default)]
pub struct InFlightTable {
    requests: FastMap<u64, InFlightRequest>,
    timeouts: BTreeSet<(SimTime, u64)>,
    per_conn: FastMap<usize, usize>,
}

impl InFlightTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        InFlightTable::default()
    }

    /// Number of requests in flight on `conn`.
    #[must_use]
    pub fn count(&self, conn: usize) -> usize {
        self.per_conn.get(&conn).copied().unwrap_or(0)
    }

    /// Total requests in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Inserts a request.
    ///
    /// # Panics
    ///
    /// Panics if the id is already present.
    pub fn insert(&mut self, id: u64, request: InFlightRequest) {
        self.timeouts.insert((request.timeout_at, id));
        *self.per_conn.entry(request.conn).or_insert(0) += 1;
        let prev = self.requests.insert(id, request);
        assert!(prev.is_none(), "duplicate request id");
    }

    /// Completes (acknowledges) a request, removing it.
    pub fn complete(&mut self, id: u64) -> Option<InFlightRequest> {
        let request = self.requests.remove(&id)?;
        self.timeouts.remove(&(request.timeout_at, id));
        if let Some(n) = self.per_conn.get_mut(&request.conn) {
            *n -= 1;
        }
        Some(request)
    }

    /// Removes every request on `conn` (connection failure path).
    ///
    /// Requests come back ordered by id (send order), so retry scheduling
    /// is deterministic.
    pub fn take_conn(&mut self, conn: usize) -> Vec<(u64, InFlightRequest)> {
        let mut ids: Vec<u64> = self
            .requests
            .iter()
            .filter(|(_, r)| r.conn == conn)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| {
                let r = self.complete(id).expect("listed id");
                (id, r)
            })
            .collect()
    }

    /// The earliest (timeout instant, request id), if any.
    #[must_use]
    pub fn next_timeout(&self) -> Option<(SimTime, u64)> {
        self.timeouts.iter().next().copied()
    }

    /// Whether `id` is still in flight.
    #[must_use]
    pub fn contains(&self, id: u64) -> bool {
        self.requests.contains_key(&id)
    }

    /// The connection `id` is in flight on, if any.
    #[must_use]
    pub fn conn_of(&self, id: u64) -> Option<usize> {
        self.requests.get(&id).map(|r| r.conn)
    }
}

/// Producer-side per-message accounting.
///
/// The ledger records the producer's *view* (attempts, loss reasons); the
/// final report combines it with the ground truth found in the broker logs.
///
/// Stored struct-of-arrays: three dense columns indexed by message key, so
/// the audit's counting pass streams sequentially over exactly the bytes it
/// needs (one `u32` + one `u8` per message) instead of striding over padded
/// per-message structs, and the loss column packs `Option<LossReason>` into
/// a single byte (0 = not lost, else [`LossReason::tag`]).
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    created: Vec<SimTime>,
    attempts: Vec<u32>,
    lost: Vec<u8>,
}

/// One message's producer-side record (a row view over the ledger columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// When the message entered the producer.
    pub created_at: SimTime,
    /// Kafka-level send attempts that included this message.
    pub attempts: u32,
    /// Loss reason, when the producer gave up on the message.
    pub lost: Option<LossReason>,
}

impl Ledger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Ledger::default()
    }

    /// An empty ledger reusing previously allocated columns (arena path).
    #[must_use]
    pub(crate) fn with_columns(cols: LedgerColumns) -> Self {
        let LedgerColumns {
            mut created,
            mut attempts,
            mut lost,
        } = cols;
        created.clear();
        attempts.clear();
        lost.clear();
        Ledger {
            created,
            attempts,
            lost,
        }
    }

    /// Takes the columns out for reuse by a later run.
    pub(crate) fn take_columns(&mut self) -> LedgerColumns {
        LedgerColumns {
            created: std::mem::take(&mut self.created),
            attempts: std::mem::take(&mut self.attempts),
            lost: std::mem::take(&mut self.lost),
        }
    }

    /// Registers a freshly created message; keys must arrive in order.
    pub fn register(&mut self, key: MessageKey, created_at: SimTime) {
        debug_assert_eq!(key.0 as usize, self.created.len(), "keys must be dense");
        self.created.push(created_at);
        self.attempts.push(0);
        self.lost.push(0);
    }

    /// Notes one more send attempt for `key`.
    pub fn note_attempt(&mut self, key: MessageKey) {
        if let Some(a) = self.attempts.get_mut(key.0 as usize) {
            *a += 1;
        }
    }

    /// Marks `key` lost for `reason` (first reason wins).
    pub fn mark_lost(&mut self, key: MessageKey, reason: LossReason) {
        if let Some(t) = self.lost.get_mut(key.0 as usize) {
            if *t == 0 {
                *t = reason.tag();
            }
        }
    }

    /// The entry for `key`, materialised from the columns.
    #[must_use]
    pub fn get(&self, key: MessageKey) -> Option<LedgerEntry> {
        let i = key.0 as usize;
        Some(LedgerEntry {
            created_at: *self.created.get(i)?,
            attempts: self.attempts[i],
            lost: LossReason::from_tag(self.lost[i]),
        })
    }

    /// Creation timestamps in key order.
    #[must_use]
    pub fn created_col(&self) -> &[SimTime] {
        &self.created
    }

    /// Send-attempt counts in key order.
    #[must_use]
    pub fn attempts_col(&self) -> &[u32] {
        &self.attempts
    }

    /// Loss tags in key order (0 = not lost, else [`LossReason::tag`]).
    #[must_use]
    pub fn lost_col(&self) -> &[u8] {
        &self.lost
    }

    /// Number of registered messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.created.len()
    }

    /// `true` when no messages were registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.created.is_empty()
    }
}

/// The ledger's raw columns, pooled across runs by `runtime::RunArena`.
#[derive(Debug, Default)]
pub(crate) struct LedgerColumns {
    created: Vec<SimTime>,
    attempts: Vec<u32>,
    lost: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(key: u64, created_ms: u64, timeout_ms: u64) -> Message {
        Message::new(
            MessageKey(key),
            100,
            SimTime::from_millis(created_ms),
            SimDuration::from_millis(timeout_ms),
        )
    }

    #[test]
    fn batches_fill_by_count() {
        let mut acc = Accumulator::new(3, SimDuration::from_secs(1), 100, 2);
        for k in 0..6 {
            acc.push(msg(k, 0, 10_000), (k % 2) as u32, SimTime::ZERO)
                .unwrap();
        }
        let a = acc.pop_ready(SimTime::ZERO).unwrap();
        let b = acc.pop_ready(SimTime::ZERO).unwrap();
        assert_eq!(a.messages.len(), 3);
        assert_eq!(b.messages.len(), 3);
        assert_ne!(a.partition, b.partition);
        assert!(acc.is_empty());
    }

    #[test]
    fn linger_flushes_partial_batches() {
        let mut acc = Accumulator::new(10, SimDuration::from_millis(5), 100, 1);
        acc.push(msg(0, 0, 10_000), 0, SimTime::ZERO).unwrap();
        assert!(acc.pop_ready(SimTime::ZERO).is_none());
        assert_eq!(acc.next_linger_deadline(), Some(SimTime::from_millis(5)));
        acc.flush_due(SimTime::from_millis(5));
        let batch = acc.pop_ready(SimTime::from_millis(5)).unwrap();
        assert_eq!(batch.messages.len(), 1);
        assert_eq!(acc.next_linger_deadline(), None);
    }

    #[test]
    fn capacity_overflow_rejects() {
        let mut acc = Accumulator::new(1, SimDuration::ZERO, 2, 1);
        acc.push(msg(0, 0, 10_000), 0, SimTime::ZERO).unwrap();
        acc.push(msg(1, 0, 10_000), 0, SimTime::ZERO).unwrap();
        let err = acc.push(msg(2, 0, 10_000), 0, SimTime::ZERO);
        assert!(err.is_err());
        assert_eq!(acc.overflowed(), 1);
    }

    #[test]
    fn pop_ready_drops_expired_messages() {
        let mut acc = Accumulator::new(2, SimDuration::ZERO, 100, 1);
        acc.push(msg(0, 0, 100), 0, SimTime::ZERO).unwrap();
        acc.push(msg(1, 0, 10_000), 0, SimTime::ZERO).unwrap();
        let mut expired = Vec::new();
        let batch = acc
            .pop_ready_with_expiry(SimTime::from_millis(200), &mut expired)
            .unwrap();
        assert_eq!(batch.messages.len(), 1);
        assert_eq!(batch.messages[0].key, MessageKey(1));
        assert_eq!(expired.len(), 1);
        assert!(acc.is_empty());
    }

    #[test]
    fn expire_all_sweeps_open_and_ready() {
        let mut acc = Accumulator::new(2, SimDuration::from_secs(10), 100, 2);
        acc.push(msg(0, 0, 100), 0, SimTime::ZERO).unwrap(); // open, p0
        acc.push(msg(1, 0, 100), 1, SimTime::ZERO).unwrap(); // open, p1
        acc.push(msg(2, 0, 100), 1, SimTime::ZERO).unwrap(); // seals p1
        let expired = acc.expire_all(SimTime::from_millis(500));
        assert_eq!(expired.len(), 3);
        assert!(acc.is_empty());
        assert!(acc.pop_ready(SimTime::from_millis(500)).is_none());
    }

    #[test]
    fn reconfigure_seals_and_applies_new_size() {
        let mut acc = Accumulator::new(5, SimDuration::from_secs(10), 100, 1);
        acc.push(msg(0, 0, 10_000), 0, SimTime::ZERO).unwrap();
        acc.reconfigure(1, SimDuration::ZERO, SimTime::from_millis(1));
        // The old partial batch was sealed.
        let sealed = acc.pop_ready(SimTime::from_millis(1)).unwrap();
        assert_eq!(sealed.messages.len(), 1);
        // New messages use the new batch size of 1.
        acc.push(msg(1, 1, 10_000), 0, SimTime::from_millis(1))
            .unwrap();
        assert!(acc.pop_ready(SimTime::from_millis(1)).is_some());
    }

    #[test]
    fn requeue_front_preserves_priority() {
        let mut acc = Accumulator::new(1, SimDuration::ZERO, 100, 1);
        acc.push(msg(0, 0, 10_000), 0, SimTime::ZERO).unwrap();
        acc.push(msg(1, 0, 10_000), 0, SimTime::ZERO).unwrap();
        let first = acc.pop_ready(SimTime::ZERO).unwrap();
        acc.requeue_front(first);
        let again = acc.pop_ready(SimTime::ZERO).unwrap();
        assert_eq!(again.messages[0].key, MessageKey(0));
    }

    #[test]
    fn batch_deadline_is_earliest_message() {
        let batch = PendingBatch {
            id: 0,
            partition: 0,
            messages: vec![msg(0, 0, 500), msg(1, 0, 100), msg(2, 0, 900)],
            attempts: 0,
        };
        assert_eq!(batch.deadline(), SimTime::from_millis(100));
        assert_eq!(batch.payload_bytes(), 300);
    }

    #[test]
    fn in_flight_table_tracks_counts_and_timeouts() {
        let mut t = InFlightTable::new();
        let batch = PendingBatch {
            id: 0,
            partition: 0,
            messages: vec![msg(0, 0, 1000)],
            attempts: 1,
        };
        t.insert(
            10,
            InFlightRequest {
                batch: batch.clone(),
                conn: 0,
                sent_at: SimTime::ZERO,
                timeout_at: SimTime::from_millis(100),
            },
        );
        t.insert(
            11,
            InFlightRequest {
                batch,
                conn: 0,
                sent_at: SimTime::ZERO,
                timeout_at: SimTime::from_millis(50),
            },
        );
        assert_eq!(t.count(0), 2);
        assert_eq!(t.next_timeout(), Some((SimTime::from_millis(50), 11)));
        let done = t.complete(11).unwrap();
        assert_eq!(done.timeout_at, SimTime::from_millis(50));
        assert_eq!(t.count(0), 1);
        assert_eq!(t.next_timeout(), Some((SimTime::from_millis(100), 10)));
        assert!(t.complete(11).is_none(), "double completion is None");
    }

    #[test]
    fn take_conn_clears_only_that_connection() {
        let mut t = InFlightTable::new();
        let batch = PendingBatch {
            id: 0,
            partition: 0,
            messages: vec![msg(0, 0, 1000)],
            attempts: 1,
        };
        for (id, conn) in [(1u64, 0usize), (2, 1), (3, 0)] {
            t.insert(
                id,
                InFlightRequest {
                    batch: batch.clone(),
                    conn,
                    sent_at: SimTime::ZERO,
                    timeout_at: SimTime::from_millis(id),
                },
            );
        }
        let taken = t.take_conn(0);
        assert_eq!(taken.len(), 2);
        assert_eq!(t.len(), 1);
        assert!(t.contains(2));
    }

    #[test]
    fn ledger_accumulates_attempts_and_first_loss() {
        let mut ledger = Ledger::new();
        ledger.register(MessageKey(0), SimTime::ZERO);
        ledger.note_attempt(MessageKey(0));
        ledger.note_attempt(MessageKey(0));
        ledger.mark_lost(MessageKey(0), LossReason::RetriesExhausted);
        ledger.mark_lost(MessageKey(0), LossReason::ConnectionReset);
        let e = ledger.get(MessageKey(0)).unwrap();
        assert_eq!(e.attempts, 2);
        assert_eq!(e.lost, Some(LossReason::RetriesExhausted));
    }
}
