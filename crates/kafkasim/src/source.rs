//! The upstream source the producer polls.
//!
//! The paper's producer *pulls* from upstream applications: the polling
//! interval `δ` is "the configurable time interval between a producer's
//! calls to acquire source data", so the arrival rate is `λ = 1/δ`; at full
//! load (`δ = 0`) the producer "acquires source data in the highest speed
//! that I/O devices can handle", which the host model bounds by message
//! size. Experiments feed a fixed number of uniquely-keyed messages
//! (`10⁶` in the paper, configurable here).

use desim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::config::HostModel;

/// Message-size model (`M`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeSpec {
    /// Every message has the same payload size.
    Fixed(u64),
    /// Uniformly distributed payload in `[low, high]`.
    Uniform {
        /// Smallest payload.
        low: u64,
        /// Largest payload.
        high: u64,
    },
}

impl SizeSpec {
    /// Samples one payload size.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match self {
            SizeSpec::Fixed(m) => *m,
            SizeSpec::Uniform { low, high } => rng.range_inclusive(*low, *high),
        }
    }

    /// The mean payload size.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match self {
            SizeSpec::Fixed(m) => *m as f64,
            SizeSpec::Uniform { low, high } => (*low + *high) as f64 / 2.0,
        }
    }
}

/// Arrival model: how fast the producer polls the source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateSpec {
    /// `δ = 0`: poll as fast as I/O allows (full load).
    FullLoad,
    /// Fixed polling interval `δ` (arrival rate `λ = 1/δ`), still bounded
    /// below by the I/O fetch time.
    Interval(SimDuration),
    /// Piecewise-constant arrival rate `λ(t)` in messages/second — the
    /// workload shape used by the Table II scenarios.
    Timeline(Vec<(SimTime, f64)>),
}

/// Full source description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceSpec {
    /// Number of messages to feed (the paper uses 10⁶ per experiment).
    pub n_messages: u64,
    /// Payload-size model.
    pub size: SizeSpec,
    /// Arrival model.
    pub rate: RateSpec,
    /// Message timeliness `S`: a delivered message older than this is
    /// *stale*. `None` disables staleness accounting.
    pub timeliness: Option<SimDuration>,
}

impl Default for SourceSpec {
    fn default() -> Self {
        SourceSpec {
            n_messages: 10_000,
            size: SizeSpec::Fixed(200),
            rate: RateSpec::FullLoad,
            timeliness: None,
        }
    }
}

impl SourceSpec {
    /// A source of `n` messages of `payload` bytes at a fixed rate in
    /// messages/second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive.
    #[must_use]
    pub fn fixed_rate(n: u64, payload: u64, rate_hz: f64) -> Self {
        assert!(rate_hz > 0.0, "rate must be positive");
        SourceSpec {
            n_messages: n,
            size: SizeSpec::Fixed(payload),
            rate: RateSpec::Interval(SimDuration::from_secs_f64(1.0 / rate_hz)),
            ..SourceSpec::default()
        }
    }

    /// A full-load source of `n` messages of `payload` bytes.
    #[must_use]
    pub fn full_load(n: u64, payload: u64) -> Self {
        SourceSpec {
            n_messages: n,
            size: SizeSpec::Fixed(payload),
            rate: RateSpec::FullLoad,
            ..SourceSpec::default()
        }
    }

    /// The gap until the next poll, given the payload just fetched.
    ///
    /// The I/O fetch time is always a lower bound: even a generous polling
    /// interval cannot fetch faster than the device.
    #[must_use]
    pub fn poll_gap(&self, now: SimTime, payload: u64, host: &HostModel) -> SimDuration {
        let fetch = host.fetch_time(payload);
        match &self.rate {
            RateSpec::FullLoad => fetch,
            RateSpec::Interval(delta) => fetch.max(*delta),
            RateSpec::Timeline(points) => {
                let rate = rate_at(points, now);
                if rate <= 0.0 {
                    // Idle period: re-check shortly.
                    SimDuration::from_millis(100)
                } else {
                    fetch.max(SimDuration::from_secs_f64(1.0 / rate))
                }
            }
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_messages == 0 {
            return Err("source must provide at least one message".into());
        }
        match self.size {
            SizeSpec::Fixed(0) => return Err("payload size must be positive".into()),
            SizeSpec::Uniform { low, high } if low == 0 || low > high => {
                return Err("uniform size range must be ordered and positive".into())
            }
            _ => {}
        }
        if let RateSpec::Timeline(points) = &self.rate {
            if points.is_empty() {
                return Err("rate timeline must not be empty".into());
            }
            if points[0].0 != SimTime::ZERO {
                return Err("rate timeline must start at time zero".into());
            }
            if points.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err("rate timeline must strictly increase in time".into());
            }
            if points.iter().any(|(_, r)| !r.is_finite() || *r < 0.0) {
                return Err("rates must be finite and non-negative".into());
            }
        }
        Ok(())
    }
}

fn rate_at(points: &[(SimTime, f64)], now: SimTime) -> f64 {
    match points.binary_search_by(|(t, _)| t.cmp(&now)) {
        Ok(i) => points[i].1,
        Err(0) => points[0].1,
        Err(i) => points[i - 1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_sets_interval() {
        let s = SourceSpec::fixed_rate(100, 200, 50.0);
        assert_eq!(s.n_messages, 100);
        let gap = s.poll_gap(SimTime::ZERO, 200, &HostModel::default());
        assert_eq!(gap, SimDuration::from_millis(20));
    }

    #[test]
    fn full_load_is_io_bound_and_size_dependent() {
        let host = HostModel::default();
        let s = SourceSpec::full_load(100, 200);
        let small = s.poll_gap(SimTime::ZERO, 100, &host);
        let large = s.poll_gap(SimTime::ZERO, 10_000, &host);
        assert!(large > small, "bigger messages take longer to fetch");
    }

    #[test]
    fn io_bounds_even_configured_intervals() {
        let host = HostModel::default();
        let s = SourceSpec {
            rate: RateSpec::Interval(SimDuration::from_micros(1)),
            ..SourceSpec::default()
        };
        let gap = s.poll_gap(SimTime::ZERO, 100_000, &host);
        assert!(gap > SimDuration::from_micros(1));
    }

    #[test]
    fn timeline_rate_switches() {
        let s = SourceSpec {
            rate: RateSpec::Timeline(vec![(SimTime::ZERO, 100.0), (SimTime::from_secs(10), 10.0)]),
            ..SourceSpec::default()
        };
        let host = HostModel::default();
        let early = s.poll_gap(SimTime::from_secs(1), 200, &host);
        let late = s.poll_gap(SimTime::from_secs(11), 200, &host);
        assert_eq!(early, SimDuration::from_millis(10));
        assert_eq!(late, SimDuration::from_millis(100));
    }

    #[test]
    fn zero_rate_period_backs_off() {
        let s = SourceSpec {
            rate: RateSpec::Timeline(vec![(SimTime::ZERO, 0.0)]),
            ..SourceSpec::default()
        };
        let gap = s.poll_gap(SimTime::ZERO, 200, &HostModel::default());
        assert_eq!(gap, SimDuration::from_millis(100));
    }

    #[test]
    fn size_sampling_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(1);
        let s = SizeSpec::Uniform { low: 50, high: 150 };
        for _ in 0..1000 {
            let m = s.sample(&mut rng);
            assert!((50..=150).contains(&m));
        }
        assert_eq!(s.mean(), 100.0);
        assert_eq!(SizeSpec::Fixed(42).sample(&mut rng), 42);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let s = SourceSpec {
            n_messages: 0,
            ..SourceSpec::default()
        };
        assert!(s.validate().is_err());
        let s = SourceSpec {
            size: SizeSpec::Fixed(0),
            ..SourceSpec::default()
        };
        assert!(s.validate().is_err());
        let s = SourceSpec {
            rate: RateSpec::Timeline(vec![]),
            ..SourceSpec::default()
        };
        assert!(s.validate().is_err());
        let s = SourceSpec {
            rate: RateSpec::Timeline(vec![(SimTime::from_secs(1), 5.0)]),
            ..SourceSpec::default()
        };
        assert!(s.validate().is_err());
        assert!(SourceSpec::default().validate().is_ok());
    }
}
