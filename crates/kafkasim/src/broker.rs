//! Broker nodes: they persist produce requests and (under `acks=1`)
//! acknowledge them.

use desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::log::PartitionLog;
use crate::message::MessageKey;

/// Identifier of a broker within a cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BrokerId(pub u32);

/// Broker cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrokerModel {
    /// Fixed processing time per produce request (request parsing, page
    /// cache append, response build).
    pub process_per_request: SimDuration,
    /// Additional processing time per record in the request.
    pub process_per_record: SimDuration,
}

impl Default for BrokerModel {
    fn default() -> Self {
        BrokerModel {
            process_per_request: SimDuration::from_micros(250),
            process_per_record: SimDuration::from_micros(20),
        }
    }
}

impl BrokerModel {
    /// Processing time for a request carrying `records` records.
    #[must_use]
    pub fn processing_time(&self, records: usize) -> SimDuration {
        self.process_per_request + self.process_per_record * records as u64
    }
}

/// One record inside a produce request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProduceRecord {
    /// The message's unique key.
    pub key: MessageKey,
    /// Payload size in bytes.
    pub payload_bytes: u64,
    /// Creation time at the producer (for latency accounting).
    pub created_at: SimTime,
}

/// A broker with the partition logs it leads.
///
/// # Example
///
/// ```
/// use kafkasim::broker::{Broker, BrokerId, ProduceRecord};
/// use kafkasim::message::MessageKey;
/// use desim::SimTime;
///
/// let mut broker = Broker::new(BrokerId(0), vec![0, 1]);
/// broker.append(0, &[ProduceRecord {
///     key: MessageKey(1), payload_bytes: 100, created_at: SimTime::ZERO,
/// }], SimTime::from_millis(2)).unwrap();
/// assert_eq!(broker.log(0).unwrap().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Broker {
    id: BrokerId,
    logs: Vec<PartitionLog>,
    model: BrokerModel,
    requests_handled: u64,
    records_appended: u64,
}

/// Error returned when a request targets a partition this broker does not
/// lead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotLeader {
    /// The broker that received the request.
    pub broker: BrokerId,
    /// The partition it does not lead.
    pub partition: u32,
}

impl core::fmt::Display for NotLeader {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "broker {} is not the leader of partition {}",
            self.broker.0, self.partition
        )
    }
}

impl std::error::Error for NotLeader {}

impl Broker {
    /// Creates a broker leading the given partitions.
    #[must_use]
    pub fn new(id: BrokerId, partitions: Vec<u32>) -> Self {
        Broker {
            id,
            logs: partitions.into_iter().map(PartitionLog::new).collect(),
            model: BrokerModel::default(),
            requests_handled: 0,
            records_appended: 0,
        }
    }

    /// Creates a broker with a custom cost model.
    #[must_use]
    pub fn with_model(id: BrokerId, partitions: Vec<u32>, model: BrokerModel) -> Self {
        Broker {
            model,
            ..Broker::new(id, partitions)
        }
    }

    /// The broker's id.
    #[must_use]
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// The partitions this broker leads.
    pub fn partitions(&self) -> impl Iterator<Item = u32> + '_ {
        self.logs.iter().map(|l| l.partition())
    }

    /// Starts leading `partition` with a fresh log (leader failover).
    ///
    /// No-op if this broker already has a log for the partition.
    pub fn add_partition(&mut self, partition: u32) {
        if self.log(partition).is_none() {
            self.logs.push(PartitionLog::new(partition));
        }
    }

    /// Processing time for a request of `records` records.
    #[must_use]
    pub fn processing_time(&self, records: usize) -> SimDuration {
        self.model.processing_time(records)
    }

    /// Appends a produce request's records to a partition log.
    ///
    /// Returns the base offset of the appended batch.
    ///
    /// # Errors
    ///
    /// [`NotLeader`] when this broker does not lead `partition`.
    pub fn append(
        &mut self,
        partition: u32,
        records: &[ProduceRecord],
        now: SimTime,
    ) -> Result<u64, NotLeader> {
        let log = self
            .logs
            .iter_mut()
            .find(|l| l.partition() == partition)
            .ok_or(NotLeader {
                broker: self.id,
                partition,
            })?;
        let base = log.append_batch(records, now);
        self.requests_handled += 1;
        self.records_appended += records.len() as u64;
        Ok(base)
    }

    /// Removes and returns this broker's log for `partition` (the physical
    /// log handed to a newly elected leader — see
    /// [`Broker::install_log`]).
    pub fn take_log(&mut self, partition: u32) -> Option<PartitionLog> {
        let idx = self.logs.iter().position(|l| l.partition() == partition)?;
        Some(self.logs.remove(idx))
    }

    /// Installs a partition log on this broker (leadership arriving with
    /// the replicated data), replacing any log it already had for that
    /// partition.
    pub fn install_log(&mut self, log: PartitionLog) {
        if let Some(existing) = self
            .logs
            .iter_mut()
            .find(|l| l.partition() == log.partition())
        {
            *existing = log;
        } else {
            self.logs.push(log);
        }
    }

    /// Read access to one partition log.
    #[must_use]
    pub fn log(&self, partition: u32) -> Option<&PartitionLog> {
        self.logs.iter().find(|l| l.partition() == partition)
    }

    /// All logs on this broker.
    #[must_use]
    pub fn logs(&self) -> &[PartitionLog] {
        &self.logs
    }

    /// Produce requests handled so far.
    #[must_use]
    pub fn requests_handled(&self) -> u64 {
        self.requests_handled
    }

    /// Records appended so far.
    #[must_use]
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: u64) -> ProduceRecord {
        ProduceRecord {
            key: MessageKey(key),
            payload_bytes: 100,
            created_at: SimTime::ZERO,
        }
    }

    #[test]
    fn append_to_led_partition() {
        let mut b = Broker::new(BrokerId(1), vec![0, 2]);
        let base = b
            .append(2, &[rec(1), rec(2)], SimTime::from_millis(1))
            .unwrap();
        assert_eq!(base, 0);
        let base2 = b.append(2, &[rec(3)], SimTime::from_millis(2)).unwrap();
        assert_eq!(base2, 2);
        assert_eq!(b.requests_handled(), 2);
        assert_eq!(b.records_appended(), 3);
    }

    #[test]
    fn rejects_foreign_partition() {
        let mut b = Broker::new(BrokerId(1), vec![0]);
        let err = b.append(5, &[rec(1)], SimTime::ZERO).unwrap_err();
        assert_eq!(err.partition, 5);
        assert_eq!(err.broker, BrokerId(1));
    }

    #[test]
    fn processing_time_scales_with_records() {
        let b = Broker::new(BrokerId(0), vec![0]);
        assert!(b.processing_time(10) > b.processing_time(1));
    }

    #[test]
    fn logs_move_between_brokers_on_election() {
        let mut old = Broker::new(BrokerId(0), vec![0]);
        let mut new = Broker::new(BrokerId(1), vec![]);
        old.append(0, &[rec(1), rec(2)], SimTime::ZERO).unwrap();
        let log = old.take_log(0).unwrap();
        assert_eq!(log.len(), 2);
        assert!(old.log(0).is_none());
        new.install_log(log);
        assert_eq!(new.log(0).unwrap().len(), 2);
    }

    #[test]
    fn partitions_listed() {
        let b = Broker::new(BrokerId(0), vec![4, 7]);
        let parts: Vec<u32> = b.partitions().collect();
        assert_eq!(parts, vec![4, 7]);
    }
}
