//! The Kafka cluster: brokers, a topic, and the partition→leader mapping.
//!
//! The paper's testbed runs three broker containers and one topic whose
//! partitions are distributed across them (§III-A/E); the producer
//! round-robins messages over partitions. This module reproduces that
//! layout.

use serde::{Deserialize, Serialize};

use crate::broker::{Broker, BrokerId, BrokerModel};

/// Static description of a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of broker nodes (the paper uses 3).
    pub brokers: u32,
    /// Number of partitions in the topic.
    pub partitions: u32,
    /// Broker cost model.
    pub broker_model: BrokerModel,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            brokers: 3,
            partitions: 3,
            broker_model: BrokerModel::default(),
        }
    }
}

impl ClusterSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.brokers == 0 {
            return Err("cluster needs at least one broker".into());
        }
        if self.partitions == 0 {
            return Err("topic needs at least one partition".into());
        }
        Ok(())
    }
}

/// A running cluster: brokers with their partition logs.
///
/// Partition `p` is led by broker `p % brokers`, mirroring Kafka's
/// round-robin leader spread for a fresh topic.
///
/// # Example
///
/// ```
/// use kafkasim::cluster::{Cluster, ClusterSpec};
///
/// let cluster = Cluster::new(ClusterSpec { brokers: 3, partitions: 6, ..ClusterSpec::default() }).unwrap();
/// assert_eq!(cluster.leader_of(4).0, 1);
/// assert_eq!(cluster.brokers().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    spec: ClusterSpec,
    brokers: Vec<Broker>,
    leaders: Vec<BrokerId>,
}

impl Cluster {
    /// Builds the cluster described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns the spec's validation error.
    pub fn new(spec: ClusterSpec) -> Result<Self, String> {
        spec.validate()?;
        let mut assignments: Vec<Vec<u32>> = vec![Vec::new(); spec.brokers as usize];
        for p in 0..spec.partitions {
            assignments[(p % spec.brokers) as usize].push(p);
        }
        let brokers = assignments
            .into_iter()
            .enumerate()
            .map(|(i, parts)| Broker::with_model(BrokerId(i as u32), parts, spec.broker_model))
            .collect();
        let leaders = (0..spec.partitions)
            .map(|p| BrokerId(p % spec.brokers))
            .collect();
        Ok(Cluster {
            spec,
            brokers,
            leaders,
        })
    }

    /// The cluster's spec.
    #[must_use]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The broker leading `partition`.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is outside the topic.
    #[must_use]
    pub fn leader_of(&self, partition: u32) -> BrokerId {
        assert!(partition < self.spec.partitions, "unknown partition");
        self.leaders[partition as usize]
    }

    /// Moves leadership of `partition` to `to` (failover). The new leader
    /// starts a fresh log for the partition; the old replica's log is kept
    /// for consumers.
    ///
    /// # Panics
    ///
    /// Panics on an unknown partition or broker.
    pub fn transfer_leadership(&mut self, partition: u32, to: BrokerId) {
        assert!(partition < self.spec.partitions, "unknown partition");
        assert!((to.0 as usize) < self.brokers.len(), "unknown broker");
        self.brokers[to.0 as usize].add_partition(partition);
        self.leaders[partition as usize] = to;
    }

    /// All brokers.
    #[must_use]
    pub fn brokers(&self) -> &[Broker] {
        &self.brokers
    }

    /// Mutable access to one broker.
    #[must_use]
    pub fn broker_mut(&mut self, id: BrokerId) -> Option<&mut Broker> {
        self.brokers.get_mut(id.0 as usize)
    }

    /// Read access to one broker.
    #[must_use]
    pub fn broker(&self, id: BrokerId) -> Option<&Broker> {
        self.brokers.get(id.0 as usize)
    }

    /// Number of partitions in the topic.
    #[must_use]
    pub fn partitions(&self) -> u32 {
        self.spec.partitions
    }

    /// Total records stored across all partitions.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.brokers
            .iter()
            .flat_map(|b| b.logs())
            .map(|l| l.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::ProduceRecord;
    use crate::message::MessageKey;
    use desim::SimTime;

    #[test]
    fn partitions_spread_round_robin() {
        let c = Cluster::new(ClusterSpec {
            brokers: 3,
            partitions: 7,
            ..ClusterSpec::default()
        })
        .unwrap();
        assert_eq!(c.leader_of(0), BrokerId(0));
        assert_eq!(c.leader_of(1), BrokerId(1));
        assert_eq!(c.leader_of(2), BrokerId(2));
        assert_eq!(c.leader_of(3), BrokerId(0));
        let parts0: Vec<u32> = c.broker(BrokerId(0)).unwrap().partitions().collect();
        assert_eq!(parts0, vec![0, 3, 6]);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(Cluster::new(ClusterSpec {
            brokers: 0,
            ..ClusterSpec::default()
        })
        .is_err());
        assert!(Cluster::new(ClusterSpec {
            partitions: 0,
            ..ClusterSpec::default()
        })
        .is_err());
    }

    #[test]
    fn total_records_counts_across_brokers() {
        let mut c = Cluster::new(ClusterSpec::default()).unwrap();
        for p in 0..3 {
            let leader = c.leader_of(p);
            c.broker_mut(leader)
                .unwrap()
                .append(
                    p,
                    &[ProduceRecord {
                        key: MessageKey(p as u64),
                        payload_bytes: 10,
                        created_at: SimTime::ZERO,
                    }],
                    SimTime::ZERO,
                )
                .unwrap();
        }
        assert_eq!(c.total_records(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown partition")]
    fn leader_of_unknown_partition_panics() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        let _ = c.leader_of(99);
    }
}
