//! The Kafka cluster: brokers, a topic, the partition→leader mapping, and
//! intra-cluster replication.
//!
//! The paper's testbed runs three broker containers and one topic whose
//! partitions are distributed across them (§III-A/E); the producer
//! round-robins messages over partitions. This module reproduces that
//! layout and extends it beyond the paper with Kafka's replication
//! protocol: each partition has `replication.factor` replicas, followers
//! fetch from the leader in periodic pull rounds, and an in-sync replica
//! (ISR) set is maintained by `replica.lag.time.max`-style eviction. On a
//! leader crash a new leader is elected from the ISR (clean) or — when
//! allowed — from a lagging replica (unclean), truncating the log to the
//! new leader's fetched offset.

use desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::broker::{Broker, BrokerId, BrokerModel};
use crate::log::StoredRecord;

/// Replication settings for the topic (beyond-the-paper dimension).
///
/// The defaults reproduce the paper's unreplicated topic exactly:
/// `factor = 1` means every partition has only its leader, follower
/// fetching never happens, and `acks=all` degenerates to `acks=1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationSpec {
    /// Replicas per partition, leader included (Kafka's
    /// `replication.factor`; 1 = unreplicated, the paper's setup).
    pub factor: u32,
    /// How often followers poll the leader for new records (the
    /// `replica.fetch.wait.max.ms`-style fetch cadence).
    pub fetch_interval: SimDuration,
    /// Most records a follower copies per fetch round — the lag model: a
    /// burst of appends takes several rounds to replicate.
    pub max_fetch_records: u64,
    /// How long a replica may stay behind the leader's log end before it
    /// is evicted from the ISR (Kafka's `replica.lag.time.max.ms`).
    pub lag_time_max: SimDuration,
    /// Permit electing a non-ISR replica when no in-sync candidate is
    /// alive (Kafka's `unclean.leader.election.enable`) — trades
    /// availability for broker-caused message loss.
    pub allow_unclean: bool,
}

impl Default for ReplicationSpec {
    fn default() -> Self {
        ReplicationSpec {
            factor: 1,
            fetch_interval: SimDuration::from_millis(50),
            max_fetch_records: 500,
            lag_time_max: SimDuration::from_secs(10),
            allow_unclean: false,
        }
    }
}

impl ReplicationSpec {
    /// Validates the spec (factor checked against the broker count by
    /// [`ClusterSpec::validate`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.factor == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.fetch_interval <= SimDuration::ZERO {
            return Err("replica fetch interval must be positive".into());
        }
        if self.max_fetch_records == 0 {
            return Err("replica fetch size must be at least 1 record".into());
        }
        if self.lag_time_max <= SimDuration::ZERO {
            return Err("replica.lag.time.max must be positive".into());
        }
        Ok(())
    }
}

/// Static description of a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of broker nodes (the paper uses 3).
    pub brokers: u32,
    /// Number of partitions in the topic.
    pub partitions: u32,
    /// Broker cost model.
    pub broker_model: BrokerModel,
    /// Replication settings (factor 1 = the paper's unreplicated topic).
    pub replication: ReplicationSpec,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            brokers: 3,
            partitions: 3,
            broker_model: BrokerModel::default(),
            replication: ReplicationSpec::default(),
        }
    }
}

impl ClusterSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.brokers == 0 {
            return Err("cluster needs at least one broker".into());
        }
        if self.partitions == 0 {
            return Err("topic needs at least one partition".into());
        }
        self.replication.validate()?;
        if self.replication.factor > self.brokers {
            return Err(format!(
                "replication factor {} exceeds the {} brokers",
                self.replication.factor, self.brokers
            ));
        }
        Ok(())
    }
}

/// One replica's view of a partition, as the leader tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replica {
    /// The broker hosting the replica.
    pub broker: BrokerId,
    /// The replica's log-end offset: how many records it has fetched.
    /// Followers track offsets only — the single physical log lives with
    /// the leader, so the end-of-run consumer never double-reads.
    pub leo: u64,
    /// When the replica was first observed behind the leader's log end
    /// (`None` = caught up); drives `replica.lag.time.max` eviction.
    pub lag_since: Option<SimTime>,
    /// Whether the replica is currently in the in-sync set.
    pub in_isr: bool,
}

/// What one replication round did — the runtime turns these into trace
/// events and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationDelta {
    /// A follower copied records from its leader.
    Fetch {
        /// The partition replicated.
        partition: u32,
        /// The leader fetched from.
        leader: BrokerId,
        /// The fetching follower.
        follower: BrokerId,
        /// The follower's log-end offset before the fetch.
        from_offset: u64,
        /// Records copied.
        records: u64,
    },
    /// A replica fell out of the ISR (lagged past `replica.lag.time.max`).
    Shrink {
        /// The partition whose ISR shrank.
        partition: u32,
        /// The evicted replica.
        broker: BrokerId,
        /// The ISR after the shrink.
        isr: Vec<u32>,
    },
    /// A replica caught back up and rejoined the ISR.
    Expand {
        /// The partition whose ISR grew.
        partition: u32,
        /// The rejoining replica.
        broker: BrokerId,
        /// The ISR after the expansion.
        isr: Vec<u32>,
    },
}

/// The result of a leader election.
#[derive(Debug, Clone)]
pub struct ElectionOutcome {
    /// The elected broker.
    pub leader: BrokerId,
    /// `true` when the winner was in the ISR (no acknowledged data can be
    /// lost); `false` for an unclean election from a lagging replica.
    pub clean: bool,
    /// Records truncated off the log because the new leader had not
    /// fetched them (empty for a fully caught-up winner).
    pub truncated: Vec<StoredRecord>,
    /// The partition's ISR after the election.
    pub isr: Vec<u32>,
}

/// A running cluster: brokers with their partition logs.
///
/// Partition `p` is led by broker `p % brokers`, mirroring Kafka's
/// round-robin leader spread for a fresh topic.
///
/// # Example
///
/// ```
/// use kafkasim::cluster::{Cluster, ClusterSpec};
///
/// let cluster = Cluster::new(ClusterSpec { brokers: 3, partitions: 6, ..ClusterSpec::default() }).unwrap();
/// assert_eq!(cluster.leader_of(4).0, 1);
/// assert_eq!(cluster.brokers().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    spec: ClusterSpec,
    brokers: Vec<Broker>,
    leaders: Vec<BrokerId>,
    /// Per partition: the assigned replicas (leader first at creation).
    /// Empty inner vectors never occur; `factor = 1` leaves only the
    /// leader, so replication is a no-op.
    replicas: Vec<Vec<Replica>>,
}

impl Cluster {
    /// Builds the cluster described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns the spec's validation error.
    pub fn new(spec: ClusterSpec) -> Result<Self, String> {
        spec.validate()?;
        let mut assignments: Vec<Vec<u32>> = vec![Vec::new(); spec.brokers as usize];
        for p in 0..spec.partitions {
            assignments[(p % spec.brokers) as usize].push(p);
        }
        let brokers = assignments
            .into_iter()
            .enumerate()
            .map(|(i, parts)| Broker::with_model(BrokerId(i as u32), parts, spec.broker_model))
            .collect();
        let leaders: Vec<BrokerId> = (0..spec.partitions)
            .map(|p| BrokerId(p % spec.brokers))
            .collect();
        // Kafka's rack-unaware assignment: partition p's replicas are the
        // `factor` consecutive brokers starting at its leader.
        let replicas = (0..spec.partitions)
            .map(|p| {
                (0..spec.replication.factor)
                    .map(|i| Replica {
                        broker: BrokerId((p + i) % spec.brokers),
                        leo: 0,
                        lag_since: None,
                        in_isr: true,
                    })
                    .collect()
            })
            .collect();
        Ok(Cluster {
            spec,
            brokers,
            leaders,
            replicas,
        })
    }

    /// The cluster's spec.
    #[must_use]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The broker leading `partition`.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is outside the topic.
    #[must_use]
    pub fn leader_of(&self, partition: u32) -> BrokerId {
        assert!(partition < self.spec.partitions, "unknown partition");
        self.leaders[partition as usize]
    }

    /// Moves leadership of `partition` to `to` (failover). The new leader
    /// starts a fresh log for the partition; the old replica's log is kept
    /// for consumers.
    ///
    /// # Panics
    ///
    /// Panics on an unknown partition or broker.
    pub fn transfer_leadership(&mut self, partition: u32, to: BrokerId) {
        assert!(partition < self.spec.partitions, "unknown partition");
        assert!((to.0 as usize) < self.brokers.len(), "unknown broker");
        self.brokers[to.0 as usize].add_partition(partition);
        self.leaders[partition as usize] = to;
    }

    /// All brokers.
    #[must_use]
    pub fn brokers(&self) -> &[Broker] {
        &self.brokers
    }

    /// Mutable access to one broker.
    #[must_use]
    pub fn broker_mut(&mut self, id: BrokerId) -> Option<&mut Broker> {
        self.brokers.get_mut(id.0 as usize)
    }

    /// Read access to one broker.
    #[must_use]
    pub fn broker(&self, id: BrokerId) -> Option<&Broker> {
        self.brokers.get(id.0 as usize)
    }

    /// Number of partitions in the topic.
    #[must_use]
    pub fn partitions(&self) -> u32 {
        self.spec.partitions
    }

    /// Total records stored across all partitions.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.brokers
            .iter()
            .flat_map(|b| b.logs())
            .map(|l| l.len() as u64)
            .sum()
    }

    /// The replicas of `partition` (leader included), with their fetched
    /// offsets and ISR membership.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is outside the topic.
    #[must_use]
    pub fn replicas_of(&self, partition: u32) -> &[Replica] {
        assert!(partition < self.spec.partitions, "unknown partition");
        &self.replicas[partition as usize]
    }

    /// The current in-sync replica set of `partition`, as broker ids.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is outside the topic.
    #[must_use]
    pub fn isr_of(&self, partition: u32) -> Vec<u32> {
        self.replicas_of(partition)
            .iter()
            .filter(|r| r.in_isr)
            .map(|r| r.broker.0)
            .collect()
    }

    /// The leader's log-end offset for `partition` (0 when the leader has
    /// no log yet).
    fn leader_leo(&self, partition: u32) -> u64 {
        let leader = self.leaders[partition as usize];
        self.brokers[leader.0 as usize]
            .log(partition)
            .map_or(0, |l| l.len() as u64)
    }

    /// `true` when every in-sync replica of `partition` has fetched at
    /// least `offset` records — the `acks=all` release condition. The
    /// leader itself trivially satisfies it, so with `factor = 1` (or an
    /// ISR shrunk to the leader alone) this is always `true` once the
    /// leader appended.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is outside the topic.
    #[must_use]
    pub fn isr_has(&self, partition: u32, offset: u64) -> bool {
        let leader = self.leaders[partition as usize];
        self.replicas_of(partition)
            .iter()
            .filter(|r| r.in_isr && r.broker != leader)
            .all(|r| r.leo >= offset)
    }

    /// Runs one replication round at simulated time `now`: each alive
    /// follower fetches up to `max_fetch_records` from its partition
    /// leader, catches up or accrues lag, and the ISR shrinks/expands per
    /// `replica.lag.time.max`. `down[b]` marks broker `b` as crashed
    /// (crashed followers fetch nothing; a crashed leader freezes its
    /// partition until an election).
    ///
    /// Returns what happened, for tracing.
    pub fn replicate(&mut self, now: SimTime, down: &[bool]) -> Vec<ReplicationDelta> {
        let mut deltas = Vec::new();
        let lag_max = self.spec.replication.lag_time_max;
        let max_fetch = self.spec.replication.max_fetch_records;
        for p in 0..self.spec.partitions {
            let leader = self.leaders[p as usize];
            let leader_down = down.get(leader.0 as usize).copied().unwrap_or(false);
            let leader_leo = self.leader_leo(p);
            let mut shrunk: Vec<BrokerId> = Vec::new();
            let mut expanded: Vec<BrokerId> = Vec::new();
            for r in self.replicas[p as usize].iter_mut() {
                if r.broker == leader {
                    r.leo = leader_leo;
                    r.lag_since = None;
                    continue;
                }
                let follower_down = down.get(r.broker.0 as usize).copied().unwrap_or(false);
                if !follower_down && !leader_down && r.leo < leader_leo {
                    let n = max_fetch.min(leader_leo - r.leo);
                    deltas.push(ReplicationDelta::Fetch {
                        partition: p,
                        leader,
                        follower: r.broker,
                        from_offset: r.leo,
                        records: n,
                    });
                    r.leo += n;
                }
                if r.leo >= leader_leo {
                    r.lag_since = None;
                    if !r.in_isr && !follower_down {
                        r.in_isr = true;
                        expanded.push(r.broker);
                    }
                } else {
                    let since = *r.lag_since.get_or_insert(now);
                    if r.in_isr && now.saturating_since(since) > lag_max {
                        r.in_isr = false;
                        shrunk.push(r.broker);
                    }
                }
            }
            for b in shrunk {
                let isr = self.isr_of(p);
                deltas.push(ReplicationDelta::Shrink {
                    partition: p,
                    broker: b,
                    isr,
                });
            }
            for b in expanded {
                let isr = self.isr_of(p);
                deltas.push(ReplicationDelta::Expand {
                    partition: p,
                    broker: b,
                    isr,
                });
            }
        }
        deltas
    }

    /// Picks an election candidate for `partition` among its alive
    /// replicas, excluding the current (crashed) leader: the in-sync
    /// replica with the highest fetched offset when one is alive (clean),
    /// otherwise — only if the spec allows unclean elections — the alive
    /// replica with the highest offset (`clean = false`).
    ///
    /// `None` when no electable replica is alive (with `factor = 1` there
    /// is never one — the caller falls back to the paper's fresh-log
    /// failover).
    ///
    /// # Panics
    ///
    /// Panics if `partition` is outside the topic.
    #[must_use]
    pub fn election_candidate(&self, partition: u32, down: &[bool]) -> Option<(BrokerId, bool)> {
        let leader = self.leaders[partition as usize];
        let alive = |r: &&Replica| {
            r.broker != leader && !down.get(r.broker.0 as usize).copied().unwrap_or(false)
        };
        let best_isr = self
            .replicas_of(partition)
            .iter()
            .filter(alive)
            .filter(|r| r.in_isr)
            .max_by_key(|r| r.leo);
        if let Some(r) = best_isr {
            return Some((r.broker, true));
        }
        if !self.spec.replication.allow_unclean {
            return None;
        }
        self.replicas_of(partition)
            .iter()
            .filter(alive)
            .max_by_key(|r| r.leo)
            .map(|r| (r.broker, false))
    }

    /// Elects `to` as the new leader of `partition`: the physical log
    /// moves from the old leader to `to`, truncated to `to`'s fetched
    /// offset (records the new leader never saw are destroyed — the
    /// broker-caused loss of an unclean election). The old leader leaves
    /// the ISR; after an unclean election the ISR collapses to the new
    /// leader alone.
    ///
    /// # Panics
    ///
    /// Panics on an unknown partition, or when `to` is not a replica of
    /// `partition`.
    pub fn elect_leader(&mut self, partition: u32, to: BrokerId, now: SimTime) -> ElectionOutcome {
        assert!(partition < self.spec.partitions, "unknown partition");
        let old = self.leaders[partition as usize];
        assert!(
            self.replicas[partition as usize]
                .iter()
                .any(|r| r.broker == to),
            "broker {} is not a replica of partition {partition}",
            to.0
        );
        let clean = self.replicas[partition as usize]
            .iter()
            .any(|r| r.broker == to && r.in_isr);
        let new_leo = self.replicas[partition as usize]
            .iter()
            .find(|r| r.broker == to)
            .map_or(0, |r| r.leo);
        let truncated = if to == old {
            Vec::new()
        } else {
            let mut log = self.brokers[old.0 as usize]
                .take_log(partition)
                .unwrap_or_else(|| crate::log::PartitionLog::new(partition));
            let removed = log.truncate_to(new_leo);
            self.brokers[to.0 as usize].install_log(log);
            removed
        };
        self.leaders[partition as usize] = to;
        for r in self.replicas[partition as usize].iter_mut() {
            r.leo = r.leo.min(new_leo);
            if r.broker == to {
                r.in_isr = true;
                r.lag_since = None;
            } else if r.broker == old {
                // The crashed leader is out of sync by definition; when it
                // restarts it refetches from the truncated log end.
                r.in_isr = false;
                r.lag_since = Some(now);
            } else if !clean {
                // Unclean election: the ISR collapses to the winner.
                r.in_isr = false;
                r.lag_since = Some(now);
            }
        }
        ElectionOutcome {
            leader: to,
            clean,
            truncated,
            isr: self.isr_of(partition),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::ProduceRecord;
    use crate::message::MessageKey;
    use desim::SimTime;

    #[test]
    fn partitions_spread_round_robin() {
        let c = Cluster::new(ClusterSpec {
            brokers: 3,
            partitions: 7,
            ..ClusterSpec::default()
        })
        .unwrap();
        assert_eq!(c.leader_of(0), BrokerId(0));
        assert_eq!(c.leader_of(1), BrokerId(1));
        assert_eq!(c.leader_of(2), BrokerId(2));
        assert_eq!(c.leader_of(3), BrokerId(0));
        let parts0: Vec<u32> = c.broker(BrokerId(0)).unwrap().partitions().collect();
        assert_eq!(parts0, vec![0, 3, 6]);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(Cluster::new(ClusterSpec {
            brokers: 0,
            ..ClusterSpec::default()
        })
        .is_err());
        assert!(Cluster::new(ClusterSpec {
            partitions: 0,
            ..ClusterSpec::default()
        })
        .is_err());
    }

    #[test]
    fn total_records_counts_across_brokers() {
        let mut c = Cluster::new(ClusterSpec::default()).unwrap();
        for p in 0..3 {
            let leader = c.leader_of(p);
            c.broker_mut(leader)
                .unwrap()
                .append(
                    p,
                    &[ProduceRecord {
                        key: MessageKey(p as u64),
                        payload_bytes: 10,
                        created_at: SimTime::ZERO,
                    }],
                    SimTime::ZERO,
                )
                .unwrap();
        }
        assert_eq!(c.total_records(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown partition")]
    fn leader_of_unknown_partition_panics() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        let _ = c.leader_of(99);
    }

    fn replicated_cluster(factor: u32) -> Cluster {
        Cluster::new(ClusterSpec {
            brokers: 3,
            partitions: 1,
            replication: ReplicationSpec {
                factor,
                max_fetch_records: 2,
                lag_time_max: SimDuration::from_millis(100),
                allow_unclean: false,
                ..ReplicationSpec::default()
            },
            ..ClusterSpec::default()
        })
        .unwrap()
    }

    fn append_keys(c: &mut Cluster, partition: u32, keys: core::ops::Range<u64>) {
        let leader = c.leader_of(partition);
        let records: Vec<ProduceRecord> = keys
            .map(|k| ProduceRecord {
                key: MessageKey(k),
                payload_bytes: 10,
                created_at: SimTime::ZERO,
            })
            .collect();
        c.broker_mut(leader)
            .unwrap()
            .append(partition, &records, SimTime::ZERO)
            .unwrap();
    }

    #[test]
    fn rejects_factor_beyond_brokers() {
        let err = Cluster::new(ClusterSpec {
            brokers: 2,
            replication: ReplicationSpec {
                factor: 3,
                ..ReplicationSpec::default()
            },
            ..ClusterSpec::default()
        })
        .unwrap_err();
        assert!(err.contains("replication factor"));
    }

    #[test]
    fn followers_fetch_in_bounded_rounds() {
        let mut c = replicated_cluster(3);
        append_keys(&mut c, 0, 0..5);
        let down = [false; 3];
        let deltas = c.replicate(SimTime::from_millis(50), &down);
        // Two followers each fetched max_fetch_records = 2.
        let fetches = deltas
            .iter()
            .filter(|d| matches!(d, ReplicationDelta::Fetch { records: 2, .. }))
            .count();
        assert_eq!(fetches, 2);
        assert!(!c.isr_has(0, 5), "followers still 3 records behind");
        c.replicate(SimTime::from_millis(100), &down);
        c.replicate(SimTime::from_millis(150), &down);
        assert!(c.isr_has(0, 5), "three rounds replicate all five records");
        assert_eq!(c.isr_of(0), vec![0, 1, 2]);
    }

    #[test]
    fn laggards_leave_and_rejoin_the_isr() {
        let mut c = replicated_cluster(2);
        append_keys(&mut c, 0, 0..4);
        // Broker 1 (the only follower) is down: it accrues lag and is
        // evicted once past lag_time_max (100 ms).
        let down = [false, true, false];
        c.replicate(SimTime::from_millis(50), &down);
        assert_eq!(c.isr_of(0), vec![0, 1], "lag clock started, not expired");
        let deltas = c.replicate(SimTime::from_millis(200), &down);
        assert!(deltas.iter().any(|d| matches!(
            d,
            ReplicationDelta::Shrink {
                broker: BrokerId(1),
                ..
            }
        )));
        assert_eq!(c.isr_of(0), vec![0]);
        assert!(c.isr_has(0, 4), "ISR = leader alone: trivially caught up");
        // Broker 1 restarts, refetches, rejoins.
        let down = [false; 3];
        c.replicate(SimTime::from_millis(250), &down);
        let deltas = c.replicate(SimTime::from_millis(300), &down);
        assert!(deltas.iter().any(|d| matches!(
            d,
            ReplicationDelta::Expand {
                broker: BrokerId(1),
                ..
            }
        )));
        assert_eq!(c.isr_of(0), vec![0, 1]);
    }

    #[test]
    fn clean_election_keeps_every_replicated_record() {
        let mut c = replicated_cluster(2);
        append_keys(&mut c, 0, 0..4);
        let down = [false; 3];
        c.replicate(SimTime::from_millis(50), &down);
        c.replicate(SimTime::from_millis(100), &down);
        assert!(c.isr_has(0, 4));
        // Leader 0 crashes; broker 1 is in the ISR with everything.
        let down = [true, false, false];
        let (cand, clean) = c.election_candidate(0, &down).unwrap();
        assert_eq!(cand, BrokerId(1));
        assert!(clean);
        let outcome = c.elect_leader(0, cand, SimTime::from_millis(150));
        assert!(outcome.clean);
        assert!(outcome.truncated.is_empty());
        assert_eq!(c.leader_of(0), BrokerId(1));
        assert_eq!(c.broker(BrokerId(1)).unwrap().log(0).unwrap().len(), 4);
        assert!(c.broker(BrokerId(0)).unwrap().log(0).is_none());
    }

    #[test]
    fn unclean_election_truncates_to_the_laggards_offset() {
        let mut c = Cluster::new(ClusterSpec {
            brokers: 3,
            partitions: 1,
            replication: ReplicationSpec {
                factor: 2,
                max_fetch_records: 2,
                lag_time_max: SimDuration::from_millis(100),
                allow_unclean: true,
                ..ReplicationSpec::default()
            },
            ..ClusterSpec::default()
        })
        .unwrap();
        append_keys(&mut c, 0, 0..6);
        // One fetch round only: follower 1 has 2 of 6 records, then goes
        // down and lags out of the ISR.
        let down = [false; 3];
        c.replicate(SimTime::from_millis(50), &down);
        let down = [false, true, false];
        c.replicate(SimTime::from_millis(250), &down);
        assert_eq!(c.isr_of(0), vec![0]);
        // Leader crashes: no ISR candidate alive, unclean election wins.
        let down = [true, false, false];
        let (cand, clean) = c.election_candidate(0, &down).unwrap();
        assert_eq!(cand, BrokerId(1));
        assert!(!clean);
        let outcome = c.elect_leader(0, cand, SimTime::from_millis(300));
        assert!(!outcome.clean);
        let lost: Vec<u64> = outcome.truncated.iter().map(|r| r.key.0).collect();
        assert_eq!(lost, vec![2, 3, 4, 5], "records past the fetched offset");
        assert_eq!(c.broker(BrokerId(1)).unwrap().log(0).unwrap().len(), 2);
        assert_eq!(outcome.isr, vec![1], "unclean ISR collapses to the winner");
        assert_eq!(c.total_records(), 2);
    }

    #[test]
    fn no_candidate_without_unclean_permission() {
        let mut c = replicated_cluster(2);
        append_keys(&mut c, 0, 0..6);
        let down = [false; 3];
        c.replicate(SimTime::from_millis(50), &down);
        // Evict the follower (down past the lag limit)...
        let down = [false, true, false];
        c.replicate(SimTime::from_millis(300), &down);
        assert_eq!(c.isr_of(0), vec![0]);
        // ...then crash the leader; the stale follower restarts but unclean
        // elections are disabled.
        let down = [true, false, false];
        assert!(c.election_candidate(0, &down).is_none());
    }
}
