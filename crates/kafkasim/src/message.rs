//! Messages: the unit of delivery whose reliability the paper measures.
//!
//! Following the paper's testbed design (§III-E), every source message
//! carries an **incremental unique key** so that lost and duplicated
//! messages can be counted by comparing source keys with the keys a consumer
//! reads back; the payload is an opaque string of configurable length whose
//! content is irrelevant.

use desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The incremental unique key identifying one source message.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MessageKey(pub u64);

impl core::fmt::Display for MessageKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "msg#{}", self.0)
    }
}

/// One message as seen by the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Unique incremental key.
    pub key: MessageKey,
    /// Payload size `M` in bytes (the paper's first feature).
    pub payload_bytes: u64,
    /// When the message arrived at the producer.
    pub created_at: SimTime,
    /// Hard delivery deadline: `created_at + T_o` (message timeout).
    pub deadline: SimTime,
}

impl Message {
    /// Creates a message with the given timeout `T_o`.
    #[must_use]
    pub fn new(
        key: MessageKey,
        payload_bytes: u64,
        created_at: SimTime,
        timeout: SimDuration,
    ) -> Self {
        Message {
            key,
            payload_bytes,
            created_at,
            deadline: created_at + timeout,
        }
    }

    /// `true` once the message timeout has elapsed.
    #[must_use]
    pub fn is_expired(&self, now: SimTime) -> bool {
        now >= self.deadline
    }

    /// Age of the message at `now`.
    #[must_use]
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.created_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_follows_timeout() {
        let m = Message::new(
            MessageKey(1),
            200,
            SimTime::from_secs(1),
            SimDuration::from_millis(500),
        );
        assert!(!m.is_expired(SimTime::from_millis(1_400)));
        assert!(m.is_expired(SimTime::from_millis(1_500)));
        assert_eq!(
            m.age(SimTime::from_millis(1_300)),
            SimDuration::from_millis(300)
        );
    }

    #[test]
    fn key_displays_readably() {
        assert_eq!(MessageKey(42).to_string(), "msg#42");
    }
}
