//! Cross-checking a reconstructed trace against the end-of-run audit.
//!
//! The audit ([`crate::audit`]) counts what happened; a trace
//! ([`obs::TimelineReport`]) explains why. [`crosscheck`] ties them
//! together: it verifies that the per-message timelines account for every
//! `P_l` and `P_d` count in the [`DeliveryReport`] — same number of lost
//! messages, same loss-reason histogram, same number of duplicated
//! messages, and a traced cause behind each one.

use std::collections::BTreeMap;

use obs::{LossCause, TimelineReport};

use crate::audit::{DeliveryReport, LossReason};

/// The audit reason corresponding to a traced loss cause.
#[must_use]
pub fn to_loss_reason(cause: LossCause) -> LossReason {
    match cause {
        LossCause::ExpiredInBuffer => LossReason::ExpiredInBuffer,
        LossCause::BufferOverflow => LossReason::BufferOverflow,
        LossCause::RetriesExhausted => LossReason::RetriesExhausted,
        LossCause::ConnectionReset => LossReason::ConnectionReset,
        LossCause::UnsentAtEnd => LossReason::UnsentAtEnd,
        LossCause::LeaderFailover => LossReason::LeaderFailover,
    }
}

/// The traced loss cause corresponding to an audit reason.
#[must_use]
pub fn to_loss_cause(reason: LossReason) -> LossCause {
    match reason {
        LossReason::ExpiredInBuffer => LossCause::ExpiredInBuffer,
        LossReason::BufferOverflow => LossCause::BufferOverflow,
        LossReason::RetriesExhausted => LossCause::RetriesExhausted,
        LossReason::ConnectionReset => LossCause::ConnectionReset,
        LossReason::UnsentAtEnd => LossCause::UnsentAtEnd,
        LossReason::LeaderFailover => LossCause::LeaderFailover,
    }
}

/// The verdict of comparing a [`TimelineReport`] with a
/// [`DeliveryReport`].
#[derive(Debug, Clone, Default)]
pub struct TraceAudit {
    /// The trace reconstructs the same number of lost messages as the
    /// audit counted.
    pub lost_count_matches: bool,
    /// The trace reconstructs the same number of duplicated messages.
    pub duplicated_count_matches: bool,
    /// The per-cause loss histogram from the trace equals the audit's
    /// `loss_reasons`.
    pub loss_reasons_match: bool,
    /// Keys the trace sees as lost but cannot attribute to a cause.
    pub unattributed_lost: Vec<u64>,
    /// Keys the trace sees as duplicated without a visible mechanism.
    pub unattributed_duplicates: Vec<u64>,
    /// Human-readable descriptions of every discrepancy found.
    pub discrepancies: Vec<String>,
}

impl TraceAudit {
    /// `true` when the trace fully explains the audit: counts match,
    /// loss-reason histograms match, and every lost or duplicated message
    /// has a traced cause.
    #[must_use]
    pub fn fully_explains(&self) -> bool {
        self.lost_count_matches
            && self.duplicated_count_matches
            && self.loss_reasons_match
            && self.unattributed_lost.is_empty()
            && self.unattributed_duplicates.is_empty()
    }
}

/// Compares the audit's aggregate counts with a trace reconstruction.
///
/// Only meaningful when the trace is complete (e.g. a
/// [`obs::RingBufferSink`] large enough to hold the whole run): a
/// truncated trace will legitimately fail to explain what it never saw.
#[must_use]
pub fn crosscheck(report: &DeliveryReport, timeline: &TimelineReport) -> TraceAudit {
    let mut audit = TraceAudit {
        lost_count_matches: timeline.n_lost() == report.lost,
        duplicated_count_matches: timeline.n_duplicated() == report.duplicated,
        unattributed_lost: timeline.unattributed_lost(),
        unattributed_duplicates: timeline.unattributed_duplicates(),
        ..TraceAudit::default()
    };
    if !audit.lost_count_matches {
        audit.discrepancies.push(format!(
            "trace reconstructs {} lost messages, audit counted {}",
            timeline.n_lost(),
            report.lost
        ));
    }
    if !audit.duplicated_count_matches {
        audit.discrepancies.push(format!(
            "trace reconstructs {} duplicated messages, audit counted {}",
            timeline.n_duplicated(),
            report.duplicated
        ));
    }

    let traced: BTreeMap<LossReason, u64> = timeline
        .lost_by_cause()
        .into_iter()
        .map(|(c, n)| (to_loss_reason(c), n))
        .collect();
    audit.loss_reasons_match = traced == report.loss_reasons;
    if !audit.loss_reasons_match {
        audit.discrepancies.push(format!(
            "traced loss histogram {traced:?} != audited {:?}",
            report.loss_reasons
        ));
    }
    if !audit.unattributed_lost.is_empty() {
        audit.discrepancies.push(format!(
            "{} lost messages have no traced cause: {:?}",
            audit.unattributed_lost.len(),
            &audit.unattributed_lost[..audit.unattributed_lost.len().min(10)]
        ));
    }
    if !audit.unattributed_duplicates.is_empty() {
        audit.discrepancies.push(format!(
            "{} duplicated messages have no traced mechanism: {:?}",
            audit.unattributed_duplicates.len(),
            &audit.unattributed_duplicates[..audit.unattributed_duplicates.len().min(10)]
        ));
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_reason_mapping_is_a_bijection() {
        for cause in LossCause::ALL {
            assert_eq!(to_loss_cause(to_loss_reason(cause)), cause);
            assert_eq!(cause.to_string(), to_loss_reason(cause).to_string());
        }
    }

    #[test]
    fn empty_trace_explains_empty_report() {
        let report = DeliveryReport {
            n_source: 0,
            delivered_once: 0,
            lost: 0,
            duplicated: 0,
            extra_copies: 0,
            case_counts: [0; 5],
            loss_reasons: BTreeMap::new(),
            latency: crate::audit::LatencyStats::default(),
            stale: 0,
            duration: desim::SimDuration::ZERO,
        };
        let timeline = TimelineReport::reconstruct(&[]);
        assert!(crosscheck(&report, &timeline).fully_explains());
    }
}
