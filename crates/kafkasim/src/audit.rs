//! The end-of-run audit: source keys vs consumed keys.
//!
//! Implements the paper's counting methodology (§III-F): out of `N` source
//! messages, `N_l` are in Case 2 or Case 3 (lost), `N_d` in Case 5
//! (duplicated); the reliability metrics are `P_l = N_l / N` and
//! `P_d = N_d / N`.

use std::collections::BTreeMap;

use desim::stats::RunningMoments;
use desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::consumer::ConsumedTopic;
use crate::message::MessageKey;
use crate::producer::Ledger;
use crate::state::DeliveryCase;

/// Why the producer gave up on a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LossReason {
    /// Expired in the accumulator before (or between) send attempts
    /// (`T_o` elapsed).
    ExpiredInBuffer,
    /// The accumulator was full when the message arrived
    /// (`buffer.memory` exhausted).
    BufferOverflow,
    /// Retries `τ_r` (or the message deadline) were exhausted
    /// (at-least-once).
    RetriesExhausted,
    /// Discarded with a torn-down connection's socket buffer
    /// (at-most-once's silent loss).
    ConnectionReset,
    /// Still unresolved when the run's hard horizon ended.
    UnsentAtEnd,
    /// Truncated from a partition log when leadership moved to a replica
    /// that had not fetched the record — broker-caused loss (unclean
    /// leader election, or a failover under `acks < all`), distinct from
    /// every network-caused reason above.
    LeaderFailover,
}

impl LossReason {
    /// Every reason, in declaration (= `Ord`) order.
    pub const ALL: [LossReason; 6] = [
        LossReason::ExpiredInBuffer,
        LossReason::BufferOverflow,
        LossReason::RetriesExhausted,
        LossReason::ConnectionReset,
        LossReason::UnsentAtEnd,
        LossReason::LeaderFailover,
    ];

    /// Dense index 0..6 (declaration order), for counter columns.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Non-zero tag for packed `Option`-free columns (0 means "not lost").
    #[must_use]
    pub const fn tag(self) -> u8 {
        self as u8 + 1
    }

    /// Inverse of [`LossReason::tag`]; `None` for 0 or out of range.
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<LossReason> {
        (tag as usize)
            .checked_sub(1)
            .and_then(|i| LossReason::ALL.get(i).copied())
    }
}

impl core::fmt::Display for LossReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            LossReason::ExpiredInBuffer => "expired-in-buffer",
            LossReason::BufferOverflow => "buffer-overflow",
            LossReason::RetriesExhausted => "retries-exhausted",
            LossReason::ConnectionReset => "connection-reset",
            LossReason::UnsentAtEnd => "unsent-at-end",
            LossReason::LeaderFailover => "leader-failover",
        };
        write!(f, "{s}")
    }
}

/// Latency summary in seconds (finite even when empty, so it serialises).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Delivered messages measured.
    pub count: u64,
    /// Mean first-copy latency in seconds.
    pub mean_s: f64,
    /// Standard deviation in seconds.
    pub std_s: f64,
    /// Minimum in seconds (0 when empty).
    pub min_s: f64,
    /// Maximum in seconds (0 when empty).
    pub max_s: f64,
}

impl From<&RunningMoments> for LatencyStats {
    fn from(m: &RunningMoments) -> Self {
        LatencyStats {
            count: m.count(),
            mean_s: m.mean(),
            std_s: m.std_dev(),
            min_s: m.min().unwrap_or(0.0),
            max_s: m.max().unwrap_or(0.0),
        }
    }
}

/// The reliability report of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// Source messages fed to the producer (`N`).
    pub n_source: u64,
    /// Messages found exactly once in the topic.
    pub delivered_once: u64,
    /// Messages not found at all (`N_l`).
    pub lost: u64,
    /// Messages found more than once (`N_d`).
    pub duplicated: u64,
    /// Total extra copies beyond the first, summed over duplicated keys.
    pub extra_copies: u64,
    /// Per-case counts, indexed by [`DeliveryCase::index`].
    pub case_counts: [u64; 5],
    /// Loss attribution from the producer's ledger.
    pub loss_reasons: BTreeMap<LossReason, u64>,
    /// First-copy delivery latency statistics (seconds).
    pub latency: LatencyStats,
    /// Delivered messages whose first-copy latency exceeded the stream's
    /// timeliness `S` (stale deliveries).
    pub stale: u64,
    /// Wall-clock (simulated) duration of the run.
    pub duration: SimDuration,
}

impl DeliveryReport {
    /// `P_l = N_l / N` — the probability of message loss.
    #[must_use]
    pub fn p_loss(&self) -> f64 {
        if self.n_source == 0 {
            0.0
        } else {
            self.lost as f64 / self.n_source as f64
        }
    }

    /// `P_d = N_d / N` — the probability of message duplication.
    #[must_use]
    pub fn p_dup(&self) -> f64 {
        if self.n_source == 0 {
            0.0
        } else {
            self.duplicated as f64 / self.n_source as f64
        }
    }

    /// Delivered fraction (exactly-once plus duplicated firsts).
    #[must_use]
    pub fn delivery_rate(&self) -> f64 {
        if self.n_source == 0 {
            0.0
        } else {
            (self.delivered_once + self.duplicated) as f64 / self.n_source as f64
        }
    }

    /// Delivered messages per simulated second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            (self.delivered_once + self.duplicated) as f64 / secs
        }
    }

    /// Count for one Table I case.
    #[must_use]
    pub fn case_count(&self, case: DeliveryCase) -> u64 {
        self.case_counts[case.index()]
    }
}

/// Folds tag-indexed loss counters into the report's per-reason map.
///
/// Slot 0 holds lost messages the producer never marked; the paper's
/// methodology attributes those to `UnsentAtEnd`. Only non-zero reasons are
/// inserted, matching the entry-on-first-occurrence behaviour of the old
/// per-message map updates exactly.
fn loss_map(mut loss_by_tag: [u64; 7]) -> BTreeMap<LossReason, u64> {
    loss_by_tag[LossReason::UnsentAtEnd.tag() as usize] += loss_by_tag[0];
    let mut map = BTreeMap::new();
    for reason in LossReason::ALL {
        let n = loss_by_tag[reason.tag() as usize];
        if n > 0 {
            map.insert(reason, n);
        }
    }
    map
}

/// Builds the report by comparing the source ledger with the consumed topic.
///
/// `timeliness` is the stream's `S`; when present, delivered messages whose
/// first copy arrived later than `S` after creation are counted stale.
///
/// The counting pass is branch-free over the ledger's columns: outcome
/// cases go through [`DeliveryCase::classify_index`]'s lookup table and
/// loss reasons through tag-indexed counters, so the loop is a straight
/// stream over two dense columns plus the topic's copy counts.
#[must_use]
pub fn audit(
    ledger: &Ledger,
    topic: &ConsumedTopic,
    timeliness: Option<SimDuration>,
    ended_at: SimTime,
) -> DeliveryReport {
    let n_source = ledger.len() as u64;
    let mut latency = RunningMoments::new();
    let attempts = ledger.attempts_col();
    let lost_tags = ledger.lost_col();
    let mut delivered_once = 0u64;
    let mut lost = 0u64;
    let mut duplicated = 0u64;
    let mut extra_copies = 0u64;
    let mut case_counts = [0u64; 5];
    let mut loss_by_tag = [0u64; 7];
    let mut stale = 0u64;
    for idx in 0..attempts.len() {
        let key = MessageKey(idx as u64);
        let copies = topic.copies(key);
        case_counts[DeliveryCase::classify_index(attempts[idx], copies)] += 1;
        let is_lost = u64::from(copies == 0);
        lost += is_lost;
        delivered_once += u64::from(copies == 1);
        duplicated += u64::from(copies > 1);
        extra_copies += copies.saturating_sub(1);
        // Adds 0 to an arbitrary slot for delivered messages, so no branch.
        loss_by_tag[lost_tags[idx] as usize] += is_lost;
        if copies > 0 {
            if let Some(first) = topic.first_latency(key) {
                latency.record(first.as_secs_f64());
                if timeliness.is_some_and(|s| first > s) {
                    stale += 1;
                }
            }
        }
    }
    DeliveryReport {
        n_source,
        delivered_once,
        lost,
        duplicated,
        extra_copies,
        case_counts,
        loss_reasons: loss_map(loss_by_tag),
        latency: LatencyStats::from(&latency),
        stale,
        duration: ended_at.saturating_since(SimTime::ZERO),
    }
}

/// Integer part of the audit over one contiguous key range — everything
/// except the latency moments, which are order-sensitive f64 accumulation
/// and stay sequential.
#[derive(Default)]
struct AuditPartial {
    delivered_once: u64,
    lost: u64,
    duplicated: u64,
    extra_copies: u64,
    case_counts: [u64; 5],
    loss_by_tag: [u64; 7],
    stale: u64,
}

/// [`audit`] with `threads` worker threads.
///
/// Bit-identical to the sequential [`audit`] at any thread count: the
/// counting pass splits the key space into contiguous ranges whose partial
/// sums merge exactly (integer counters, per-reason maps), while the
/// latency [`RunningMoments`] — whose f64 accumulation is order-sensitive —
/// are computed in a separate sequential pass in key order.
#[must_use]
pub fn audit_threaded(
    ledger: &Ledger,
    topic: &ConsumedTopic,
    timeliness: Option<SimDuration>,
    ended_at: SimTime,
    threads: usize,
) -> DeliveryReport {
    let n = ledger.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return audit(ledger, topic, timeliness, ended_at);
    }
    let all_attempts = ledger.attempts_col();
    let all_tags = ledger.lost_col();
    let chunk = n.div_ceil(threads);
    let partials: Vec<AuditPartial> = std::thread::scope(|s| {
        let handles: Vec<_> = all_attempts
            .chunks(chunk)
            .zip(all_tags.chunks(chunk))
            .enumerate()
            .map(|(ci, (attempts, tags))| {
                let base = ci * chunk;
                s.spawn(move || {
                    let mut p = AuditPartial::default();
                    for (off, (&att, &tag)) in attempts.iter().zip(tags).enumerate() {
                        let key = MessageKey((base + off) as u64);
                        let copies = topic.copies(key);
                        p.case_counts[DeliveryCase::classify_index(att, copies)] += 1;
                        let is_lost = u64::from(copies == 0);
                        p.lost += is_lost;
                        p.delivered_once += u64::from(copies == 1);
                        p.duplicated += u64::from(copies > 1);
                        p.extra_copies += copies.saturating_sub(1);
                        p.loss_by_tag[tag as usize] += is_lost;
                        if copies > 0 {
                            if let Some(first) = topic.first_latency(key) {
                                if timeliness.is_some_and(|s| first > s) {
                                    p.stale += 1;
                                }
                            }
                        }
                    }
                    p
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("audit thread panicked"))
            .collect()
    });
    let mut report = DeliveryReport {
        n_source: n as u64,
        delivered_once: 0,
        lost: 0,
        duplicated: 0,
        extra_copies: 0,
        case_counts: [0; 5],
        loss_reasons: BTreeMap::new(),
        latency: LatencyStats::default(),
        stale: 0,
        duration: ended_at.saturating_since(SimTime::ZERO),
    };
    let mut loss_by_tag = [0u64; 7];
    for p in partials {
        report.delivered_once += p.delivered_once;
        report.lost += p.lost;
        report.duplicated += p.duplicated;
        report.extra_copies += p.extra_copies;
        for (i, c) in p.case_counts.iter().enumerate() {
            report.case_counts[i] += c;
        }
        for (i, c) in p.loss_by_tag.iter().enumerate() {
            loss_by_tag[i] += c;
        }
        report.stale += p.stale;
    }
    report.loss_reasons = loss_map(loss_by_tag);
    // Sequential latency pass, identical accumulation order to `audit`.
    let mut latency = RunningMoments::new();
    for idx in 0..n {
        let key = MessageKey(idx as u64);
        if topic.copies(key) > 0 {
            if let Some(first) = topic.first_latency(key) {
                latency.record(first.as_secs_f64());
            }
        }
    }
    report.latency = LatencyStats::from(&latency);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::ProduceRecord;
    use crate::cluster::{Cluster, ClusterSpec};

    fn build(
        outcomes: &[(
            u32, /* attempts */
            u64, /* copies */
            Option<LossReason>,
        )],
    ) -> DeliveryReport {
        let mut ledger = Ledger::new();
        let mut cluster = Cluster::new(ClusterSpec {
            brokers: 1,
            partitions: 1,
            ..ClusterSpec::default()
        })
        .unwrap();
        for (i, &(attempts, copies, lost)) in outcomes.iter().enumerate() {
            let key = MessageKey(i as u64);
            ledger.register(key, SimTime::ZERO);
            for _ in 0..attempts {
                ledger.note_attempt(key);
            }
            if let Some(reason) = lost {
                ledger.mark_lost(key, reason);
            }
            for _ in 0..copies {
                let leader = cluster.leader_of(0);
                cluster
                    .broker_mut(leader)
                    .unwrap()
                    .append(
                        0,
                        &[ProduceRecord {
                            key,
                            payload_bytes: 100,
                            created_at: SimTime::ZERO,
                        }],
                        SimTime::from_millis(10),
                    )
                    .unwrap();
            }
        }
        let topic = ConsumedTopic::read_all(&cluster);
        audit(
            &ledger,
            &topic,
            Some(SimDuration::from_millis(5)),
            SimTime::from_secs(1),
        )
    }

    #[test]
    fn metrics_match_paper_definitions() {
        let report = build(&[
            (1, 1, None),                               // Case1
            (1, 0, Some(LossReason::ExpiredInBuffer)),  // Case2
            (4, 0, Some(LossReason::RetriesExhausted)), // Case3
            (3, 1, None),                               // Case4
            (2, 2, None),                               // Case5
        ]);
        assert_eq!(report.n_source, 5);
        assert_eq!(report.lost, 2);
        assert_eq!(report.duplicated, 1);
        assert_eq!(report.extra_copies, 1);
        assert!((report.p_loss() - 0.4).abs() < 1e-12);
        assert!((report.p_dup() - 0.2).abs() < 1e-12);
        assert!((report.delivery_rate() - 0.6).abs() < 1e-12);
        for (case, expected) in DeliveryCase::all().into_iter().zip([1, 1, 1, 1, 1]) {
            assert_eq!(report.case_count(case), expected, "{case}");
        }
    }

    #[test]
    fn loss_reasons_are_attributed() {
        let report = build(&[
            (0, 0, Some(LossReason::BufferOverflow)),
            (1, 0, Some(LossReason::ConnectionReset)),
            (1, 0, None), // producer never marked it: unsent-at-end
        ]);
        assert_eq!(report.loss_reasons[&LossReason::BufferOverflow], 1);
        assert_eq!(report.loss_reasons[&LossReason::ConnectionReset], 1);
        assert_eq!(report.loss_reasons[&LossReason::UnsentAtEnd], 1);
    }

    #[test]
    fn staleness_counts_late_deliveries() {
        // Latency is 10ms (appended_at 10ms, created 0); S = 5ms → stale.
        let report = build(&[(1, 1, None)]);
        assert_eq!(report.stale, 1);
        assert!((report.latency.mean_s - 0.010).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let report = build(&[]);
        assert_eq!(report.p_loss(), 0.0);
        assert_eq!(report.p_dup(), 0.0);
        assert_eq!(report.throughput(), 0.0);
    }

    #[test]
    fn ghost_copies_override_producer_pessimism() {
        // Producer thought it lost the message, but a copy landed: the audit
        // trusts the log (Case 4: attempts > 1, one copy).
        let report = build(&[(2, 1, Some(LossReason::RetriesExhausted))]);
        assert_eq!(report.lost, 0);
        assert_eq!(report.case_count(DeliveryCase::Case4), 1);
    }
}
