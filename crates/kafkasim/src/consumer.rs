//! The consumer: reads every partition back after an experiment.
//!
//! The paper's methodology (§III-E): "when the producer finishes, we stop
//! the fault injection and start a consumer container to consume all
//! messages in this topic. Finally, we analyze the results by comparing the
//! unique keys from source data and the messages received by the consumer."

use desim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::message::MessageKey;

/// One message copy as read back by the consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsumedRecord {
    /// The unique key.
    pub key: MessageKey,
    /// Partition it was stored in.
    pub partition: u32,
    /// Offset within that partition.
    pub offset: u64,
    /// Producer-to-broker latency of this copy.
    pub latency: SimDuration,
}

/// Everything the consumer saw, aggregated per key.
///
/// Message keys are the dense sequence numbers the source hands out, so
/// the per-key aggregates live in plain vectors indexed by key — the audit
/// does a couple of lookups per message and a hash map would dominate its
/// cost. A key with `copies_per_key[k] == 0` was never consumed and its
/// `first_latency[k]` slot is meaningless.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConsumedTopic {
    records: Vec<ConsumedRecord>,
    copies_per_key: Vec<u64>,
    first_latency: Vec<SimDuration>,
}

impl ConsumedTopic {
    /// Reads the whole topic from a cluster.
    #[must_use]
    pub fn read_all(cluster: &Cluster) -> Self {
        Self::read_brokers(cluster.brokers())
    }

    /// Reads the whole topic with `threads` reader threads, one contiguous
    /// broker range per thread.
    ///
    /// Bit-identical to [`ConsumedTopic::read_all`] at any thread count:
    /// records concatenate in broker order (each thread scans a contiguous
    /// broker range, partials merge in range order), per-key copy counts
    /// are integer sums, and the first-copy latency is an exact `min` over
    /// copies — all order-independent merges.
    #[must_use]
    pub fn read_all_threaded(cluster: &Cluster, threads: usize) -> Self {
        let brokers = cluster.brokers();
        let threads = threads.clamp(1, brokers.len().max(1));
        if threads == 1 {
            return Self::read_brokers(brokers);
        }
        let chunk = brokers.len().div_ceil(threads);
        let partials: Vec<ConsumedTopic> = std::thread::scope(|s| {
            let handles: Vec<_> = brokers
                .chunks(chunk)
                .map(|range| s.spawn(move || Self::read_brokers(range)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("topic reader thread panicked"))
                .collect()
        });
        let mut topic = ConsumedTopic::default();
        topic
            .records
            .reserve_exact(partials.iter().map(|p| p.records.len()).sum());
        for p in partials {
            if p.copies_per_key.len() > topic.copies_per_key.len() {
                topic.copies_per_key.resize(p.copies_per_key.len(), 0);
                topic
                    .first_latency
                    .resize(p.copies_per_key.len(), SimDuration::ZERO);
            }
            for (k, &copies) in p.copies_per_key.iter().enumerate() {
                if copies == 0 {
                    continue;
                }
                if topic.copies_per_key[k] == 0 {
                    topic.first_latency[k] = p.first_latency[k];
                } else {
                    topic.first_latency[k] = topic.first_latency[k].min(p.first_latency[k]);
                }
                topic.copies_per_key[k] += copies;
            }
            topic.records.extend(p.records);
        }
        topic
    }

    /// Scans a broker range into a partial topic.
    fn read_brokers(brokers: &[crate::broker::Broker]) -> Self {
        let total: usize = brokers.iter().flat_map(|b| b.logs()).map(|l| l.len()).sum();
        let mut topic = ConsumedTopic::default();
        topic.records.reserve_exact(total);
        for broker in brokers {
            for log in broker.logs() {
                // Stream the log's columns directly (key + the two
                // timestamps); the offset is the column index.
                let partition = log.partition();
                let keys = log.keys();
                let created = log.created_col();
                let appended = log.appended_col();
                for (i, &key) in keys.iter().enumerate() {
                    let consumed = ConsumedRecord {
                        key,
                        partition,
                        offset: i as u64,
                        latency: appended[i].saturating_since(created[i]),
                    };
                    let k = key.0 as usize;
                    if k >= topic.copies_per_key.len() {
                        topic.copies_per_key.resize(k + 1, 0);
                        topic.first_latency.resize(k + 1, SimDuration::ZERO);
                    }
                    if topic.copies_per_key[k] == 0 {
                        topic.first_latency[k] = consumed.latency;
                    } else {
                        topic.first_latency[k] = topic.first_latency[k].min(consumed.latency);
                    }
                    topic.copies_per_key[k] += 1;
                    topic.records.push(consumed);
                }
            }
        }
        topic
    }

    /// Total record copies read (including duplicates).
    #[must_use]
    pub fn total_records(&self) -> usize {
        self.records.len()
    }

    /// Number of copies stored for `key` (0 = lost).
    #[must_use]
    pub fn copies(&self, key: MessageKey) -> u64 {
        self.copies_per_key
            .get(key.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The earliest-copy latency for `key`, if delivered.
    #[must_use]
    pub fn first_latency(&self, key: MessageKey) -> Option<SimDuration> {
        let k = key.0 as usize;
        if self.copies_per_key.get(k).copied().unwrap_or(0) == 0 {
            None
        } else {
            Some(self.first_latency[k])
        }
    }

    /// All records read, in partition/offset order per partition.
    #[must_use]
    pub fn records(&self) -> &[ConsumedRecord] {
        &self.records
    }

    /// Distinct keys observed.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        self.copies_per_key.iter().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::ProduceRecord;
    use crate::cluster::ClusterSpec;
    use desim::SimTime;

    fn cluster_with_records(appends: &[(u32, u64)]) -> Cluster {
        let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
        for &(partition, key) in appends {
            let leader = cluster.leader_of(partition);
            cluster
                .broker_mut(leader)
                .unwrap()
                .append(
                    partition,
                    &[ProduceRecord {
                        key: MessageKey(key),
                        payload_bytes: 100,
                        created_at: SimTime::ZERO,
                    }],
                    SimTime::from_millis(5),
                )
                .unwrap();
        }
        cluster
    }

    #[test]
    fn reads_across_partitions() {
        let cluster = cluster_with_records(&[(0, 1), (1, 2), (2, 3)]);
        let topic = ConsumedTopic::read_all(&cluster);
        assert_eq!(topic.total_records(), 3);
        assert_eq!(topic.distinct_keys(), 3);
        for k in 1..=3 {
            assert_eq!(topic.copies(MessageKey(k)), 1);
        }
        assert_eq!(topic.copies(MessageKey(99)), 0);
    }

    #[test]
    fn duplicates_counted_per_key() {
        let cluster = cluster_with_records(&[(0, 7), (0, 7), (1, 7)]);
        let topic = ConsumedTopic::read_all(&cluster);
        assert_eq!(topic.copies(MessageKey(7)), 3);
        assert_eq!(topic.distinct_keys(), 1);
    }

    #[test]
    fn first_latency_is_minimum_over_copies() {
        let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let rec = ProduceRecord {
            key: MessageKey(1),
            payload_bytes: 10,
            created_at: SimTime::ZERO,
        };
        let leader = cluster.leader_of(0);
        let b = cluster.broker_mut(leader).unwrap();
        b.append(0, &[rec], SimTime::from_millis(30)).unwrap();
        b.append(0, &[rec], SimTime::from_millis(10)).unwrap();
        let topic = ConsumedTopic::read_all(&cluster);
        assert_eq!(
            topic.first_latency(MessageKey(1)),
            Some(SimDuration::from_millis(10))
        );
    }

    #[test]
    fn empty_cluster_reads_empty() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let topic = ConsumedTopic::read_all(&cluster);
        assert_eq!(topic.total_records(), 0);
        assert_eq!(topic.first_latency(MessageKey(0)), None);
    }
}
