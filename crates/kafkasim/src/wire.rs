//! Wire sizing of the (simulated) Kafka binary protocol.
//!
//! Kafka speaks a binary protocol over TCP. For reliability purposes only
//! the *sizes* matter: they determine packet counts, serialisation times and
//! bandwidth contention. The constants below approximate the Kafka v2
//! record-batch framing.

use serde::{Deserialize, Serialize};

/// Protocol overhead constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireFormat {
    /// Fixed bytes per produce request (request header, topic/partition
    /// framing, batch header).
    pub request_overhead: u64,
    /// Bytes per record beyond its payload (offset delta, timestamp delta,
    /// key, varint lengths).
    pub record_overhead: u64,
    /// Size of a produce response (acks=1) on the wire.
    pub response_bytes: u64,
}

impl Default for WireFormat {
    fn default() -> Self {
        WireFormat {
            request_overhead: 94,
            record_overhead: 40,
            response_bytes: 68,
        }
    }
}

impl WireFormat {
    /// Application bytes of a produce request carrying the given payload
    /// sizes.
    #[must_use]
    pub fn request_bytes<I>(&self, payload_sizes: I) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        let mut total = self.request_overhead;
        for p in payload_sizes {
            total += self.record_overhead + p;
        }
        total
    }

    /// Request bytes for a batch of `count` equally-sized messages.
    #[must_use]
    pub fn request_bytes_uniform(&self, count: usize, payload: u64) -> u64 {
        self.request_overhead + (self.record_overhead + payload) * count as u64
    }

    /// Wire efficiency: payload bytes over total request bytes.
    #[must_use]
    pub fn efficiency(&self, count: usize, payload: u64) -> f64 {
        let useful = payload * count as u64;
        let total = self.request_bytes_uniform(count, payload);
        useful as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_bytes_sum_payloads() {
        let w = WireFormat::default();
        assert_eq!(
            w.request_bytes([100, 200]),
            w.request_overhead + 2 * w.record_overhead + 300
        );
        assert_eq!(w.request_bytes_uniform(2, 150), w.request_bytes([150, 150]));
    }

    #[test]
    fn batching_amortises_overhead() {
        let w = WireFormat::default();
        let single = w.request_bytes_uniform(1, 100);
        let batched = w.request_bytes_uniform(10, 100);
        assert!(
            batched < single * 10,
            "10-batch beats 10 singles on the wire"
        );
        assert!(w.efficiency(10, 100) > w.efficiency(1, 100));
    }

    #[test]
    fn efficiency_grows_with_message_size() {
        let w = WireFormat::default();
        assert!(w.efficiency(1, 1_000) > w.efficiency(1, 50));
    }

    #[test]
    fn empty_batch_is_pure_overhead() {
        let w = WireFormat::default();
        assert_eq!(w.request_bytes(std::iter::empty()), w.request_overhead);
    }
}
