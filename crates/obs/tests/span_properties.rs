//! Property tests of the span profiler's structural guarantees: any
//! LIFO-disciplined sequence of span opens and closes yields a snapshot
//! whose recorded events are well-nested, time-monotone, and consistent
//! with the exact aggregates.

use obs::Profiler;
use proptest::prelude::*;

/// Names for generated spans; a small pool forces path reuse so the
/// interner's (parent, name) keying gets exercised.
const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Replays a script of open (`true`) / close (`false`) operations with
/// an explicit guard stack, skipping closes on an empty stack. Returns
/// how many spans were closed (opens left on the stack at the end drop
/// in LIFO order and close too).
fn replay(prof: &Profiler, script: &[(bool, u8)]) -> usize {
    let mut guards = Vec::new();
    let mut closed = 0;
    for &(open, name) in script {
        if open {
            guards.push(prof.span(NAMES[name as usize % NAMES.len()]));
        } else if guards.pop().is_some() {
            closed += 1;
        }
    }
    closed + guards.len()
}

proptest! {
    /// Every recorded span closes no earlier than it opens, and the
    /// snapshot records exactly the spans the script closed.
    #[test]
    fn events_are_time_ordered_and_complete(
        script in proptest::collection::vec(
            (proptest::bool::ANY, 0u8..4), 1..80),
    ) {
        let prof = Profiler::enabled();
        let closed = replay(&prof, &script);
        let snap = prof.snapshot();
        prop_assert_eq!(snap.events.len(), closed);
        prop_assert_eq!(snap.dropped, 0);
        for ev in &snap.events {
            prop_assert!(ev.end_ns >= ev.start_ns, "span {} closes before it opens", ev.path);
        }
    }

    /// Recorded spans form a laminar family: any two either nest or are
    /// disjoint — intervals never partially overlap. Ties need care: a
    /// parent and child may share both endpoints on a fast machine, in
    /// which case depth decides containment.
    #[test]
    fn events_are_well_nested(
        script in proptest::collection::vec(
            (proptest::bool::ANY, 0u8..4), 1..60),
    ) {
        let prof = Profiler::enabled();
        replay(&prof, &script);
        let snap = prof.snapshot();
        for (i, a) in snap.events.iter().enumerate() {
            for b in &snap.events[i + 1..] {
                let disjoint = a.end_ns <= b.start_ns || b.end_ns <= a.start_ns;
                let a_in_b = b.start_ns <= a.start_ns && a.end_ns <= b.end_ns && a.depth > b.depth;
                let b_in_a = a.start_ns <= b.start_ns && b.end_ns <= a.end_ns && b.depth > a.depth;
                prop_assert!(
                    disjoint || a_in_b || b_in_a,
                    "spans {} [{}, {}] and {} [{}, {}] partially overlap",
                    a.path, a.start_ns, a.end_ns, b.path, b.start_ns, b.end_ns
                );
            }
        }
    }

    /// The Chrome trace export of any script is balanced (every `E` has
    /// a matching earlier `B`) and its timestamps are non-decreasing —
    /// exactly what Perfetto requires of a single-threaded track.
    #[test]
    fn chrome_trace_is_balanced_and_monotone(
        script in proptest::collection::vec(
            (proptest::bool::ANY, 0u8..4), 1..60),
    ) {
        let prof = Profiler::enabled();
        replay(&prof, &script);
        let trace = prof.snapshot().to_chrome_trace();
        let value: serde::Value = serde_json::from_str(&trace).expect("trace parses");
        let serde::Value::Seq(items) = value else {
            panic!("chrome trace is not an array");
        };
        let mut depth = 0i64;
        let mut last_ts = f64::MIN;
        for item in &items {
            let serde::Value::Map(m) = item else { panic!("event is not an object") };
            let Some((_, serde::Value::Str(ph))) = m.iter().find(|(k, _)| k == "ph") else {
                panic!("missing ph");
            };
            let ts = match m.iter().find(|(k, _)| k == "ts") {
                Some((_, serde::Value::Float(f))) => *f,
                Some((_, serde::Value::UInt(u))) => *u as f64,
                other => panic!("missing or non-numeric ts: {other:?}"),
            };
            prop_assert!(ts >= last_ts, "timestamps must be non-decreasing");
            last_ts = ts;
            match ph.as_str() {
                "B" => depth += 1,
                "E" => depth -= 1,
                other => panic!("unexpected phase {other}"),
            }
            prop_assert!(depth >= 0, "E without matching B");
        }
        prop_assert_eq!(depth, 0, "unbalanced B/E events");
    }

    /// Aggregates stay consistent with the events: per-path call counts
    /// match the recorded instances, self time never exceeds total time,
    /// and each path's total equals the sum of its recorded durations.
    #[test]
    fn aggregates_match_events(
        script in proptest::collection::vec(
            (proptest::bool::ANY, 0u8..4), 1..80),
    ) {
        let prof = Profiler::enabled();
        replay(&prof, &script);
        let snap = prof.snapshot();
        for stat in &snap.spans {
            prop_assert!(stat.self_ns <= stat.total_ns);
            let instances: Vec<_> = snap.events.iter().filter(|e| e.path == stat.path).collect();
            prop_assert_eq!(instances.len() as u64, stat.calls, "calls mismatch for {}", &stat.path);
            let total: u64 = instances.iter().map(|e| e.end_ns - e.start_ns).sum();
            prop_assert_eq!(total, stat.total_ns, "total mismatch for {}", &stat.path);
        }
    }
}
