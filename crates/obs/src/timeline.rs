//! Per-message timeline reconstruction: replay a recorded trace and
//! explain the fate of every message.
//!
//! [`TimelineReport::reconstruct`] groups a sink's events by message key
//! and classifies each key as delivered once, duplicated, or lost — with
//! the *traced cause*: the `Expired` event (with its [`LossCause`]), the
//! `ConnectionReset` that swallowed it, or the retry / teardown re-append
//! that produced the extra copy. The aggregate counts are designed to be
//! cross-checked against the end-of-run audit (`kafkasim` provides the
//! comparison): every `P_l` and `P_d` count should be attributable here.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::event::{LossCause, TraceEvent};

/// How a duplicated message got its extra copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DupCause {
    /// A request was appended during connection teardown, so its ack never
    /// reached the producer, which then retried — the classic ack-lost
    /// duplication (the paper's Case 5).
    TeardownReappend,
    /// A retry re-appended a batch whose earlier attempt had already been
    /// persisted (late or lost ack).
    RetryReappend,
}

impl core::fmt::Display for DupCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            DupCause::TeardownReappend => "teardown-reappend",
            DupCause::RetryReappend => "retry-reappend",
        };
        write!(f, "{s}")
    }
}

/// The reconstructed fate of one message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MessageFate {
    /// Exactly one copy reached a partition log.
    DeliveredOnce,
    /// More than one copy reached the logs.
    Duplicated {
        /// Total copies found.
        copies: u64,
        /// Appends that were flagged `duplicate` as they happened. A fully
        /// explained duplicate has `duplicate_appends == copies - 1`.
        duplicate_appends: u64,
        /// The traced mechanism, when one is visible in the events.
        cause: Option<DupCause>,
    },
    /// No copy reached the logs.
    Lost {
        /// The traced loss mode, when one is visible in the events.
        cause: Option<LossCause>,
    },
}

/// One message's reconstructed story: its fate plus every event that
/// mentions it (directly, or through its batch or connection).
#[derive(Debug, Clone)]
pub struct MessageTimeline {
    /// The message key.
    pub key: u64,
    /// The reconstructed fate.
    pub fate: MessageFate,
    /// Events touching this message, in trace order.
    pub events: Vec<TraceEvent>,
}

impl MessageTimeline {
    /// A human-readable, line-per-event narration of the message's life.
    #[must_use]
    pub fn narrate(&self) -> String {
        let mut out = format!("msg#{}: {:?}\n", self.key, self.fate);
        for ev in &self.events {
            out.push_str("  ");
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }
}

/// The reconstruction of a whole trace, keyed by message.
#[derive(Debug, Clone, Default)]
pub struct TimelineReport {
    timelines: BTreeMap<u64, MessageTimeline>,
}

impl TimelineReport {
    /// Replays `events` (in recorded order) into per-message timelines.
    #[must_use]
    pub fn reconstruct(events: &[TraceEvent]) -> Self {
        // Batch membership: batch id → keys riding in it.
        let mut batch_keys: HashMap<u64, Vec<u64>> = HashMap::new();
        for ev in events {
            if let TraceEvent::BatchFormed { batch, keys, .. } = ev {
                batch_keys.insert(*batch, keys.clone());
            }
        }

        // Attach every event to the keys it concerns, preserving order.
        let mut per_key: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
        let mut attach = |key: u64, ev: &TraceEvent| {
            per_key.entry(key).or_default().push(ev.clone());
        };
        for ev in events {
            match ev {
                TraceEvent::Enqueued { key, .. }
                | TraceEvent::Expired { key, .. }
                | TraceEvent::BrokerAppend { key, .. }
                | TraceEvent::ConsumerRead { key, .. } => attach(*key, ev),
                TraceEvent::BatchFormed { keys, .. } => {
                    for k in keys {
                        attach(*k, ev);
                    }
                }
                TraceEvent::RequestSent { batch, .. }
                | TraceEvent::AckReceived { batch, .. }
                | TraceEvent::Retry { batch, .. } => {
                    if let Some(keys) = batch_keys.get(batch) {
                        for k in keys {
                            attach(*k, ev);
                        }
                    }
                }
                TraceEvent::ConnectionReset { lost_keys, .. } => {
                    for k in lost_keys {
                        attach(*k, ev);
                    }
                }
                TraceEvent::LeaderElected { truncated_keys, .. } => {
                    // Attach once per distinct key: classify() re-counts the
                    // truncation multiplicity from the event itself.
                    let mut seen: Vec<u64> = truncated_keys.clone();
                    seen.sort_unstable();
                    seen.dedup();
                    for k in seen {
                        attach(k, ev);
                    }
                }
                // Cluster- and group-level events with no per-message story.
                TraceEvent::ReplicaFetch { .. }
                | TraceEvent::IsrShrink { .. }
                | TraceEvent::IsrExpand { .. }
                | TraceEvent::BrokerDown { .. }
                | TraceEvent::BrokerUp { .. }
                | TraceEvent::ConsumerJoined { .. }
                | TraceEvent::ConsumerLeft { .. }
                | TraceEvent::PartitionsAssigned { .. }
                | TraceEvent::CounterSample { .. }
                | TraceEvent::PolicyDrift { .. }
                | TraceEvent::PolicyRefit { .. } => {}
            }
        }

        let timelines = per_key
            .into_iter()
            .map(|(key, events)| {
                let fate = classify(key, &events);
                (key, MessageTimeline { key, fate, events })
            })
            .collect();
        TimelineReport { timelines }
    }

    /// The timeline of one key, when the trace mentions it.
    #[must_use]
    pub fn timeline(&self, key: u64) -> Option<&MessageTimeline> {
        self.timelines.get(&key)
    }

    /// All timelines, in key order.
    pub fn timelines(&self) -> impl Iterator<Item = &MessageTimeline> {
        self.timelines.values()
    }

    /// Messages the trace mentions.
    #[must_use]
    pub fn n_messages(&self) -> u64 {
        self.timelines.len() as u64
    }

    /// Messages reconstructed as delivered exactly once.
    #[must_use]
    pub fn n_delivered_once(&self) -> u64 {
        self.count(|f| matches!(f, MessageFate::DeliveredOnce))
    }

    /// Messages reconstructed as lost.
    #[must_use]
    pub fn n_lost(&self) -> u64 {
        self.count(|f| matches!(f, MessageFate::Lost { .. }))
    }

    /// Messages reconstructed as duplicated.
    #[must_use]
    pub fn n_duplicated(&self) -> u64 {
        self.count(|f| matches!(f, MessageFate::Duplicated { .. }))
    }

    fn count(&self, pred: impl Fn(&MessageFate) -> bool) -> u64 {
        self.timelines.values().filter(|t| pred(&t.fate)).count() as u64
    }

    /// Lost messages grouped by their traced cause (unattributed losses
    /// are not included — see [`TimelineReport::unattributed_lost`]).
    #[must_use]
    pub fn lost_by_cause(&self) -> BTreeMap<LossCause, u64> {
        let mut out = BTreeMap::new();
        for t in self.timelines.values() {
            if let MessageFate::Lost { cause: Some(c) } = t.fate {
                *out.entry(c).or_insert(0) += 1;
            }
        }
        out
    }

    /// Keys reconstructed as lost without any traced cause.
    #[must_use]
    pub fn unattributed_lost(&self) -> Vec<u64> {
        self.timelines
            .values()
            .filter(|t| matches!(t.fate, MessageFate::Lost { cause: None }))
            .map(|t| t.key)
            .collect()
    }

    /// Keys whose extra copies are not fully covered by duplicate-flagged
    /// appends with a visible mechanism.
    #[must_use]
    pub fn unattributed_duplicates(&self) -> Vec<u64> {
        self.timelines
            .values()
            .filter(|t| {
                matches!(
                    t.fate,
                    MessageFate::Duplicated {
                        copies,
                        duplicate_appends,
                        cause,
                    } if duplicate_appends + 1 < copies || cause.is_none()
                )
            })
            .map(|t| t.key)
            .collect()
    }

    /// `true` when every lost and every duplicated message has a traced
    /// cause.
    #[must_use]
    pub fn fully_attributed(&self) -> bool {
        self.unattributed_lost().is_empty() && self.unattributed_duplicates().is_empty()
    }
}

fn classify(key: u64, events: &[TraceEvent]) -> MessageFate {
    let mut appends = 0u64;
    let mut truncated = 0u64;
    let mut reads = 0u64;
    let mut duplicate_appends = 0u64;
    let mut via_teardown = false;
    let mut retried = false;
    let mut first_loss: Option<LossCause> = None;
    for ev in events {
        match ev {
            TraceEvent::BrokerAppend {
                key: k,
                duplicate,
                via_teardown: tear,
                ..
            } if *k == key => {
                appends += 1;
                if *duplicate {
                    duplicate_appends += 1;
                }
                if *tear {
                    via_teardown = true;
                }
            }
            TraceEvent::ConsumerRead { key: k, .. } if *k == key => reads += 1,
            TraceEvent::Expired { key: k, cause, .. } if *k == key => {
                first_loss.get_or_insert(*cause);
            }
            TraceEvent::ConnectionReset { lost_keys, .. } if lost_keys.contains(&key) => {
                first_loss.get_or_insert(LossCause::ConnectionReset);
            }
            TraceEvent::LeaderElected {
                truncated_keys,
                lost_keys,
                ..
            } => {
                truncated += truncated_keys.iter().filter(|&&k| k == key).count() as u64;
                if lost_keys.contains(&key) {
                    first_loss.get_or_insert(LossCause::LeaderFailover);
                }
            }
            TraceEvent::Retry { .. } => retried = true,
            TraceEvent::RequestSent { attempt, .. } if *attempt > 1 => retried = true,
            _ => {}
        }
    }
    // The consumer replay is the ground truth (it mirrors the audit);
    // surviving appends (appends minus leader-election truncations)
    // corroborate it when both are present.
    let copies = reads.max(appends.saturating_sub(truncated));
    match copies {
        0 => MessageFate::Lost { cause: first_loss },
        1 => MessageFate::DeliveredOnce,
        _ => MessageFate::Duplicated {
            copies,
            duplicate_appends,
            cause: if via_teardown {
                Some(DupCause::TeardownReappend)
            } else if retried {
                Some(DupCause::RetryReappend)
            } else {
                None
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimDuration, SimTime};

    fn enq(key: u64, at_ms: u64) -> TraceEvent {
        TraceEvent::Enqueued {
            at: SimTime::from_millis(at_ms),
            key,
            partition: 0,
            deadline: SimTime::from_millis(at_ms + 500),
        }
    }

    fn append(key: u64, batch: u64, at_ms: u64, duplicate: bool, tear: bool) -> TraceEvent {
        TraceEvent::BrokerAppend {
            at: SimTime::from_millis(at_ms),
            batch,
            request: batch,
            broker: 0,
            partition: 0,
            key,
            offset: 0,
            latency: SimDuration::from_millis(8),
            duplicate,
            via_teardown: tear,
        }
    }

    fn read(key: u64, at_ms: u64) -> TraceEvent {
        TraceEvent::ConsumerRead {
            at: SimTime::from_millis(at_ms),
            key,
            partition: 0,
            offset: 0,
            latency: SimDuration::from_millis(10),
        }
    }

    #[test]
    fn classifies_delivery_loss_and_duplication() {
        let events = vec![
            enq(0, 0),
            enq(1, 1),
            enq(2, 2),
            TraceEvent::BatchFormed {
                at: SimTime::from_millis(3),
                batch: 0,
                partition: 0,
                keys: vec![0, 2],
                bytes: 400,
            },
            TraceEvent::Expired {
                at: SimTime::from_millis(600),
                key: 1,
                cause: LossCause::ExpiredInBuffer,
                batch: None,
            },
            append(0, 0, 10, false, false),
            append(2, 0, 10, false, true),
            TraceEvent::Retry {
                at: SimTime::from_millis(400),
                batch: 0,
                request: 1,
                conn: 0,
                epoch: 1,
                attempt: 2,
            },
            append(0, 0, 410, true, false),
            append(2, 0, 410, true, false),
            read(0, 1000),
            read(0, 1000),
            read(2, 1000),
            read(2, 1000),
        ];
        let report = TimelineReport::reconstruct(&events);
        assert_eq!(report.n_messages(), 3);
        assert_eq!(report.n_lost(), 1);
        assert_eq!(report.n_duplicated(), 2);
        assert_eq!(report.n_delivered_once(), 0);
        assert_eq!(
            report.timeline(1).unwrap().fate,
            MessageFate::Lost {
                cause: Some(LossCause::ExpiredInBuffer)
            }
        );
        // Key 2 rode a teardown append; key 0 a plain retry re-append.
        assert_eq!(
            report.timeline(2).unwrap().fate,
            MessageFate::Duplicated {
                copies: 2,
                duplicate_appends: 1,
                cause: Some(DupCause::TeardownReappend)
            }
        );
        assert_eq!(
            report.timeline(0).unwrap().fate,
            MessageFate::Duplicated {
                copies: 2,
                duplicate_appends: 1,
                cause: Some(DupCause::RetryReappend)
            }
        );
        assert!(report.fully_attributed());
        assert_eq!(
            report.lost_by_cause().get(&LossCause::ExpiredInBuffer),
            Some(&1)
        );
        assert!(report.timeline(0).unwrap().narrate().contains("msg#0"));
    }

    #[test]
    fn amo_reset_attributes_socket_losses() {
        let events = vec![
            enq(5, 0),
            TraceEvent::ConnectionReset {
                at: SimTime::from_millis(80),
                conn: 0,
                epoch: 0,
                lost_keys: vec![5],
            },
        ];
        let report = TimelineReport::reconstruct(&events);
        assert_eq!(
            report.timeline(5).unwrap().fate,
            MessageFate::Lost {
                cause: Some(LossCause::ConnectionReset)
            }
        );
        assert!(report.fully_attributed());
    }

    #[test]
    fn unclean_election_truncation_attributes_broker_loss() {
        // Key 20: appended once, then truncated away entirely → lost to
        // the leader failover. Key 21: appended twice (one duplicate), one
        // copy truncated → net one copy, delivered once.
        let events = vec![
            enq(20, 0),
            enq(21, 1),
            append(20, 0, 10, false, false),
            append(21, 0, 11, false, false),
            append(21, 1, 12, true, false),
            TraceEvent::LeaderElected {
                at: SimTime::from_millis(300),
                partition: 0,
                leader: 1,
                clean: false,
                truncated_keys: vec![20, 21],
                lost_keys: vec![20],
            },
            read(21, 1000),
        ];
        let report = TimelineReport::reconstruct(&events);
        assert_eq!(
            report.timeline(20).unwrap().fate,
            MessageFate::Lost {
                cause: Some(LossCause::LeaderFailover)
            }
        );
        assert_eq!(
            report.timeline(21).unwrap().fate,
            MessageFate::DeliveredOnce
        );
        assert!(report.fully_attributed());
        assert_eq!(
            report.lost_by_cause().get(&LossCause::LeaderFailover),
            Some(&1)
        );
    }

    #[test]
    fn untraced_loss_is_flagged_not_invented() {
        let events = vec![enq(9, 0)];
        let report = TimelineReport::reconstruct(&events);
        assert_eq!(report.n_lost(), 1);
        assert!(!report.fully_attributed());
        assert_eq!(report.unattributed_lost(), vec![9]);
    }
}
