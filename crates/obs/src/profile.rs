//! Hierarchical wall-clock span profiler.
//!
//! The profiler answers "where does *wall-clock* time go inside a run" —
//! the complement of the trace-event stream, which explains where
//! *simulated* time and messages go. It follows the same gating
//! discipline as [`crate::NoopSink`]: a disabled [`Profiler`] is a `None`
//! and [`Profiler::span`] returns an inert guard without reading the
//! clock or touching a lock, so instrumented hot paths cost one branch
//! when profiling is off.
//!
//! Spans form a tree. Opening a span pushes a frame; dropping its
//! [`SpanGuard`] pops the frame and charges the elapsed wall-clock time
//! to the span's *path* — the chain of ancestor names, so
//! `kafkasim.dispatch` under `desim.run-slice` aggregates separately
//! from a hypothetical top-level `kafkasim.dispatch`. Guards must be
//! dropped in LIFO order (the natural result of holding them in local
//! scopes), which the [`span!`](crate::span!) macro guarantees.
//!
//! Two export formats come out of a [`SpanProfile`] snapshot:
//!
//! * [`SpanProfile::to_chrome_trace`] — a Chrome trace-event JSON array
//!   of `B`/`E` duration events, loadable in Perfetto / `chrome://tracing`;
//! * [`SpanProfile::to_folded`] — folded flamegraph stacks
//!   (`parent;child self-time`), consumable by standard flamegraph tools.
//!
//! Aggregation (call counts, total and self time per path) is exact even
//! when the per-span record buffer hits its cap; only the replayable
//! event list is bounded.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Per-path bookkeeping: the interned span tree node.
#[derive(Debug, Clone, Copy)]
struct PathNode {
    parent: Option<usize>,
    name: &'static str,
    depth: usize,
}

/// Exact aggregate for one path, maintained on every span close.
#[derive(Debug, Clone, Copy, Default)]
struct Agg {
    calls: u64,
    total_ns: u64,
    child_ns: u64,
}

/// One closed span instance, kept (up to a cap) for trace export.
#[derive(Debug, Clone, Copy)]
struct Record {
    path: usize,
    start_ns: u64,
    end_ns: u64,
}

/// An open span on the stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    path: usize,
    start_ns: u64,
}

/// How many closed spans are kept verbatim for the Chrome trace before
/// further spans only feed the (exact) aggregates.
const RECORD_CAP: usize = 1 << 20;

#[derive(Debug)]
struct Inner {
    t0: Instant,
    stack: Vec<Frame>,
    index: HashMap<(Option<usize>, &'static str), usize>,
    paths: Vec<PathNode>,
    agg: Vec<Agg>,
    records: Vec<Record>,
    dropped: u64,
}

impl Inner {
    fn new() -> Self {
        Inner {
            t0: Instant::now(),
            stack: Vec::new(),
            index: HashMap::new(),
            paths: Vec::new(),
            agg: Vec::new(),
            records: Vec::new(),
            dropped: 0,
        }
    }

    fn intern(&mut self, parent: Option<usize>, name: &'static str) -> usize {
        if let Some(&idx) = self.index.get(&(parent, name)) {
            return idx;
        }
        let depth = parent.map_or(0, |p| self.paths[p].depth + 1);
        let idx = self.paths.len();
        self.paths.push(PathNode {
            parent,
            name,
            depth,
        });
        self.agg.push(Agg::default());
        self.index.insert((parent, name), idx);
        idx
    }

    fn full_path(&self, mut idx: usize) -> String {
        let mut names = Vec::with_capacity(self.paths[idx].depth + 1);
        loop {
            names.push(self.paths[idx].name);
            match self.paths[idx].parent {
                Some(p) => idx = p,
                None => break,
            }
        }
        names.reverse();
        names.join(";")
    }
}

/// A cloneable handle to a span profiler, or a disabled placeholder.
///
/// Cloning shares the underlying recorder, so the same profiler can be
/// threaded through the simulator, the planner and the trainer and all
/// their spans land in one tree. The handle is `Send + Sync`; spans must
/// still open and close in LIFO order within one logical flow.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Profiler {
    /// A disabled profiler: [`Profiler::span`] is a no-op costing one
    /// branch, no clock read, no allocation, no lock.
    #[must_use]
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// An enabled profiler with its own clock origin and empty span tree.
    #[must_use]
    pub fn enabled() -> Self {
        Profiler {
            inner: Some(Arc::new(Mutex::new(Inner::new()))),
        }
    }

    /// Whether spans are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name` under the currently open span (if any).
    ///
    /// The span closes — and its wall-clock duration is charged — when
    /// the returned guard drops. `name` is `&'static str` so interning
    /// never copies; use stable, dot-namespaced names
    /// (`"kafkasim.dispatch"`).
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { inner: None },
            Some(arc) => {
                let mut g = arc.lock().expect("profiler mutex poisoned");
                let now_ns = elapsed_ns(g.t0);
                let parent = g.stack.last().map(|f| f.path);
                let path = g.intern(parent, name);
                g.stack.push(Frame {
                    path,
                    start_ns: now_ns,
                });
                SpanGuard {
                    inner: Some(Arc::clone(arc)),
                }
            }
        }
    }

    /// Snapshots the recorded span tree. Returns an empty profile when
    /// disabled. Open (not yet dropped) spans are not included.
    #[must_use]
    pub fn snapshot(&self) -> SpanProfile {
        let Some(arc) = &self.inner else {
            return SpanProfile::default();
        };
        let g = arc.lock().expect("profiler mutex poisoned");
        let spans = g
            .paths
            .iter()
            .enumerate()
            .map(|(idx, node)| {
                let a = g.agg[idx];
                SpanStat {
                    path: g.full_path(idx),
                    name: node.name.to_string(),
                    depth: node.depth as u64,
                    calls: a.calls,
                    total_ns: a.total_ns,
                    self_ns: a.total_ns.saturating_sub(a.child_ns),
                }
            })
            .collect();
        let events = g
            .records
            .iter()
            .map(|r| SpanEvent {
                name: g.paths[r.path].name.to_string(),
                path: g.full_path(r.path),
                depth: g.paths[r.path].depth as u64,
                start_ns: r.start_ns,
                end_ns: r.end_ns,
            })
            .collect();
        SpanProfile {
            spans,
            events,
            dropped: g.dropped,
        }
    }
}

fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Closes its span when dropped. Obtain via [`Profiler::span`] or the
/// [`span!`](crate::span!) macro; hold in a local so it drops at scope
/// end, in LIFO order with any nested guards.
#[derive(Debug)]
#[must_use = "a span is timed until its guard drops; binding it to `_` closes it immediately"]
pub struct SpanGuard {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(arc) = self.inner.take() else {
            return;
        };
        let mut g = arc.lock().expect("profiler mutex poisoned");
        let now_ns = elapsed_ns(g.t0);
        let Some(frame) = g.stack.pop() else {
            return;
        };
        let end_ns = now_ns.max(frame.start_ns);
        let dur = end_ns - frame.start_ns;
        g.agg[frame.path].calls += 1;
        g.agg[frame.path].total_ns += dur;
        if let Some(parent) = g.paths[frame.path].parent {
            g.agg[parent].child_ns += dur;
        }
        if g.records.len() < RECORD_CAP {
            g.records.push(Record {
                path: frame.path,
                start_ns: frame.start_ns,
                end_ns,
            });
        } else {
            g.dropped += 1;
        }
    }
}

/// Opens a profiler span for the rest of the enclosing scope.
///
/// ```
/// let prof = obs::Profiler::enabled();
/// {
///     obs::span!(prof, "outer");
///     obs::span!(prof, "inner"); // nests under "outer"
/// }
/// assert_eq!(prof.snapshot().events.len(), 2);
/// ```
#[macro_export]
macro_rules! span {
    ($prof:expr, $name:expr) => {
        let _obs_span_guard = $prof.span($name);
    };
}

/// Exact aggregate for one span path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Semicolon-joined ancestor chain, root first (`"a;b;c"`).
    pub path: String,
    /// Leaf name of the span.
    pub name: String,
    /// Nesting depth (root spans are 0).
    pub depth: u64,
    /// How many times this path was entered and closed.
    pub calls: u64,
    /// Total wall-clock nanoseconds inside this path, children included.
    pub total_ns: u64,
    /// Wall-clock nanoseconds inside this path minus recorded children.
    pub self_ns: u64,
}

/// One closed span instance, for trace export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Leaf name of the span.
    pub name: String,
    /// Semicolon-joined ancestor chain, root first.
    pub path: String,
    /// Nesting depth (root spans are 0).
    pub depth: u64,
    /// Wall-clock nanoseconds from profiler start when the span opened.
    pub start_ns: u64,
    /// Wall-clock nanoseconds from profiler start when the span closed.
    pub end_ns: u64,
}

/// Immutable snapshot of a profiler: exact per-path aggregates plus a
/// (possibly capped) list of individual span instances.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanProfile {
    /// Exact aggregates, one per distinct span path, in interning order.
    pub spans: Vec<SpanStat>,
    /// Individual closed spans, capped; see `dropped`.
    pub events: Vec<SpanEvent>,
    /// Spans that closed after the record cap was hit (they still count
    /// in `spans`).
    pub dropped: u64,
}

/// One Chrome trace-event object (`ph` is `"B"` or `"E"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ChromeEvent {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    pid: u64,
    tid: u64,
}

impl SpanProfile {
    /// Renders the recorded spans as a Chrome trace-event JSON array of
    /// `B`/`E` duration events (timestamps in microseconds), loadable in
    /// Perfetto or `chrome://tracing`.
    ///
    /// Ties in time are ordered so nesting stays well-formed: closes of
    /// deeper spans come before closes of shallower ones, and all closes
    /// at an instant precede opens at the same instant.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        // (ts_ns, open?, tie-break, event index)
        let mut endpoints: Vec<(u64, bool, u64, usize)> = Vec::with_capacity(self.events.len() * 2);
        for (i, ev) in self.events.iter().enumerate() {
            endpoints.push((ev.start_ns, true, ev.depth, i));
            endpoints.push((ev.end_ns, false, u64::MAX - ev.depth, i));
        }
        // At equal ts: E before B (false < true), deeper E first
        // (u64::MAX - depth ascending), shallower B first (depth
        // ascending).
        endpoints.sort_by_key(|&(ts, open, tie, idx)| (ts, open, tie, idx));
        let events: Vec<ChromeEvent> = endpoints
            .into_iter()
            .map(|(ts_ns, open, _, idx)| {
                let ev = &self.events[idx];
                ChromeEvent {
                    name: ev.name.clone(),
                    cat: category_of(&ev.name).to_string(),
                    ph: if open { "B" } else { "E" }.to_string(),
                    ts: ts_ns as f64 / 1_000.0,
                    pid: 1,
                    tid: 1,
                }
            })
            .collect();
        serde_json::to_string(&events).expect("span trace serialises")
    }

    /// Renders the aggregates as folded flamegraph stacks: one line per
    /// path, `a;b;c <self-time-in-microseconds>`.
    #[must_use]
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            if s.calls == 0 {
                continue;
            }
            out.push_str(&s.path);
            out.push(' ');
            out.push_str(&(s.self_ns / 1_000).to_string());
            out.push('\n');
        }
        out
    }

    /// Total wall-clock nanoseconds across root spans.
    #[must_use]
    pub fn root_total_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.total_ns)
            .sum()
    }
}

/// The crate prefix of a dot-namespaced span name, used as the Chrome
/// trace category (`"kafkasim.dispatch"` → `"kafkasim"`).
fn category_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        {
            let _a = prof.span("a");
            let _b = prof.span("b");
        }
        let snap = prof.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn nested_spans_build_one_tree() {
        let prof = Profiler::enabled();
        {
            let _outer = prof.span("outer");
            {
                let _inner = prof.span("inner");
            }
            {
                let _inner = prof.span("inner");
            }
        }
        {
            let _outer = prof.span("outer");
        }
        let snap = prof.snapshot();
        assert_eq!(snap.events.len(), 4);
        let outer = snap.spans.iter().find(|s| s.path == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.path == "outer;inner").unwrap();
        assert_eq!(outer.calls, 2);
        assert_eq!(inner.calls, 2);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns);
    }

    #[test]
    fn same_name_under_different_parents_interns_separately() {
        let prof = Profiler::enabled();
        {
            let _a = prof.span("a");
            let _x = prof.span("x");
        }
        {
            let _b = prof.span("b");
            let _x = prof.span("x");
        }
        let snap = prof.snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"a;x"));
        assert!(paths.contains(&"b;x"));
    }

    #[test]
    fn span_macro_nests_in_declaration_order() {
        let prof = Profiler::enabled();
        {
            span!(prof, "outer");
            span!(prof, "inner");
        }
        let snap = prof.snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "outer;inner"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_balanced_events() {
        let prof = Profiler::enabled();
        {
            let _a = prof.span("a");
            let _b = prof.span("b");
        }
        let trace = prof.snapshot().to_chrome_trace();
        let value = serde_json::from_str(&trace).expect("chrome trace parses");
        let serde::Value::Seq(items) = value else {
            panic!("chrome trace is not an array");
        };
        assert_eq!(items.len(), 4);
        let mut depth = 0i64;
        for item in &items {
            let serde::Value::Map(m) = item else {
                panic!("event is not an object")
            };
            let Some((_, serde::Value::Str(ph))) = m.iter().find(|(k, _)| k == "ph") else {
                panic!("missing ph")
            };
            match ph.as_str() {
                "B" => depth += 1,
                "E" => depth -= 1,
                other => panic!("unexpected phase {other}"),
            }
            assert!(depth >= 0, "E without matching B");
        }
        assert_eq!(depth, 0, "unbalanced B/E events");
    }

    #[test]
    fn folded_output_lists_each_path_once() {
        let prof = Profiler::enabled();
        {
            let _a = prof.span("a");
            let _b = prof.span("b");
        }
        let folded = prof.snapshot().to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().any(|l| l.starts_with("a ")));
        assert!(lines.iter().any(|l| l.starts_with("a;b ")));
    }

    #[test]
    fn profile_snapshot_round_trips_through_json() {
        let prof = Profiler::enabled();
        {
            let _a = prof.span("a");
        }
        let snap = prof.snapshot();
        let json = serde_json::to_string(&snap).expect("profile serialises");
        let back: SpanProfile = serde_json::from_str(&json).expect("profile parses");
        assert_eq!(back, snap);
    }
}
