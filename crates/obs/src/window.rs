//! Windowed time-series KPIs folded from a trace.
//!
//! End-of-run summaries ([`crate::MetricsSummary`]) answer "how did the
//! run go overall"; this module answers "how did it *evolve*". The
//! recorder buckets the event stream into fixed simulated-time windows
//! and reports, per window:
//!
//! * delivery throughput (first-copy broker appends per second),
//! * p99 end-to-end latency (seconds, from the same histogram machinery
//!   the cumulative [`crate::MetricsRegistry`] uses),
//! * in-flight bytes (bytes sent in produce requests and not yet acked,
//!   retried, or torn down — sampled at the last event of the window and
//!   carried forward through silent windows),
//! * mean ISR size across partitions (carried forward; `0` until the
//!   first ISR event, i.e. for unreplicated runs),
//! * planner cache hits/misses and hit rate, differenced per window from
//!   the cumulative [`TraceEvent::CounterSample`] stream the online
//!   controller publishes.
//!
//! Windows are derived post-hoc from a recorded event slice
//! ([`WindowSeries::from_events`]), so any retaining sink — typically
//! [`crate::RingBufferSink`] — doubles as the recorder's source, and the
//! computation is a pure, deterministic function of the trace.
//!
//! Fleet runs additionally record a **per-tenant windowed KPI series**
//! ([`TenantSeries`]): one row per (window × tenant cohort) with the
//! cohort's produced/delivered/lost/duplicated counts plus the
//! run-wide consumer-group state (backlog, members, partitions moved by
//! rebalances) sampled at window close. The fleet engine pushes rows
//! directly (populations are too large to trace per message), so the
//! series is the windowed view of the per-tenant ledgers.

use std::collections::{BTreeMap, HashMap};

use desim::stats::Histogram;
use desim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;

/// KPIs of one simulated-time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowRow {
    /// Window index (window 0 starts at simulated time zero).
    pub window: u64,
    /// Window start, simulated seconds.
    pub start_s: f64,
    /// Window end (exclusive), simulated seconds.
    pub end_s: f64,
    /// First-copy broker appends inside the window.
    pub appends: u64,
    /// `appends` per simulated second.
    pub throughput_per_s: f64,
    /// p99 end-to-end (enqueue → first append) latency of the appends in
    /// this window, seconds; `0` when the window had none.
    pub e2e_p99_s: f64,
    /// Bytes in flight (sent, not yet acked/retried/torn down) at the
    /// last event of the window; carried forward through silent windows.
    pub inflight_bytes: u64,
    /// Mean in-sync-replica set size across partitions, carried forward;
    /// `0` until the first ISR event (unreplicated runs stay at `0`).
    pub isr_size: f64,
    /// Planner cache hits inside the window (differenced from the
    /// cumulative counter-sample stream).
    pub cache_hits: u64,
    /// Planner cache misses inside the window.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`; `0` when neither.
    pub cache_hit_rate: f64,
}

/// A contiguous per-window KPI series covering a whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSeries {
    /// Window length, simulated microseconds.
    pub window_us: u64,
    /// One row per window, from window 0 to the last window any event
    /// landed in. Empty when the trace held no events.
    pub rows: Vec<WindowRow>,
}

/// Scan-state accumulated for one window while folding the trace.
#[derive(Debug)]
struct WindowAcc {
    appends: u64,
    e2e: Histogram,
    inflight_last: Option<u64>,
    isr_last: Option<f64>,
    counters_last: BTreeMap<String, u64>,
}

impl WindowAcc {
    fn new() -> Self {
        WindowAcc {
            appends: 0,
            e2e: Histogram::new(0.0, 60.0, 240),
            inflight_last: None,
            isr_last: None,
            counters_last: BTreeMap::new(),
        }
    }
}

impl WindowSeries {
    /// Folds a recorded trace into per-window KPI rows.
    ///
    /// Events must be in recorded (simulated-time) order, which every
    /// sink preserves. `window` must be non-zero.
    ///
    /// # Panics
    /// Panics when `window` is zero.
    #[must_use]
    pub fn from_events(events: &[TraceEvent], window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window length must be non-zero");
        let window_us = window.as_micros();

        let mut accs: BTreeMap<u64, WindowAcc> = BTreeMap::new();
        // request id → (conn id, request bytes) for everything in flight.
        let mut inflight: HashMap<u64, (u32, u64)> = HashMap::new();
        let mut inflight_bytes: u64 = 0;
        let mut isr_sizes: BTreeMap<u32, u64> = BTreeMap::new();

        for ev in events {
            let w = ev.at().as_micros() / window_us;
            let acc = accs.entry(w).or_insert_with(WindowAcc::new);
            match ev {
                TraceEvent::RequestSent {
                    request,
                    conn,
                    bytes,
                    ..
                } => {
                    if let Some((_, old)) = inflight.insert(*request, (*conn, *bytes)) {
                        inflight_bytes = inflight_bytes.saturating_sub(old);
                    }
                    inflight_bytes += bytes;
                    acc.inflight_last = Some(inflight_bytes);
                }
                TraceEvent::AckReceived { request, .. } | TraceEvent::Retry { request, .. } => {
                    if let Some((_, bytes)) = inflight.remove(request) {
                        inflight_bytes = inflight_bytes.saturating_sub(bytes);
                    }
                    acc.inflight_last = Some(inflight_bytes);
                }
                TraceEvent::ConnectionReset { conn, .. } => {
                    inflight.retain(|_, (c, bytes)| {
                        if *c == *conn {
                            inflight_bytes = inflight_bytes.saturating_sub(*bytes);
                            false
                        } else {
                            true
                        }
                    });
                    acc.inflight_last = Some(inflight_bytes);
                }
                TraceEvent::BrokerAppend {
                    duplicate: false,
                    latency,
                    ..
                } => {
                    acc.appends += 1;
                    acc.e2e.record(latency.as_secs_f64());
                }
                TraceEvent::IsrShrink { partition, isr, .. }
                | TraceEvent::IsrExpand { partition, isr, .. } => {
                    isr_sizes.insert(*partition, isr.len() as u64);
                    acc.isr_last = Some(mean_isr(&isr_sizes));
                }
                TraceEvent::LeaderElected { partition, .. } => {
                    // A fresh leader starts with itself as the ISR.
                    isr_sizes.insert(*partition, 1);
                    acc.isr_last = Some(mean_isr(&isr_sizes));
                }
                TraceEvent::CounterSample { name, value, .. } => {
                    acc.counters_last.insert(name.clone(), *value);
                }
                _ => {}
            }
        }

        let Some((&last_w, _)) = accs.iter().next_back() else {
            return WindowSeries {
                window_us,
                rows: Vec::new(),
            };
        };

        let window_s = window.as_secs_f64();
        let mut rows = Vec::with_capacity(usize::try_from(last_w + 1).unwrap_or(0));
        let mut carried_inflight: u64 = 0;
        let mut carried_isr: f64 = 0.0;
        let mut prev_hits: u64 = 0;
        let mut prev_misses: u64 = 0;
        for w in 0..=last_w {
            let (appends, e2e_p99_s, hits_cum, misses_cum) = match accs.get(&w) {
                Some(acc) => {
                    if let Some(b) = acc.inflight_last {
                        carried_inflight = b;
                    }
                    if let Some(i) = acc.isr_last {
                        carried_isr = i;
                    }
                    let p99 = acc.e2e.quantile(0.99).unwrap_or(0.0);
                    let hits = acc
                        .counters_last
                        .get("planner-cache-hit")
                        .copied()
                        .unwrap_or(prev_hits);
                    let misses = acc
                        .counters_last
                        .get("planner-cache-miss")
                        .copied()
                        .unwrap_or(prev_misses);
                    (acc.appends, p99, hits, misses)
                }
                None => (0, 0.0, prev_hits, prev_misses),
            };
            let cache_hits = hits_cum.saturating_sub(prev_hits);
            let cache_misses = misses_cum.saturating_sub(prev_misses);
            prev_hits = hits_cum;
            prev_misses = misses_cum;
            let probes = cache_hits + cache_misses;
            rows.push(WindowRow {
                window: w,
                start_s: w as f64 * window_s,
                end_s: (w + 1) as f64 * window_s,
                appends,
                throughput_per_s: appends as f64 / window_s,
                e2e_p99_s,
                inflight_bytes: carried_inflight,
                isr_size: carried_isr,
                cache_hits,
                cache_misses,
                cache_hit_rate: if probes == 0 {
                    0.0
                } else {
                    cache_hits as f64 / probes as f64
                },
            });
        }
        WindowSeries { window_us, rows }
    }

    /// Renders the series as CSV with a header row. Floats use six
    /// decimal places, so equal series render byte-identically.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "window,start_s,end_s,appends,throughput_per_s,e2e_p99_s,\
             inflight_bytes,isr_size,cache_hits,cache_misses,cache_hit_rate\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.6},{:.6},{},{:.6},{:.6},{},{:.6},{},{},{:.6}\n",
                r.window,
                r.start_s,
                r.end_s,
                r.appends,
                r.throughput_per_s,
                r.e2e_p99_s,
                r.inflight_bytes,
                r.isr_size,
                r.cache_hits,
                r.cache_misses,
                r.cache_hit_rate,
            ));
        }
        out
    }

    /// Total first-copy appends across all windows.
    #[must_use]
    pub fn total_appends(&self) -> u64 {
        self.rows.iter().map(|r| r.appends).sum()
    }
}

/// KPIs of one tenant cohort over one simulated-time window of a fleet
/// run.
///
/// A *cohort* is the granularity the fleet engine windows tenants at —
/// one row per stream class per window, so a 1000-producer run stays a
/// few hundred rows while the per-tenant ledgers keep exact per-producer
/// attribution. The group columns (`backlog`, `moved_partitions`,
/// `group_members`) describe the whole run at window close and repeat
/// across the window's cohort rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantWindowRow {
    /// Window index (window 0 starts at simulated time zero).
    pub window: u64,
    /// Window start, simulated seconds.
    pub start_s: f64,
    /// Tenant cohort (stream-class) label.
    pub cohort: String,
    /// Producers in the cohort.
    pub producers: u64,
    /// Messages the cohort's producers emitted inside the window.
    pub produced: u64,
    /// Messages appended (first copy) inside the window.
    pub delivered: u64,
    /// Messages lost inside the window (all causes).
    pub lost: u64,
    /// Duplicate deliveries created inside the window (rebalance
    /// re-reads under at-least-once).
    pub duplicated: u64,
    /// Run-wide consumer backlog (appended − consumed) at window close.
    pub backlog: u64,
    /// Partitions that changed owner inside the window (rebalance storm
    /// size; `0` in churn-free windows).
    pub moved_partitions: u64,
    /// Consumer-group size at window close.
    pub group_members: u64,
}

/// The windowed per-tenant KPI series of a fleet run.
///
/// # Example
///
/// ```
/// use desim::SimDuration;
/// use obs::{TenantSeries, TenantWindowRow};
///
/// let mut series = TenantSeries::new(SimDuration::from_secs(5));
/// series.push(TenantWindowRow {
///     window: 0,
///     start_s: 0.0,
///     cohort: "game-traffic".into(),
///     producers: 240,
///     produced: 1_200,
///     delivered: 1_180,
///     lost: 20,
///     duplicated: 0,
///     backlog: 35,
///     moved_partitions: 0,
///     group_members: 8,
/// });
/// assert_eq!(series.rows.len(), 1);
/// assert!(series.to_csv().contains("game-traffic"));
/// assert_eq!(series.max_moved_partitions(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSeries {
    /// Window length, simulated microseconds.
    pub window_us: u64,
    /// Rows in (window, cohort-declaration) order.
    pub rows: Vec<TenantWindowRow>,
}

impl TenantSeries {
    /// Creates an empty series with the given window length.
    ///
    /// # Panics
    /// Panics when `window` is zero.
    #[must_use]
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window length must be non-zero");
        TenantSeries {
            window_us: window.as_micros(),
            rows: Vec::new(),
        }
    }

    /// Appends one cohort-window row (fleet engine hook).
    pub fn push(&mut self, row: TenantWindowRow) {
        self.rows.push(row);
    }

    /// Renders the series as CSV with a header row. Floats use six
    /// decimal places, so equal series render byte-identically.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "window,start_s,cohort,producers,produced,delivered,lost,\
             duplicated,backlog,moved_partitions,group_members\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.6},{},{},{},{},{},{},{},{},{}\n",
                r.window,
                r.start_s,
                r.cohort,
                r.producers,
                r.produced,
                r.delivered,
                r.lost,
                r.duplicated,
                r.backlog,
                r.moved_partitions,
                r.group_members,
            ));
        }
        out
    }

    /// The largest `moved_partitions` across all windows — non-zero iff
    /// a rebalance moved ownership mid-run.
    #[must_use]
    pub fn max_moved_partitions(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.moved_partitions)
            .max()
            .unwrap_or(0)
    }

    /// Sum of `produced` across all rows.
    #[must_use]
    pub fn total_produced(&self) -> u64 {
        self.rows.iter().map(|r| r.produced).sum()
    }
}

fn mean_isr(sizes: &BTreeMap<u32, u64>) -> f64 {
    if sizes.is_empty() {
        return 0.0;
    }
    sizes.values().sum::<u64>() as f64 / sizes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimDuration, SimTime};

    fn append(at_ms: u64, key: u64, latency_ms: u64) -> TraceEvent {
        TraceEvent::BrokerAppend {
            at: SimTime::from_millis(at_ms),
            batch: key,
            request: key,
            broker: 0,
            partition: 0,
            key,
            offset: key,
            latency: SimDuration::from_millis(latency_ms),
            duplicate: false,
            via_teardown: false,
        }
    }

    #[test]
    fn empty_trace_yields_empty_series() {
        let s = WindowSeries::from_events(&[], SimDuration::from_secs(1));
        assert!(s.rows.is_empty());
        assert_eq!(s.to_csv().lines().count(), 1); // header only
    }

    #[test]
    fn appends_bucket_into_their_windows() {
        let events = vec![append(100, 1, 50), append(900, 2, 50), append(2_500, 3, 50)];
        let s = WindowSeries::from_events(&events, SimDuration::from_secs(1));
        assert_eq!(s.rows.len(), 3);
        assert_eq!(s.rows[0].appends, 2);
        assert_eq!(s.rows[1].appends, 0);
        assert_eq!(s.rows[2].appends, 1);
        assert!((s.rows[0].throughput_per_s - 2.0).abs() < 1e-9);
        assert!(s.rows[0].e2e_p99_s > 0.0);
        assert_eq!(s.rows[1].e2e_p99_s, 0.0);
        assert_eq!(s.total_appends(), 3);
    }

    #[test]
    fn inflight_bytes_track_sends_acks_and_resets() {
        let events = vec![
            TraceEvent::RequestSent {
                at: SimTime::from_millis(10),
                batch: 1,
                request: 1,
                conn: 0,
                epoch: 0,
                attempt: 1,
                records: 1,
                bytes: 500,
            },
            TraceEvent::RequestSent {
                at: SimTime::from_millis(20),
                batch: 2,
                request: 2,
                conn: 1,
                epoch: 0,
                attempt: 1,
                records: 1,
                bytes: 300,
            },
            TraceEvent::AckReceived {
                at: SimTime::from_millis(1_200),
                batch: 1,
                request: 1,
                conn: 0,
                epoch: 0,
                rtt: SimDuration::from_millis(90),
            },
            TraceEvent::ConnectionReset {
                at: SimTime::from_millis(2_200),
                conn: 1,
                epoch: 0,
                lost_keys: vec![2],
            },
        ];
        let s = WindowSeries::from_events(&events, SimDuration::from_secs(1));
        assert_eq!(s.rows[0].inflight_bytes, 800);
        assert_eq!(s.rows[1].inflight_bytes, 300);
        assert_eq!(s.rows[2].inflight_bytes, 0);
    }

    #[test]
    fn gauges_carry_forward_through_silent_windows() {
        let events = vec![
            TraceEvent::IsrShrink {
                at: SimTime::from_millis(100),
                partition: 0,
                broker: 2,
                isr: vec![0, 1],
            },
            append(5_500, 1, 10),
        ];
        let s = WindowSeries::from_events(&events, SimDuration::from_secs(1));
        assert_eq!(s.rows.len(), 6);
        for row in &s.rows {
            assert!((row.isr_size - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cache_counters_difference_per_window() {
        let sample = |at_ms: u64, name: &str, value: u64| TraceEvent::CounterSample {
            at: SimTime::from_millis(at_ms),
            name: name.to_string(),
            value,
        };
        let events = vec![
            sample(500, "planner-cache-hit", 2),
            sample(500, "planner-cache-miss", 8),
            sample(1_500, "planner-cache-hit", 9),
            sample(1_500, "planner-cache-miss", 11),
            sample(2_500, "planner-cache-hit", 9),
            sample(2_500, "planner-cache-miss", 11),
        ];
        let s = WindowSeries::from_events(&events, SimDuration::from_secs(1));
        assert_eq!(s.rows[0].cache_hits, 2);
        assert_eq!(s.rows[0].cache_misses, 8);
        assert!((s.rows[0].cache_hit_rate - 0.2).abs() < 1e-9);
        assert_eq!(s.rows[1].cache_hits, 7);
        assert_eq!(s.rows[1].cache_misses, 3);
        assert!((s.rows[1].cache_hit_rate - 0.7).abs() < 1e-9);
        assert_eq!(s.rows[2].cache_hits, 0);
        assert_eq!(s.rows[2].cache_hit_rate, 0.0);
    }

    #[test]
    fn tenant_series_accumulates_and_renders_csv() {
        let mut s = TenantSeries::new(SimDuration::from_secs(5));
        for (w, cohort, moved) in [(0u64, "social-media", 0u64), (1, "social-media", 6)] {
            s.push(TenantWindowRow {
                window: w,
                start_s: w as f64 * 5.0,
                cohort: cohort.into(),
                producers: 500,
                produced: 1_000,
                delivered: 990,
                lost: 10,
                duplicated: if moved > 0 { 42 } else { 0 },
                backlog: 12,
                moved_partitions: moved,
                group_members: 8,
            });
        }
        assert_eq!(s.total_produced(), 2_000);
        assert_eq!(s.max_moved_partitions(), 6);
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("window,start_s,cohort"));
        assert!(csv.contains("1,5.000000,social-media,500,1000,990,10,42,12,6,8"));

        let json = serde_json::to_string(&s).expect("serialises");
        let back: TenantSeries = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    #[should_panic(expected = "window length must be non-zero")]
    fn tenant_series_rejects_zero_windows() {
        let _ = TenantSeries::new(SimDuration::ZERO);
    }

    #[test]
    fn series_round_trips_through_json_and_csv_is_stable() {
        let events = vec![append(100, 1, 50), append(1_100, 2, 60)];
        let s = WindowSeries::from_events(&events, SimDuration::from_secs(1));
        let json = serde_json::to_string(&s).expect("series serialises");
        let back: WindowSeries = serde_json::from_str(&json).expect("series parses");
        assert_eq!(back, s);
        assert_eq!(back.to_csv(), s.to_csv());
        assert_eq!(s.to_csv().lines().count(), 3);
    }
}
