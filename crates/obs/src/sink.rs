//! Trace sinks: where the runtime hands its [`TraceEvent`]s.
//!
//! The contract that keeps tracing free when it is off: the runtime asks
//! [`TraceSink::enabled`] *before constructing an event*, so with the
//! default [`NoopSink`] the hot path performs one virtual call returning a
//! constant and allocates nothing.

use std::collections::VecDeque;
use std::io::Write;

use crate::event::TraceEvent;
use crate::metrics::MetricsRegistry;

/// A consumer of trace events.
pub trait TraceSink {
    /// Whether the producer of events should bother constructing them.
    /// Implementations that discard events return `false` so callers can
    /// skip the (allocating) event construction entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&mut self, event: TraceEvent);

    /// The metrics registry this sink folds events into, when it has one.
    /// Lets the runtime surface histogram-derived statistics (RTT
    /// quantiles, batch fill) without knowing the concrete sink type.
    fn metrics(&self) -> Option<&MetricsRegistry> {
        None
    }

    /// Takes the retained events out of the sink, oldest first. Sinks
    /// that keep no events (the default) return an empty vector; this
    /// lets a caller holding a `Box<dyn TraceSink>` recover a
    /// [`RingBufferSink`]'s capture without downcasting.
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// The zero-overhead default: reports itself disabled and discards
/// anything recorded anyway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded in-memory sink: keeps the most recent `capacity` events and
/// counts what it had to drop.
#[derive(Debug, Clone, Default)]
pub struct RingBufferSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring buffer holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            buf: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Consumes the sink, returning the retained events oldest first.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into()
    }

    /// Events evicted (or refused) because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.buf).into()
    }
}

/// A sink that serialises every event as one JSON object per line
/// (JSONL), suitable for offline analysis with any JSON tooling.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    errors: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer (a `File`, a `Vec<u8>`, ...).
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            errors: 0,
        }
    }

    /// Lines successfully written.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Events that failed to serialise or write.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the flush error, if any.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: TraceEvent) {
        match serde_json::to_string(&event) {
            Ok(line) => {
                if writeln!(self.out, "{line}").is_ok() {
                    self.lines += 1;
                } else {
                    self.errors += 1;
                }
            }
            Err(_) => self.errors += 1,
        }
    }
}

/// Parses a JSONL trace (as written by [`JsonlSink`]) back into events.
///
/// Blank lines are skipped, so a trailing newline is fine.
///
/// # Errors
///
/// Returns the first line that fails to parse, with its 1-based number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: TraceEvent =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e:?}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LossCause;
    use desim::SimTime;

    fn ev(key: u64) -> TraceEvent {
        TraceEvent::Enqueued {
            at: SimTime::from_millis(key),
            key,
            partition: 0,
            deadline: SimTime::from_millis(key + 500),
        }
    }

    #[test]
    fn noop_is_disabled_and_discards() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        sink.record(ev(1));
        assert!(sink.metrics().is_none());
    }

    #[test]
    fn ring_buffer_keeps_the_newest() {
        let mut sink = RingBufferSink::new(3);
        assert!(sink.enabled());
        for k in 0..5 {
            sink.record(ev(k));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let keys: Vec<u64> = sink.events().filter_map(TraceEvent::key).collect();
        assert_eq!(keys, vec![2, 3, 4]);
    }

    #[test]
    fn drain_recovers_events_through_the_trait_object() {
        let mut sink: Box<dyn TraceSink> = Box::new(RingBufferSink::new(8));
        sink.record(ev(1));
        sink.record(ev(2));
        let events = sink.drain();
        assert_eq!(
            events
                .iter()
                .filter_map(TraceEvent::key)
                .collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(sink.drain().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut sink = RingBufferSink::new(0);
        sink.record(ev(0));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut sink = JsonlSink::new(Vec::new());
        let events = vec![
            ev(7),
            TraceEvent::Expired {
                at: SimTime::from_millis(9),
                key: 7,
                cause: LossCause::ExpiredInBuffer,
                batch: Some(2),
            },
        ];
        for e in &events {
            sink.record(e.clone());
        }
        assert_eq!(sink.lines(), 2);
        assert_eq!(sink.errors(), 0);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }
}
