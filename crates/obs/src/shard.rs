//! Shard-tagged trace events and their deterministic merge.
//!
//! When a run executes on the sharded engine (`desim::shard`), each shard
//! records its own trace stream — appending to one shared sink from worker
//! threads would serialize the hot path *and* make the interleaving depend
//! on thread scheduling. Instead every event is tagged with the shard that
//! emitted it and a shard-local sequence number, and the per-shard streams
//! are merged after the run in the engine's canonical total order:
//! `(time, shard id, seq)`.
//!
//! Because each shard's stream is already time-ordered (a shard's clock
//! only moves forward) and seq-ordered, the merged stream is **well-nested**:
//! time never decreases, and events that share a timestamp appear grouped by
//! shard in shard order, each shard's run internally in emission order.
//! [`well_nested`] checks exactly that invariant; the sharded-engine proptest
//! and the CI trace gate both run it over merged streams.

use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;

/// A [`TraceEvent`] tagged with its emitting shard and the shard-local
/// emission sequence number — the two coordinates (besides time) that define
/// the canonical merge order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedTraceEvent {
    /// The shard that emitted the event.
    pub shard: u32,
    /// Shard-local emission counter (0, 1, 2, … per shard).
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// Tag per-shard streams (outer index = shard id, inner order = emission
/// order) and merge them into one stream sorted by `(time, shard, seq)`.
///
/// The sort is stable and total — `(shard, seq)` is unique — so the result
/// is bit-identical no matter how the per-shard streams were produced
/// (sequentially or by any number of worker threads).
#[must_use]
pub fn merge_shard_streams(streams: Vec<Vec<TraceEvent>>) -> Vec<ShardedTraceEvent> {
    let mut merged: Vec<ShardedTraceEvent> = streams
        .into_iter()
        .enumerate()
        .flat_map(|(shard, events)| {
            events
                .into_iter()
                .enumerate()
                .map(move |(seq, event)| ShardedTraceEvent {
                    shard: shard as u32,
                    seq: seq as u64,
                    event,
                })
        })
        .collect();
    merged.sort_by_key(|e| (e.event.at(), e.shard, e.seq));
    merged
}

/// Check the well-nestedness invariant of a merged stream: time never
/// decreases; within one timestamp shards appear in nondecreasing order;
/// within one `(time, shard)` run, seq strictly increases.
///
/// Returns the index of the first violation, with a description.
pub fn well_nested(events: &[ShardedTraceEvent]) -> Result<(), String> {
    for (i, pair) in events.windows(2).enumerate() {
        let (a, b) = (&pair[0], &pair[1]);
        let (ta, tb) = (a.event.at(), b.event.at());
        if tb < ta {
            return Err(format!(
                "event {}: time went backwards ({} -> {} us)",
                i + 1,
                ta.as_micros(),
                tb.as_micros()
            ));
        }
        if tb == ta {
            if b.shard < a.shard {
                return Err(format!(
                    "event {}: shard order broken at t={} us (shard {} after {})",
                    i + 1,
                    ta.as_micros(),
                    b.shard,
                    a.shard
                ));
            }
            if b.shard == a.shard && b.seq <= a.seq {
                return Err(format!(
                    "event {}: seq not increasing on shard {} at t={} us",
                    i + 1,
                    a.shard,
                    ta.as_micros()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;

    fn ev(at_ms: u64, key: u64) -> TraceEvent {
        TraceEvent::Enqueued {
            at: SimTime::from_millis(at_ms),
            key,
            partition: 0,
            deadline: SimTime::from_millis(at_ms + 500),
        }
    }

    #[test]
    fn merge_orders_by_time_then_shard_then_seq() {
        let merged = merge_shard_streams(vec![
            vec![ev(5, 100), ev(9, 101)],
            vec![ev(1, 200), ev(5, 201), ev(5, 202)],
        ]);
        let keys: Vec<u64> = merged
            .iter()
            .map(|e| match e.event {
                TraceEvent::Enqueued { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        // t=1: shard1. t=5: shard0 first, then shard1's two in seq order.
        // t=9: shard0.
        assert_eq!(keys, vec![200, 100, 201, 202, 101]);
        assert!(well_nested(&merged).is_ok());
    }

    #[test]
    fn well_nested_rejects_time_regression() {
        let mut merged = merge_shard_streams(vec![vec![ev(1, 0), ev(2, 1)]]);
        merged.swap(0, 1);
        assert!(well_nested(&merged).unwrap_err().contains("backwards"));
    }

    #[test]
    fn well_nested_rejects_shard_disorder_at_equal_time() {
        let mut merged = merge_shard_streams(vec![vec![ev(3, 0)], vec![ev(3, 1)]]);
        merged.swap(0, 1);
        assert!(well_nested(&merged).unwrap_err().contains("shard order"));
    }

    #[test]
    fn empty_and_single_streams_are_well_nested() {
        assert!(well_nested(&[]).is_ok());
        let merged = merge_shard_streams(vec![vec![ev(1, 0)]]);
        assert!(well_nested(&merged).is_ok());
    }
}
