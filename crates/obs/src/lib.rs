//! `obs` — end-to-end message-lifecycle tracing and metrics for the
//! simulated Kafka pipeline.
//!
//! The paper ("Learning to Reliably Deliver Streaming Data with Apache
//! Kafka", DSN 2020) reports *how many* messages are lost (`P_l`) and
//! duplicated (`P_d`); this crate records *why*, message by message. It
//! provides three things:
//!
//! 1. **A structured trace-event taxonomy** ([`TraceEvent`]) covering the
//!    full message path — enqueue, batch formation, request send, ack,
//!    retry, connection reset, broker append, consumer read — each stamped
//!    with the simulated time, the message key, the batch id and the
//!    connection epoch.
//! 2. **Pluggable sinks** ([`TraceSink`]): the zero-overhead [`NoopSink`]
//!    (the default — event construction is skipped entirely when the sink
//!    is disabled), a bounded [`RingBufferSink`], a [`JsonlSink`] writing
//!    one JSON object per line, and a [`MetricsSink`] that folds events
//!    into a [`MetricsRegistry`] of counters, latency histograms and
//!    time-weighted gauges built on [`desim::stats`].
//! 3. **A per-message timeline reconstructor** ([`TimelineReport`]) that
//!    replays a recorded trace and attributes every lost or duplicated
//!    message to a traced cause.
//! 4. **A hierarchical span profiler** ([`Profiler`]) for *wall-clock*
//!    attribution — zero-cost when disabled, exporting Chrome trace-event
//!    JSON (Perfetto-loadable) and folded flamegraph stacks — and a
//!    **windowed KPI recorder** ([`WindowSeries`]) that folds a recorded
//!    trace into per-simulated-time-window throughput, p99 latency,
//!    in-flight bytes, ISR size and planner cache hit rate.
//!
//! # How events map onto the paper's loss and duplication cases
//!
//! The paper's Table I classifies every message into five delivery cases;
//! the trace makes each case's mechanism visible:
//!
//! * **Case 2/3 (lost)** — a [`TraceEvent::Expired`] with its
//!   [`LossCause`]: `ExpiredInBuffer` (the `T_o` expiry of Figs. 5–6),
//!   `BufferOverflow` (`buffer.memory` exhausted), `RetriesExhausted`
//!   (`τ_r` spent, at-least-once), or `UnsentAtEnd`; or a
//!   [`TraceEvent::ConnectionReset`] listing the keys that died in a
//!   torn-down socket — the silent loss of `acks=0` (Figs. 4 and 7).
//! * **Case 5 (duplicated)** — a [`TraceEvent::BrokerAppend`] with
//!   `duplicate: true`: either a `via_teardown` append whose ack could
//!   never return, or a retry re-append after a lost/late ack
//!   ([`TraceEvent::Retry`]) — the `P_d` mechanism of Fig. 8.
//! * **Case 1/4 (delivered)** — the plain `Enqueued → BatchFormed →
//!   RequestSent → BrokerAppend → ConsumerRead` chain, with
//!   [`TraceEvent::AckReceived`] carrying the request RTT under `acks=1`.
//!
//! # Broker-fault events (beyond the paper)
//!
//! The replicated cluster emits its own event family, so broker-caused
//! loss is distinguishable from network-caused loss:
//! [`TraceEvent::BrokerDown`]/[`TraceEvent::BrokerUp`] bracket injected
//! crashes, [`TraceEvent::ReplicaFetch`] records follower fetch rounds,
//! [`TraceEvent::IsrShrink`]/[`TraceEvent::IsrExpand`] track in-sync
//! replica membership, and [`TraceEvent::LeaderElected`] carries the
//! election's `clean` flag plus the record keys the log truncation
//! destroyed. A message whose last copy dies in such a truncation gets
//! [`LossCause::LeaderFailover`] — the attribution the
//! `kafkasim::explain` crosscheck verifies against the audit.
//!
//! The reconstruction is designed to be cross-checked against the
//! end-of-run audit: `kafkasim::explain` compares a [`TimelineReport`]'s
//! aggregate counts (lost, duplicated, loss-cause histogram) with the
//! `DeliveryReport` the audit produced, so every `P_l`/`P_d` count is
//! attributable to a traced cause.
//!
//! # Example
//!
//! ```
//! use obs::{RingBufferSink, TimelineReport, TraceEvent, TraceSink};
//! use desim::SimTime;
//!
//! let mut sink = RingBufferSink::new(1024);
//! if sink.enabled() {
//!     sink.record(TraceEvent::Enqueued {
//!         at: SimTime::ZERO,
//!         key: 0,
//!         partition: 0,
//!         deadline: SimTime::from_millis(500),
//!     });
//! }
//! let events: Vec<_> = sink.events().cloned().collect();
//! let report = TimelineReport::reconstruct(&events);
//! assert_eq!(report.n_messages(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod profile;
pub mod shard;
pub mod sink;
pub mod timeline;
pub mod window;

pub use event::{LossCause, TraceEvent};
pub use metrics::{HistogramSummary, MetricsRegistry, MetricsSink, MetricsSummary};
pub use profile::{Profiler, SpanEvent, SpanGuard, SpanProfile, SpanStat};
pub use shard::{merge_shard_streams, well_nested, ShardedTraceEvent};
pub use sink::{parse_jsonl, JsonlSink, NoopSink, RingBufferSink, TraceSink};
pub use timeline::{DupCause, MessageFate, MessageTimeline, TimelineReport};
pub use window::{TenantSeries, TenantWindowRow, WindowRow, WindowSeries};
