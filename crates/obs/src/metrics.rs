//! A metrics registry fed by trace events.
//!
//! [`MetricsSink`] folds the event stream into counters (one per event
//! kind, one per loss cause), latency histograms (end-to-end delivery
//! latency, produce-request RTT, batch fill) and a time-weighted gauge of
//! messages outstanding inside the pipeline — all built on
//! [`desim::stats`].

use std::collections::BTreeMap;

use desim::stats::{Histogram, RunningMoments, TimeWeighted};
use desim::SimTime;
use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;
use crate::sink::TraceSink;

/// Counters, histograms and gauges folded from a trace.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    e2e_latency_s: Histogram,
    e2e_moments: RunningMoments,
    rtt_s: Histogram,
    rtt_moments: RunningMoments,
    batch_fill: Histogram,
    batch_moments: RunningMoments,
    outstanding: TimeWeighted,
    outstanding_now: f64,
    last_at: SimTime,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    ///
    /// Histogram ranges cover the regimes the paper's experiments visit:
    /// end-to-end latency up to 60 s (messages ride out multi-second retry
    /// loops), RTT up to 5 s (RTO backoff under heavy loss), batch fill up
    /// to 512 records; samples beyond a range land in the overflow bin and
    /// still count toward quantiles.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            counters: BTreeMap::new(),
            e2e_latency_s: Histogram::new(0.0, 60.0, 240),
            e2e_moments: RunningMoments::new(),
            rtt_s: Histogram::new(0.0, 5.0, 250),
            rtt_moments: RunningMoments::new(),
            batch_fill: Histogram::new(0.0, 512.0, 128),
            batch_moments: RunningMoments::new(),
            outstanding: TimeWeighted::new(SimTime::ZERO, 0.0),
            outstanding_now: 0.0,
            last_at: SimTime::ZERO,
        }
    }

    /// Folds one event into the registry.
    pub fn observe(&mut self, ev: &TraceEvent) {
        let at = ev.at();
        self.last_at = self.last_at.max(at);
        *self.counters.entry(ev.kind().to_string()).or_insert(0) += 1;
        match ev {
            TraceEvent::Enqueued { .. } => self.set_outstanding(at, 1.0),
            TraceEvent::Expired { cause, .. } => {
                *self.counters.entry(format!("lost-{cause}")).or_insert(0) += 1;
                self.set_outstanding(at, -1.0);
            }
            TraceEvent::BatchFormed { keys, .. } => {
                let fill = keys.len() as f64;
                self.batch_fill.record(fill);
                self.batch_moments.record(fill);
            }
            TraceEvent::AckReceived { rtt, .. } => {
                let s = rtt.as_secs_f64();
                self.rtt_s.record(s);
                self.rtt_moments.record(s);
            }
            TraceEvent::ConnectionReset { lost_keys, .. } => {
                if !lost_keys.is_empty() {
                    *self
                        .counters
                        .entry("lost-connection-reset".to_string())
                        .or_insert(0) += lost_keys.len() as u64;
                    self.set_outstanding(at, -(lost_keys.len() as f64));
                }
            }
            TraceEvent::BrokerAppend {
                duplicate, latency, ..
            } => {
                if *duplicate {
                    *self
                        .counters
                        .entry("broker-append-duplicate".to_string())
                        .or_insert(0) += 1;
                } else {
                    // First copy persisted: the message left the pipeline,
                    // and this copy's latency is the end-to-end delivery
                    // latency the audit will report for the key.
                    let s = latency.as_secs_f64();
                    self.e2e_latency_s.record(s);
                    self.e2e_moments.record(s);
                    self.set_outstanding(at, -1.0);
                }
            }
            TraceEvent::LeaderElected {
                clean, lost_keys, ..
            } => {
                if !clean {
                    *self
                        .counters
                        .entry("unclean-election".to_string())
                        .or_insert(0) += 1;
                }
                if !lost_keys.is_empty() {
                    *self
                        .counters
                        .entry("lost-leader-failover".to_string())
                        .or_insert(0) += lost_keys.len() as u64;
                }
            }
            TraceEvent::CounterSample { name, value, .. } => {
                // Samples carry the source's cumulative total, so the
                // registry keeps the latest value rather than summing.
                self.counters.insert(name.clone(), *value);
            }
            TraceEvent::RequestSent { .. }
            | TraceEvent::Retry { .. }
            | TraceEvent::ConsumerRead { .. }
            | TraceEvent::ReplicaFetch { .. }
            | TraceEvent::IsrShrink { .. }
            | TraceEvent::IsrExpand { .. }
            | TraceEvent::BrokerDown { .. }
            | TraceEvent::BrokerUp { .. }
            | TraceEvent::ConsumerJoined { .. }
            | TraceEvent::ConsumerLeft { .. }
            | TraceEvent::PartitionsAssigned { .. }
            | TraceEvent::PolicyDrift { .. }
            | TraceEvent::PolicyRefit { .. } => {}
        }
    }

    fn set_outstanding(&mut self, at: SimTime, delta: f64) {
        self.outstanding_now = (self.outstanding_now + delta).max(0.0);
        self.outstanding.set(at, self.outstanding_now);
    }

    /// Adds `n` to a named counter, creating it at zero first. This is the
    /// door for non-trace sources (planner caches, controllers) to publish
    /// their tallies next to the trace-derived metrics.
    pub fn add_to_counter(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// A counter by name (event kinds like `"broker-append"`, loss counters
    /// like `"lost-expired-in-buffer"`). Zero when never bumped.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// End-to-end (producer enqueue → broker append) latency, seconds.
    #[must_use]
    pub fn e2e_latency(&self) -> &Histogram {
        &self.e2e_latency_s
    }

    /// Produce-request round-trip time, seconds (`acks=1` only).
    #[must_use]
    pub fn rtt(&self) -> &Histogram {
        &self.rtt_s
    }

    /// Records per formed batch.
    #[must_use]
    pub fn batch_fill(&self) -> &Histogram {
        &self.batch_fill
    }

    /// Mean records per formed batch, when any batch formed.
    #[must_use]
    pub fn batch_fill_mean(&self) -> Option<f64> {
        (self.batch_moments.count() > 0).then(|| self.batch_moments.mean())
    }

    /// Time-weighted average of messages outstanding in the pipeline
    /// (enqueued but not yet persisted or dropped), up to the last event.
    #[must_use]
    pub fn outstanding_avg(&self) -> f64 {
        self.outstanding.average(self.last_at)
    }

    /// Condenses the registry into a serialisable summary.
    #[must_use]
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            counters: self.counters.clone(),
            e2e_latency_s: HistogramSummary::from_parts(&self.e2e_latency_s, &self.e2e_moments),
            rtt_s: HistogramSummary::from_parts(&self.rtt_s, &self.rtt_moments),
            batch_fill: HistogramSummary::from_parts(&self.batch_fill, &self.batch_moments),
            outstanding_avg: self.outstanding_avg(),
        }
    }
}

/// Point statistics of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sample mean (0 when empty).
    pub mean: f64,
    /// Median, when any sample exists.
    pub p50: Option<f64>,
    /// 90th percentile.
    pub p90: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl HistogramSummary {
    fn from_parts(hist: &Histogram, moments: &RunningMoments) -> Self {
        HistogramSummary {
            count: hist.total(),
            mean: moments.mean(),
            p50: hist.quantile(0.5),
            p90: hist.quantile(0.9),
            p99: hist.quantile(0.99),
            max: moments.max().unwrap_or(0.0),
        }
    }
}

/// The serialisable condensation of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Event-kind and loss-cause counters.
    pub counters: BTreeMap<String, u64>,
    /// End-to-end delivery latency (seconds).
    pub e2e_latency_s: HistogramSummary,
    /// Produce-request RTT (seconds).
    pub rtt_s: HistogramSummary,
    /// Records per formed batch.
    pub batch_fill: HistogramSummary,
    /// Time-weighted average of messages outstanding in the pipeline.
    pub outstanding_avg: f64,
}

/// A sink that keeps no events: it folds each one into a
/// [`MetricsRegistry`] as it arrives.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    registry: MetricsRegistry,
}

impl MetricsSink {
    /// An empty metrics sink.
    #[must_use]
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// The accumulated registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the sink, returning the registry.
    #[must_use]
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, event: TraceEvent) {
        self.registry.observe(&event);
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LossCause;
    use desim::SimDuration;

    #[test]
    fn counters_histograms_and_gauge_fold_correctly() {
        let mut sink = MetricsSink::new();
        sink.record(TraceEvent::Enqueued {
            at: SimTime::ZERO,
            key: 0,
            partition: 0,
            deadline: SimTime::from_millis(500),
        });
        sink.record(TraceEvent::BatchFormed {
            at: SimTime::from_millis(10),
            batch: 0,
            partition: 0,
            keys: vec![0],
            bytes: 200,
        });
        sink.record(TraceEvent::AckReceived {
            at: SimTime::from_millis(120),
            batch: 0,
            request: 0,
            conn: 0,
            epoch: 0,
            rtt: SimDuration::from_millis(100),
        });
        sink.record(TraceEvent::BrokerAppend {
            at: SimTime::from_millis(70),
            batch: 0,
            request: 0,
            broker: 0,
            partition: 0,
            key: 0,
            offset: 0,
            latency: SimDuration::from_millis(70),
            duplicate: false,
            via_teardown: false,
        });
        sink.record(TraceEvent::Expired {
            at: SimTime::from_millis(600),
            key: 1,
            cause: LossCause::ExpiredInBuffer,
            batch: None,
        });
        sink.record(TraceEvent::ConsumerRead {
            at: SimTime::from_secs(2),
            key: 0,
            partition: 0,
            offset: 0,
            latency: SimDuration::from_millis(70),
        });

        let m = sink.registry();
        assert_eq!(m.counter("enqueued"), 1);
        assert_eq!(m.counter("ack-received"), 1);
        assert_eq!(m.counter("lost-expired-in-buffer"), 1);
        assert_eq!(m.counter("never-seen"), 0);
        assert_eq!(m.rtt().total(), 1);
        assert_eq!(m.e2e_latency().total(), 1);
        assert_eq!(m.batch_fill_mean(), Some(1.0));

        let s = m.summary();
        assert_eq!(s.rtt_s.count, 1);
        assert!((s.rtt_s.mean - 0.1).abs() < 1e-9);
        assert!(s.e2e_latency_s.p99.is_some());
        assert!(s.outstanding_avg >= 0.0);
    }

    #[test]
    fn amo_reset_losses_count_per_key() {
        let mut m = MetricsRegistry::new();
        m.observe(&TraceEvent::ConnectionReset {
            at: SimTime::from_millis(50),
            conn: 0,
            epoch: 0,
            lost_keys: vec![1, 2, 3],
        });
        assert_eq!(m.counter("lost-connection-reset"), 3);
        assert_eq!(m.counter("connection-reset"), 1);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut m = MetricsRegistry::new();
        m.observe(&TraceEvent::AckReceived {
            at: SimTime::from_millis(10),
            batch: 0,
            request: 0,
            conn: 0,
            epoch: 0,
            rtt: SimDuration::from_millis(10),
        });
        let s = m.summary();
        let text = serde_json::to_string(&s).unwrap();
        let back: MetricsSummary = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
