//! The trace-event taxonomy: one variant per hop of a message's life.
//!
//! Every event is stamped with the simulated time it happened and with the
//! identifiers needed to join it back to the rest of the story: the message
//! key, the producer batch id, and the connection *epoch* (how many times
//! that connection had been torn down and re-established when the event
//! fired — two events with the same `conn` but different `epoch` happened
//! on different TCP incarnations).

use desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Why the producer gave up on a message.
///
/// Mirrors `kafkasim::audit::LossReason` variant-for-variant so that the
/// per-message attribution the reconstructor produces can be compared
/// against the end-of-run audit without `obs` depending on `kafkasim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LossCause {
    /// Expired in the accumulator before (or between) send attempts.
    ExpiredInBuffer,
    /// The accumulator was full when the message arrived.
    BufferOverflow,
    /// Retries (or the message deadline) were exhausted (at-least-once).
    RetriesExhausted,
    /// Discarded with a torn-down connection's socket buffer
    /// (at-most-once's silent loss).
    ConnectionReset,
    /// Still unresolved when the run's hard horizon ended.
    UnsentAtEnd,
    /// Truncated from a partition log when leadership moved to a replica
    /// that had not yet fetched the record — the broker-caused loss of an
    /// unclean leader election (or of a failover under `acks < all`).
    LeaderFailover,
}

impl LossCause {
    /// Every cause, in declaration order.
    pub const ALL: [LossCause; 6] = [
        LossCause::ExpiredInBuffer,
        LossCause::BufferOverflow,
        LossCause::RetriesExhausted,
        LossCause::ConnectionReset,
        LossCause::UnsentAtEnd,
        LossCause::LeaderFailover,
    ];
}

impl core::fmt::Display for LossCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            LossCause::ExpiredInBuffer => "expired-in-buffer",
            LossCause::BufferOverflow => "buffer-overflow",
            LossCause::RetriesExhausted => "retries-exhausted",
            LossCause::ConnectionReset => "connection-reset",
            LossCause::UnsentAtEnd => "unsent-at-end",
            LossCause::LeaderFailover => "leader-failover",
        };
        write!(f, "{s}")
    }
}

/// One structured observation on the message path.
///
/// The variants follow the paper's message state machine (Fig. 2): a
/// message is *enqueued*, batched, sent as a produce request, appended by
/// the broker and finally read back by the consumer — or it drops out of
/// the pipeline through one of the loss modes (`Expired`,
/// `ConnectionReset`). `Retry` and the `duplicate` flag on `BrokerAppend`
/// mark the path that produces the paper's Case 5 duplicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A source message entered the producer (and its ledger).
    Enqueued {
        /// When it arrived.
        at: SimTime,
        /// Its unique key.
        key: u64,
        /// The partition the sticky partitioner chose.
        partition: u32,
        /// Its hard delivery deadline (`created_at + T_o`).
        deadline: SimTime,
    },
    /// The producer gave up on a message: the generalised expiry event
    /// covering every producer-side loss mode except the in-socket loss of
    /// a reset connection (see [`TraceEvent::ConnectionReset`]).
    Expired {
        /// When the producer dropped it.
        at: SimTime,
        /// The dropped message.
        key: u64,
        /// Which loss mode fired.
        cause: LossCause,
        /// The batch it was riding in, when it had one.
        batch: Option<u64>,
    },
    /// The sender picked a sealed batch for serialisation.
    BatchFormed {
        /// When the sender picked it.
        at: SimTime,
        /// Batch id (unique per run).
        batch: u64,
        /// Destination partition.
        partition: u32,
        /// Keys of the batched messages.
        keys: Vec<u64>,
        /// Total payload bytes.
        bytes: u64,
    },
    /// A produce request was written to a connection's socket.
    RequestSent {
        /// Socket-write instant.
        at: SimTime,
        /// The batch being carried.
        batch: u64,
        /// Wire-level request id.
        request: u64,
        /// Connection index (one per broker).
        conn: u32,
        /// Connection epoch at send time.
        epoch: u32,
        /// Kafka-level attempt number (1 = first try).
        attempt: u32,
        /// Records in the request.
        records: u64,
        /// Request size on the wire.
        bytes: u64,
    },
    /// The producer received the broker's acknowledgement (`acks=1` only).
    AckReceived {
        /// When the ack arrived.
        at: SimTime,
        /// The acknowledged batch.
        batch: u64,
        /// The acknowledged request.
        request: u64,
        /// Connection index.
        conn: u32,
        /// Connection epoch.
        epoch: u32,
        /// Request round-trip time (send to ack).
        rtt: SimDuration,
    },
    /// A batch went out again after an earlier attempt failed.
    Retry {
        /// Socket-write instant of the retry.
        at: SimTime,
        /// The retried batch.
        batch: u64,
        /// The new request id.
        request: u64,
        /// Connection index.
        conn: u32,
        /// Connection epoch.
        epoch: u32,
        /// Attempt number of this send (≥ 2).
        attempt: u32,
    },
    /// The producer tore a connection down (request timeout, transport
    /// stall, or broker outage). Under `acks=0` the messages still in the
    /// socket die with it: their keys are listed here — this is the only
    /// trace of at-most-once's silent loss.
    ConnectionReset {
        /// Reset instant.
        at: SimTime,
        /// Connection index.
        conn: u32,
        /// The epoch that just ended (events carrying this epoch happened
        /// on the incarnation being torn down).
        epoch: u32,
        /// Keys silently lost in the dead socket (`acks=0` only; empty
        /// under `acks=1`, where the in-flight batches are retried and
        /// their fate shows up as `Retry`/`Expired` events instead).
        lost_keys: Vec<u64>,
    },
    /// The broker appended one record to a partition log.
    BrokerAppend {
        /// Append instant (after broker processing time).
        at: SimTime,
        /// The batch the record came from.
        batch: u64,
        /// The carrying request.
        request: u64,
        /// The appending broker.
        broker: u32,
        /// Partition log.
        partition: u32,
        /// Record key.
        key: u64,
        /// Offset assigned in the partition log.
        offset: u64,
        /// Producer-enqueue → broker-append latency of this copy: the
        /// end-to-end delivery latency when `duplicate` is `false`.
        latency: SimDuration,
        /// `true` when this key was already in some partition log — the
        /// append that *creates* a paper Case 5 duplicate.
        duplicate: bool,
        /// `true` when the request arrived while its connection was being
        /// torn down, so no response could ever reach the producer (the
        /// classic ack-lost path to duplicates).
        via_teardown: bool,
    },
    /// The end-of-run consumer read one record back.
    ConsumerRead {
        /// Read instant (the audit replay time).
        at: SimTime,
        /// Record key.
        key: u64,
        /// Partition it was stored in.
        partition: u32,
        /// Offset within the partition.
        offset: u64,
        /// Producer-to-broker latency of this copy.
        latency: SimDuration,
    },
    /// A follower replica fetched records from its partition leader.
    ReplicaFetch {
        /// Fetch instant (one replication tick).
        at: SimTime,
        /// Partition being replicated.
        partition: u32,
        /// The leader being fetched from.
        leader: u32,
        /// The fetching follower.
        follower: u32,
        /// The follower's log-end offset before the fetch.
        from_offset: u64,
        /// Records copied in this fetch.
        records: u64,
    },
    /// A replica fell further behind than `replica.lag.time.max` and was
    /// evicted from the in-sync replica set.
    IsrShrink {
        /// Eviction instant.
        at: SimTime,
        /// Partition whose ISR shrank.
        partition: u32,
        /// The evicted replica's broker.
        broker: u32,
        /// The ISR after the shrink (broker ids).
        isr: Vec<u32>,
    },
    /// A lagging replica caught back up to the leader's log end and
    /// rejoined the in-sync replica set.
    IsrExpand {
        /// Rejoin instant.
        at: SimTime,
        /// Partition whose ISR grew.
        partition: u32,
        /// The rejoining replica's broker.
        broker: u32,
        /// The ISR after the expansion (broker ids).
        isr: Vec<u32>,
    },
    /// A partition elected a new leader after its old leader went down.
    ///
    /// `clean` elections promote an in-sync replica; unclean elections
    /// promote a lagging one, truncating the log to the new leader's
    /// fetched offset — `truncated_keys` lists every destroyed record copy
    /// and `lost_keys` the keys with *no* surviving copy (broker-caused
    /// loss, attributed to [`LossCause::LeaderFailover`]).
    LeaderElected {
        /// Election instant.
        at: SimTime,
        /// The partition changing leaders.
        partition: u32,
        /// The newly elected leader's broker.
        leader: u32,
        /// `true` when the new leader came from the ISR.
        clean: bool,
        /// Keys of record copies truncated off the log (with multiplicity:
        /// a key appended twice and truncated twice appears twice).
        truncated_keys: Vec<u64>,
        /// Truncated keys that now have zero surviving copies anywhere.
        lost_keys: Vec<u64>,
    },
    /// A broker crashed (fault injection) and stopped serving.
    BrokerDown {
        /// Crash instant.
        at: SimTime,
        /// The crashed broker.
        broker: u32,
    },
    /// A crashed broker restarted and rejoined (as a lagging follower for
    /// partitions it used to lead).
    BrokerUp {
        /// Restart instant.
        at: SimTime,
        /// The restarted broker.
        broker: u32,
    },
    /// A consumer joined its group (fleet runs): the join that triggers a
    /// generation bump and a partition rebalance.
    ConsumerJoined {
        /// Join instant.
        at: SimTime,
        /// The joining member's id.
        member: u32,
        /// The group generation *after* the join's rebalance.
        generation: u64,
    },
    /// A consumer left its group (fleet runs), orphaning its partitions
    /// until the rebalance reassigns them.
    ConsumerLeft {
        /// Leave instant.
        at: SimTime,
        /// The departing member's id.
        member: u32,
        /// The group generation *after* the leave's rebalance.
        generation: u64,
    },
    /// One member's partition assignment after a group rebalance (fleet
    /// runs emit one of these per surviving member per rebalance).
    PartitionsAssigned {
        /// Assignment instant.
        at: SimTime,
        /// The member receiving the assignment.
        member: u32,
        /// The group generation this assignment belongs to.
        generation: u64,
        /// The partitions the member now owns.
        partitions: Vec<u32>,
        /// How many of those partitions changed owner in this rebalance
        /// (the "storm" size; moved partitions pause consumption and
        /// re-read under at-least-once, producing duplicates).
        moved: u64,
    },
    /// A periodic sample of a named cumulative counter from a non-trace
    /// source (the planner cache, the online controller), interleaved
    /// into the event stream so windowed recorders can difference it
    /// per window. `value` is the counter's cumulative total at `at`.
    CounterSample {
        /// Sampling instant.
        at: SimTime,
        /// Counter name (e.g. `"planner-cache-hit"`).
        name: String,
        /// Cumulative counter value at `at`.
        value: u64,
    },
    /// The control plane's drift detector flagged that recent prediction
    /// error has moved away from its baseline; a refit follows.
    PolicyDrift {
        /// Detection instant (the online-controller tick that saw it).
        at: SimTime,
        /// Mean |predicted − observed| loss-probability error over the
        /// recent window that tripped the detector.
        error: f64,
        /// The baseline mean error the detector compares against.
        baseline: f64,
        /// The detector's window length in samples.
        window: u64,
    },
    /// The control plane refit its model online and bumped the model
    /// generation, invalidating every cached prediction from earlier
    /// generations.
    PolicyRefit {
        /// Refit instant.
        at: SimTime,
        /// The model generation *after* the refit.
        generation: u64,
        /// How many replay-buffer samples the refit trained on.
        samples: u64,
    },
}

impl TraceEvent {
    /// The simulated instant the event fired.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Enqueued { at, .. }
            | TraceEvent::Expired { at, .. }
            | TraceEvent::BatchFormed { at, .. }
            | TraceEvent::RequestSent { at, .. }
            | TraceEvent::AckReceived { at, .. }
            | TraceEvent::Retry { at, .. }
            | TraceEvent::ConnectionReset { at, .. }
            | TraceEvent::BrokerAppend { at, .. }
            | TraceEvent::ConsumerRead { at, .. }
            | TraceEvent::ReplicaFetch { at, .. }
            | TraceEvent::IsrShrink { at, .. }
            | TraceEvent::IsrExpand { at, .. }
            | TraceEvent::LeaderElected { at, .. }
            | TraceEvent::BrokerDown { at, .. }
            | TraceEvent::BrokerUp { at, .. }
            | TraceEvent::ConsumerJoined { at, .. }
            | TraceEvent::ConsumerLeft { at, .. }
            | TraceEvent::PartitionsAssigned { at, .. }
            | TraceEvent::CounterSample { at, .. }
            | TraceEvent::PolicyDrift { at, .. }
            | TraceEvent::PolicyRefit { at, .. } => *at,
        }
    }

    /// A short stable name for the event kind (metric/counter label).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Enqueued { .. } => "enqueued",
            TraceEvent::Expired { .. } => "expired",
            TraceEvent::BatchFormed { .. } => "batch-formed",
            TraceEvent::RequestSent { .. } => "request-sent",
            TraceEvent::AckReceived { .. } => "ack-received",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::ConnectionReset { .. } => "connection-reset",
            TraceEvent::BrokerAppend { .. } => "broker-append",
            TraceEvent::ConsumerRead { .. } => "consumer-read",
            TraceEvent::ReplicaFetch { .. } => "replica-fetch",
            TraceEvent::IsrShrink { .. } => "isr-shrink",
            TraceEvent::IsrExpand { .. } => "isr-expand",
            TraceEvent::LeaderElected { .. } => "leader-elected",
            TraceEvent::BrokerDown { .. } => "broker-down",
            TraceEvent::BrokerUp { .. } => "broker-up",
            TraceEvent::ConsumerJoined { .. } => "consumer-joined",
            TraceEvent::ConsumerLeft { .. } => "consumer-left",
            TraceEvent::PartitionsAssigned { .. } => "partitions-assigned",
            TraceEvent::CounterSample { .. } => "counter-sample",
            TraceEvent::PolicyDrift { .. } => "policy-drift",
            TraceEvent::PolicyRefit { .. } => "policy-refit",
        }
    }

    /// The message key the event is directly about, when it names one.
    #[must_use]
    pub fn key(&self) -> Option<u64> {
        match self {
            TraceEvent::Enqueued { key, .. }
            | TraceEvent::Expired { key, .. }
            | TraceEvent::BrokerAppend { key, .. }
            | TraceEvent::ConsumerRead { key, .. } => Some(*key),
            _ => None,
        }
    }

    /// The batch id the event carries, when it has one.
    #[must_use]
    pub fn batch(&self) -> Option<u64> {
        match self {
            TraceEvent::Expired { batch, .. } => *batch,
            TraceEvent::BatchFormed { batch, .. }
            | TraceEvent::RequestSent { batch, .. }
            | TraceEvent::AckReceived { batch, .. }
            | TraceEvent::Retry { batch, .. }
            | TraceEvent::BrokerAppend { batch, .. } => Some(*batch),
            _ => None,
        }
    }
}

impl core::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let t = self.at();
        match self {
            TraceEvent::Enqueued {
                key,
                partition,
                deadline,
                ..
            } => write!(
                f,
                "{t} msg#{key} enqueued for partition {partition} (deadline {deadline})"
            ),
            TraceEvent::Expired {
                key, cause, batch, ..
            } => match batch {
                Some(b) => write!(f, "{t} msg#{key} dropped in batch {b}: {cause}"),
                None => write!(f, "{t} msg#{key} dropped: {cause}"),
            },
            TraceEvent::BatchFormed {
                batch,
                partition,
                keys,
                bytes,
                ..
            } => write!(
                f,
                "{t} batch {batch} formed for partition {partition}: {} records, {bytes} B",
                keys.len()
            ),
            TraceEvent::RequestSent {
                batch,
                request,
                conn,
                epoch,
                attempt,
                records,
                ..
            } => {
                write!(
                    f,
                    "{t} request {request} (batch {batch}, attempt {attempt}, {records} records) \
                     sent on conn {conn}/e{epoch}"
                )
            }
            TraceEvent::AckReceived {
                batch,
                request,
                conn,
                epoch,
                rtt,
                ..
            } => write!(
                f,
                "{t} ack for request {request} (batch {batch}) on conn {conn}/e{epoch}, rtt {rtt}"
            ),
            TraceEvent::Retry {
                batch,
                request,
                conn,
                epoch,
                attempt,
                ..
            } => write!(
                f,
                "{t} retry of batch {batch} as request {request} (attempt {attempt}) \
                 on conn {conn}/e{epoch}"
            ),
            TraceEvent::ConnectionReset {
                conn,
                epoch,
                lost_keys,
                ..
            } => {
                if lost_keys.is_empty() {
                    write!(f, "{t} conn {conn}/e{epoch} reset")
                } else {
                    write!(
                        f,
                        "{t} conn {conn}/e{epoch} reset, {} messages died in the socket",
                        lost_keys.len()
                    )
                }
            }
            TraceEvent::BrokerAppend {
                key,
                batch,
                broker,
                partition,
                offset,
                duplicate,
                via_teardown,
                ..
            } => {
                let dup = if *duplicate { " DUPLICATE" } else { "" };
                let tear = if *via_teardown {
                    " (during teardown, no ack possible)"
                } else {
                    ""
                };
                write!(
                    f,
                    "{t} broker {broker} appended msg#{key} (batch {batch}) \
                     at partition {partition} offset {offset}{dup}{tear}"
                )
            }
            TraceEvent::ConsumerRead {
                key,
                partition,
                offset,
                latency,
                ..
            } => write!(
                f,
                "{t} consumer read msg#{key} from partition {partition} offset {offset} \
                 (latency {latency})"
            ),
            TraceEvent::ReplicaFetch {
                partition,
                leader,
                follower,
                from_offset,
                records,
                ..
            } => write!(
                f,
                "{t} follower {follower} fetched {records} records of partition {partition} \
                 from leader {leader} (offset {from_offset})"
            ),
            TraceEvent::IsrShrink {
                partition,
                broker,
                isr,
                ..
            } => write!(
                f,
                "{t} broker {broker} evicted from ISR of partition {partition} (ISR now {isr:?})"
            ),
            TraceEvent::IsrExpand {
                partition,
                broker,
                isr,
                ..
            } => write!(
                f,
                "{t} broker {broker} rejoined ISR of partition {partition} (ISR now {isr:?})"
            ),
            TraceEvent::LeaderElected {
                partition,
                leader,
                clean,
                truncated_keys,
                lost_keys,
                ..
            } => {
                let mode = if *clean { "clean" } else { "UNCLEAN" };
                write!(
                    f,
                    "{t} {mode} election: broker {leader} now leads partition {partition} \
                     ({} copies truncated, {} messages lost)",
                    truncated_keys.len(),
                    lost_keys.len()
                )
            }
            TraceEvent::BrokerDown { broker, .. } => write!(f, "{t} broker {broker} crashed"),
            TraceEvent::BrokerUp { broker, .. } => write!(f, "{t} broker {broker} restarted"),
            TraceEvent::ConsumerJoined {
                member, generation, ..
            } => write!(f, "{t} consumer {member} joined (generation {generation})"),
            TraceEvent::ConsumerLeft {
                member, generation, ..
            } => write!(f, "{t} consumer {member} left (generation {generation})"),
            TraceEvent::PartitionsAssigned {
                member,
                generation,
                partitions,
                moved,
                ..
            } => write!(
                f,
                "{t} consumer {member} assigned {} partitions in generation {generation} \
                 ({moved} moved)",
                partitions.len()
            ),
            TraceEvent::CounterSample { name, value, .. } => {
                write!(f, "{t} counter {name} = {value}")
            }
            TraceEvent::PolicyDrift {
                error,
                baseline,
                window,
                ..
            } => write!(
                f,
                "{t} policy drift: mean error {error:.4} vs baseline {baseline:.4} \
                 over {window} windows"
            ),
            TraceEvent::PolicyRefit {
                generation,
                samples,
                ..
            } => write!(
                f,
                "{t} policy refit: model generation {generation} ({samples} samples)"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let ev = TraceEvent::Enqueued {
            at: SimTime::from_millis(5),
            key: 3,
            partition: 0,
            deadline: SimTime::from_millis(505),
        };
        assert_eq!(ev.at(), SimTime::from_millis(5));
        assert_eq!(ev.kind(), "enqueued");
        assert_eq!(ev.key(), Some(3));
        assert_eq!(ev.batch(), None);

        let ev = TraceEvent::BrokerAppend {
            at: SimTime::from_millis(9),
            batch: 7,
            request: 11,
            broker: 0,
            partition: 2,
            key: 3,
            offset: 0,
            latency: SimDuration::from_millis(6),
            duplicate: true,
            via_teardown: false,
        };
        assert_eq!(ev.key(), Some(3));
        assert_eq!(ev.batch(), Some(7));
        assert!(ev.to_string().contains("DUPLICATE"));
    }

    #[test]
    fn loss_cause_displays_kebab_case() {
        assert_eq!(LossCause::ExpiredInBuffer.to_string(), "expired-in-buffer");
        assert_eq!(LossCause::ConnectionReset.to_string(), "connection-reset");
        assert_eq!(LossCause::LeaderFailover.to_string(), "leader-failover");
        assert_eq!(LossCause::ALL.len(), 6);
    }

    #[test]
    fn broker_fault_events_have_kinds_and_narration() {
        let ev = TraceEvent::LeaderElected {
            at: SimTime::from_millis(40),
            partition: 1,
            leader: 2,
            clean: false,
            truncated_keys: vec![7, 8, 8],
            lost_keys: vec![7],
        };
        assert_eq!(ev.kind(), "leader-elected");
        assert_eq!(ev.key(), None);
        assert_eq!(ev.batch(), None);
        assert!(ev.to_string().contains("UNCLEAN"));
        assert!(ev.to_string().contains("3 copies truncated"));

        let ev = TraceEvent::ReplicaFetch {
            at: SimTime::from_millis(41),
            partition: 0,
            leader: 0,
            follower: 1,
            from_offset: 5,
            records: 3,
        };
        assert_eq!(ev.kind(), "replica-fetch");
        assert!(ev.to_string().contains("fetched 3 records"));

        for ev in [
            TraceEvent::IsrShrink {
                at: SimTime::from_millis(42),
                partition: 0,
                broker: 1,
                isr: vec![0],
            },
            TraceEvent::IsrExpand {
                at: SimTime::from_millis(43),
                partition: 0,
                broker: 1,
                isr: vec![0, 1],
            },
            TraceEvent::BrokerDown {
                at: SimTime::from_millis(44),
                broker: 0,
            },
            TraceEvent::BrokerUp {
                at: SimTime::from_millis(45),
                broker: 0,
            },
        ] {
            assert!(!ev.kind().is_empty());
            assert!(!ev.to_string().is_empty());
        }
    }

    #[test]
    fn group_events_have_kinds_and_narration() {
        let joined = TraceEvent::ConsumerJoined {
            at: SimTime::from_millis(50),
            member: 8,
            generation: 2,
        };
        assert_eq!(joined.kind(), "consumer-joined");
        assert_eq!(joined.key(), None);
        assert!(joined.to_string().contains("consumer 8 joined"));

        let left = TraceEvent::ConsumerLeft {
            at: SimTime::from_millis(60),
            member: 2,
            generation: 3,
        };
        assert_eq!(left.kind(), "consumer-left");
        assert!(left.to_string().contains("generation 3"));

        let assigned = TraceEvent::PartitionsAssigned {
            at: SimTime::from_millis(60),
            member: 0,
            generation: 3,
            partitions: vec![0, 1, 2, 3],
            moved: 2,
        };
        assert_eq!(assigned.kind(), "partitions-assigned");
        assert_eq!(assigned.batch(), None);
        assert!(assigned.to_string().contains("assigned 4 partitions"));
        assert!(assigned.to_string().contains("2 moved"));
    }

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            TraceEvent::Expired {
                at: SimTime::from_millis(1),
                key: 0,
                cause: LossCause::BufferOverflow,
                batch: None,
            },
            TraceEvent::ConnectionReset {
                at: SimTime::from_millis(2),
                conn: 1,
                epoch: 0,
                lost_keys: vec![4, 5],
            },
            TraceEvent::LeaderElected {
                at: SimTime::from_millis(3),
                partition: 2,
                leader: 1,
                clean: true,
                truncated_keys: vec![],
                lost_keys: vec![],
            },
            TraceEvent::IsrShrink {
                at: SimTime::from_millis(4),
                partition: 2,
                broker: 0,
                isr: vec![1, 2],
            },
            TraceEvent::BrokerDown {
                at: SimTime::from_millis(5),
                broker: 0,
            },
        ];
        for ev in &events {
            let line = serde_json::to_string(ev).unwrap();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, ev);
        }
    }

    /// One instance of every variant, with every `Option` and `Vec`
    /// field exercised in both empty and populated forms where cheap.
    fn one_of_each_variant() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Enqueued {
                at: SimTime::from_millis(1),
                key: 10,
                partition: 0,
                deadline: SimTime::from_millis(501),
            },
            TraceEvent::Expired {
                at: SimTime::from_millis(2),
                key: 11,
                cause: LossCause::RetriesExhausted,
                batch: Some(3),
            },
            TraceEvent::BatchFormed {
                at: SimTime::from_millis(3),
                batch: 3,
                partition: 1,
                keys: vec![10, 11],
                bytes: 400,
            },
            TraceEvent::RequestSent {
                at: SimTime::from_millis(4),
                batch: 3,
                request: 7,
                conn: 1,
                epoch: 2,
                attempt: 1,
                records: 2,
                bytes: 400,
            },
            TraceEvent::AckReceived {
                at: SimTime::from_millis(5),
                batch: 3,
                request: 7,
                conn: 1,
                epoch: 2,
                rtt: SimDuration::from_millis(80),
            },
            TraceEvent::Retry {
                at: SimTime::from_millis(6),
                batch: 3,
                request: 8,
                conn: 1,
                epoch: 2,
                attempt: 2,
            },
            TraceEvent::ConnectionReset {
                at: SimTime::from_millis(7),
                conn: 1,
                epoch: 2,
                lost_keys: vec![12, 13],
            },
            TraceEvent::BrokerAppend {
                at: SimTime::from_millis(8),
                batch: 3,
                request: 7,
                broker: 0,
                partition: 1,
                key: 10,
                offset: 42,
                latency: SimDuration::from_millis(90),
                duplicate: false,
                via_teardown: true,
            },
            TraceEvent::ConsumerRead {
                at: SimTime::from_millis(9),
                key: 10,
                partition: 1,
                offset: 42,
                latency: SimDuration::from_millis(95),
            },
            TraceEvent::ReplicaFetch {
                at: SimTime::from_millis(10),
                partition: 1,
                leader: 0,
                follower: 2,
                from_offset: 40,
                records: 3,
            },
            TraceEvent::IsrShrink {
                at: SimTime::from_millis(11),
                partition: 1,
                broker: 2,
                isr: vec![0, 1],
            },
            TraceEvent::IsrExpand {
                at: SimTime::from_millis(12),
                partition: 1,
                broker: 2,
                isr: vec![0, 1, 2],
            },
            TraceEvent::LeaderElected {
                at: SimTime::from_millis(13),
                partition: 1,
                leader: 1,
                clean: false,
                truncated_keys: vec![14, 14, 15],
                lost_keys: vec![14],
            },
            TraceEvent::BrokerDown {
                at: SimTime::from_millis(14),
                broker: 0,
            },
            TraceEvent::BrokerUp {
                at: SimTime::from_millis(15),
                broker: 0,
            },
            TraceEvent::ConsumerJoined {
                at: SimTime::from_millis(17),
                member: 3,
                generation: 2,
            },
            TraceEvent::ConsumerLeft {
                at: SimTime::from_millis(18),
                member: 1,
                generation: 3,
            },
            TraceEvent::PartitionsAssigned {
                at: SimTime::from_millis(19),
                member: 3,
                generation: 3,
                partitions: vec![0, 1, 4],
                moved: 2,
            },
            TraceEvent::CounterSample {
                at: SimTime::from_millis(16),
                name: "planner-cache-hit".to_string(),
                value: 37,
            },
            TraceEvent::PolicyDrift {
                at: SimTime::from_millis(20),
                error: 0.042,
                baseline: 0.011,
                window: 8,
            },
            TraceEvent::PolicyRefit {
                at: SimTime::from_millis(21),
                generation: 1,
                samples: 64,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_parse_jsonl() {
        let events = one_of_each_variant();
        // One distinct variant per entry: this test must grow with the
        // enum, so a missing variant fails loudly here.
        let kinds: std::collections::BTreeSet<&str> = events.iter().map(TraceEvent::kind).collect();
        assert_eq!(
            kinds.len(),
            21,
            "update one_of_each_variant() for new TraceEvent variants"
        );

        let mut jsonl = String::new();
        for ev in &events {
            jsonl.push_str(&serde_json::to_string(ev).unwrap());
            jsonl.push('\n');
        }
        let back = crate::sink::parse_jsonl(&jsonl).expect("all variants parse back");
        assert_eq!(back, events);

        // Option fields must also survive in their `None` form.
        let none_batch = TraceEvent::Expired {
            at: SimTime::from_millis(2),
            key: 11,
            cause: LossCause::ExpiredInBuffer,
            batch: None,
        };
        let line = serde_json::to_string(&none_batch).unwrap();
        assert_eq!(
            crate::sink::parse_jsonl(&line).expect("None batch parses"),
            vec![none_batch]
        );
    }
}
