//! NetEm-style impairment: a network *condition* (delay + loss) and
//! time-varying condition timelines.
//!
//! The paper's testbed injects faults with the Linux NetEm emulator
//! (Jurgelionis et al., ICCCN 2011): a fixed one-way delay `D` and packet
//! loss rate `L` during each experiment, and a *time-varying* combination of
//! a Pareto delay process and a Gilbert–Elliott loss process in the
//! dynamic-configuration experiment (Fig. 9). [`NetCondition`] is the former;
//! [`ConditionTimeline`] is the latter.

use desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::delay::DelayModel;
use crate::loss::LossModel;

/// A snapshot of the network condition between producer and cluster: the
/// paper's feature pair `(D, L)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetCondition {
    /// One-way network delay `D`.
    pub delay: SimDuration,
    /// Delay jitter (standard deviation), NetEm's `delay <D> <jitter>`
    /// form; zero for a constant delay.
    pub jitter: SimDuration,
    /// Packet loss rate `L` in `[0, 1]`.
    pub loss_rate: f64,
}

impl NetCondition {
    /// A condition with the given one-way delay and loss rate.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`.
    #[must_use]
    pub fn new(delay: SimDuration, loss_rate: f64) -> Self {
        assert!(
            loss_rate.is_finite() && (0.0..=1.0).contains(&loss_rate),
            "loss_rate must be in [0,1]"
        );
        NetCondition {
            delay,
            jitter: SimDuration::ZERO,
            loss_rate,
        }
    }

    /// The same condition with NetEm-style jitter around the delay.
    #[must_use]
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// The paper's "normal case" boundary: `D < 200 ms` and `L = 0`.
    #[must_use]
    pub fn is_normal(&self) -> bool {
        self.delay < SimDuration::from_millis(200) && self.loss_rate == 0.0
    }

    /// The delay model to install on a link under this condition: constant
    /// without jitter, NetEm's truncated normal with it.
    #[must_use]
    pub fn delay_model(&self) -> DelayModel {
        if self.jitter.is_zero() {
            DelayModel::constant(self.delay)
        } else {
            DelayModel::normal(self.delay, self.jitter, SimDuration::ZERO)
        }
    }

    /// The loss model to install on a link under this condition.
    #[must_use]
    pub fn loss_model(&self) -> LossModel {
        if self.loss_rate == 0.0 {
            LossModel::None
        } else {
            LossModel::bernoulli(self.loss_rate)
        }
    }
}

impl Default for NetCondition {
    /// A healthy LAN: 1 ms one-way delay, no loss.
    fn default() -> Self {
        NetCondition::new(SimDuration::from_millis(1), 0.0)
    }
}

/// A piecewise-constant schedule of network conditions over simulated time.
///
/// Used to replay the Fig. 9 network in the dynamic-configuration
/// experiment: the condition changes at each breakpoint and holds until the
/// next one.
///
/// # Example
///
/// ```
/// use netsim::{ConditionTimeline, NetCondition};
/// use desim::{SimDuration, SimTime};
///
/// let tl = ConditionTimeline::new(vec![
///     (SimTime::ZERO, NetCondition::new(SimDuration::from_millis(10), 0.0)),
///     (SimTime::from_secs(60), NetCondition::new(SimDuration::from_millis(100), 0.15)),
/// ]).unwrap();
/// assert_eq!(tl.at(SimTime::from_secs(30)).loss_rate, 0.0);
/// assert_eq!(tl.at(SimTime::from_secs(90)).loss_rate, 0.15);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionTimeline {
    breakpoints: Vec<(SimTime, NetCondition)>,
}

/// Error building a [`ConditionTimeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineError {
    /// The breakpoint list was empty.
    Empty,
    /// Breakpoints were not strictly increasing in time.
    NotSorted,
    /// The first breakpoint was not at time zero.
    MissingOrigin,
}

impl core::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TimelineError::Empty => write!(f, "timeline needs at least one breakpoint"),
            TimelineError::NotSorted => write!(f, "breakpoints must strictly increase in time"),
            TimelineError::MissingOrigin => write!(f, "first breakpoint must be at time zero"),
        }
    }
}

impl std::error::Error for TimelineError {}

impl ConditionTimeline {
    /// Builds a timeline from `(start, condition)` breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`TimelineError`] when the list is empty, unsorted, or does
    /// not start at time zero.
    pub fn new(breakpoints: Vec<(SimTime, NetCondition)>) -> Result<Self, TimelineError> {
        if breakpoints.is_empty() {
            return Err(TimelineError::Empty);
        }
        if breakpoints[0].0 != SimTime::ZERO {
            return Err(TimelineError::MissingOrigin);
        }
        if breakpoints.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(TimelineError::NotSorted);
        }
        Ok(ConditionTimeline { breakpoints })
    }

    /// A timeline that holds a single condition forever.
    #[must_use]
    pub fn constant(condition: NetCondition) -> Self {
        ConditionTimeline {
            breakpoints: vec![(SimTime::ZERO, condition)],
        }
    }

    /// The condition in force at instant `t`.
    #[must_use]
    pub fn at(&self, t: SimTime) -> NetCondition {
        match self
            .breakpoints
            .binary_search_by(|(start, _)| start.cmp(&t))
        {
            Ok(i) => self.breakpoints[i].1,
            Err(0) => self.breakpoints[0].1, // unreachable: origin at zero
            Err(i) => self.breakpoints[i - 1].1,
        }
    }

    /// The next breakpoint strictly after `t`, if any.
    #[must_use]
    pub fn next_change(&self, t: SimTime) -> Option<SimTime> {
        self.breakpoints
            .iter()
            .map(|(start, _)| *start)
            .find(|start| *start > t)
    }

    /// All breakpoints in order.
    #[must_use]
    pub fn breakpoints(&self) -> &[(SimTime, NetCondition)] {
        &self.breakpoints
    }

    /// The instant of the final breakpoint.
    #[must_use]
    pub fn last_change(&self) -> SimTime {
        self.breakpoints
            .last()
            .map(|(t, _)| *t)
            .unwrap_or(SimTime::ZERO)
    }

    /// Time-averaged loss rate between `from` and `to`.
    ///
    /// Useful when summarising what a trace did over an experiment.
    #[must_use]
    pub fn mean_loss(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return self.at(from).loss_rate;
        }
        let mut acc = 0.0;
        let mut cursor = from;
        while cursor < to {
            let cond = self.at(cursor);
            let next = self.next_change(cursor).filter(|n| *n < to).unwrap_or(to);
            acc += cond.loss_rate * next.saturating_since(cursor).as_secs_f64();
            cursor = next;
        }
        acc / to.saturating_since(from).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(ms: u64, loss: f64) -> NetCondition {
        NetCondition::new(SimDuration::from_millis(ms), loss)
    }

    #[test]
    fn normal_case_boundary_matches_paper() {
        assert!(cond(100, 0.0).is_normal());
        assert!(!cond(250, 0.0).is_normal());
        assert!(!cond(100, 0.01).is_normal());
        // D < 200ms is strict.
        assert!(!cond(200, 0.0).is_normal());
    }

    #[test]
    fn timeline_lookup() {
        let tl = ConditionTimeline::new(vec![
            (SimTime::ZERO, cond(10, 0.0)),
            (SimTime::from_secs(10), cond(100, 0.1)),
            (SimTime::from_secs(20), cond(50, 0.05)),
        ])
        .unwrap();
        assert_eq!(tl.at(SimTime::ZERO), cond(10, 0.0));
        assert_eq!(tl.at(SimTime::from_secs(9)), cond(10, 0.0));
        assert_eq!(tl.at(SimTime::from_secs(10)), cond(100, 0.1));
        assert_eq!(tl.at(SimTime::from_secs(15)), cond(100, 0.1));
        assert_eq!(tl.at(SimTime::from_secs(99)), cond(50, 0.05));
    }

    #[test]
    fn next_change_finds_following_breakpoint() {
        let tl = ConditionTimeline::new(vec![
            (SimTime::ZERO, cond(1, 0.0)),
            (SimTime::from_secs(5), cond(2, 0.0)),
        ])
        .unwrap();
        assert_eq!(tl.next_change(SimTime::ZERO), Some(SimTime::from_secs(5)));
        assert_eq!(tl.next_change(SimTime::from_secs(5)), None);
        assert_eq!(tl.last_change(), SimTime::from_secs(5));
    }

    #[test]
    fn rejects_bad_timelines() {
        assert_eq!(ConditionTimeline::new(vec![]), Err(TimelineError::Empty));
        assert_eq!(
            ConditionTimeline::new(vec![(SimTime::from_secs(1), cond(1, 0.0))]),
            Err(TimelineError::MissingOrigin)
        );
        assert_eq!(
            ConditionTimeline::new(vec![
                (SimTime::ZERO, cond(1, 0.0)),
                (SimTime::ZERO, cond(2, 0.0)),
            ]),
            Err(TimelineError::NotSorted)
        );
    }

    #[test]
    fn mean_loss_weights_by_time() {
        let tl = ConditionTimeline::new(vec![
            (SimTime::ZERO, cond(1, 0.0)),
            (SimTime::from_secs(10), cond(1, 0.2)),
        ])
        .unwrap();
        let mean = tl.mean_loss(SimTime::ZERO, SimTime::from_secs(20));
        assert!((mean - 0.1).abs() < 1e-12);
    }

    #[test]
    fn condition_models() {
        let c = cond(100, 0.0);
        assert_eq!(c.loss_model(), LossModel::None);
        assert_eq!(
            c.delay_model(),
            DelayModel::constant(SimDuration::from_millis(100))
        );
        let lossy = cond(100, 0.19);
        assert_eq!(lossy.loss_model(), LossModel::bernoulli(0.19));
    }

    #[test]
    fn jitter_switches_to_a_normal_delay() {
        let c = cond(100, 0.0).with_jitter(SimDuration::from_millis(20));
        assert_eq!(
            c.delay_model(),
            DelayModel::normal(
                SimDuration::from_millis(100),
                SimDuration::from_millis(20),
                SimDuration::ZERO
            )
        );
        // Jitter does not change the "normal case" boundary.
        assert!(c.is_normal());
    }

    #[test]
    fn jittered_delays_vary_but_average_out() {
        use desim::SimRng;
        let c = cond(100, 0.0).with_jitter(SimDuration::from_millis(20));
        let model = c.delay_model();
        let mut rng = SimRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| model.sample(&mut rng).as_secs_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.100).abs() < 0.002, "mean {mean}");
        let distinct = samples.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(distinct > n / 2, "samples must actually vary");
    }

    #[test]
    fn serde_round_trip() {
        let tl = ConditionTimeline::new(vec![
            (SimTime::ZERO, cond(10, 0.0)),
            (SimTime::from_secs(60), cond(120, 0.13)),
        ])
        .unwrap();
        let json = serde_json::to_string(&tl).unwrap();
        let back: ConditionTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(tl, back);
    }
}
