//! Topology islands: connected components of the coupling graph, used to
//! assign simulation state to shards of a parallel engine.
//!
//! Two nodes belong to the same **island** when an edge couples them tightly
//! enough that they must evolve inside one event shard — e.g. a replication
//! link between two brokers, or a shared controller. Nodes with no coupling
//! edges form singleton islands and can be advanced fully in parallel (the
//! fleet workload's partitions, which never talk to each other, are exactly
//! this case).
//!
//! The computation is a plain union-find with path halving and union by
//! size; ties are broken toward the smaller root id so island numbering is
//! deterministic. Island ids are then compacted to `0..n_islands` in order
//! of each island's smallest member, which makes the node→shard assignment
//! reproducible across processes and independent of edge insertion order.

/// A deterministic node→island assignment for a coupling graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IslandMap {
    /// `shard_of[node]` is the island (shard) id of `node`, in
    /// `0..n_islands`.
    shard_of: Vec<u32>,
    n_islands: u32,
}

impl IslandMap {
    /// Compute islands for `n_nodes` nodes coupled by `edges`.
    ///
    /// Self-loops are ignored. Island ids are compacted and ordered by each
    /// island's smallest node id, so the result is a pure function of the
    /// *set* of edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge names a node `>= n_nodes`.
    #[must_use]
    pub fn compute(n_nodes: usize, edges: &[(u32, u32)]) -> Self {
        let mut parent: Vec<u32> = (0..n_nodes as u32).collect();
        let mut size = vec![1u32; n_nodes];

        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                // Path halving: point x at its grandparent as we walk up.
                let grand = parent[parent[x as usize] as usize];
                parent[x as usize] = grand;
                x = grand;
            }
            x
        }

        for &(a, b) in edges {
            assert!(
                (a as usize) < n_nodes && (b as usize) < n_nodes,
                "edge ({a}, {b}) names a node outside 0..{n_nodes}"
            );
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra == rb {
                continue;
            }
            // Union by size; on equal sizes keep the smaller root id so the
            // forest shape is independent of edge order.
            let (keep, absorb) = if size[ra as usize] > size[rb as usize]
                || (size[ra as usize] == size[rb as usize] && ra < rb)
            {
                (ra, rb)
            } else {
                (rb, ra)
            };
            parent[absorb as usize] = keep;
            size[keep as usize] += size[absorb as usize];
        }

        // Compact roots to 0..n_islands in order of smallest member, which
        // is simply ascending node order on first sight of each root.
        let mut shard_of = vec![0u32; n_nodes];
        let mut compact: Vec<Option<u32>> = vec![None; n_nodes];
        let mut next = 0u32;
        for node in 0..n_nodes as u32 {
            let root = find(&mut parent, node);
            let id = *compact[root as usize].get_or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            shard_of[node as usize] = id;
        }
        IslandMap {
            shard_of,
            n_islands: next,
        }
    }

    /// Number of islands (shards).
    #[must_use]
    pub fn n_islands(&self) -> usize {
        self.n_islands as usize
    }

    /// Number of nodes.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.shard_of.len()
    }

    /// The island (shard) id of `node`.
    #[must_use]
    pub fn shard_of(&self, node: u32) -> u32 {
        self.shard_of[node as usize]
    }

    /// The members of each island, in island order; members ascend within
    /// each island.
    #[must_use]
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.n_islands as usize];
        for (node, &island) in self.shard_of.iter().enumerate() {
            out[island as usize].push(node as u32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_edges_means_singleton_islands() {
        let map = IslandMap::compute(4, &[]);
        assert_eq!(map.n_islands(), 4);
        for node in 0..4 {
            assert_eq!(map.shard_of(node), node);
        }
    }

    #[test]
    fn replication_edges_merge_islands() {
        // Brokers 0-1-2 replicate to each other; 3-4 are a second group;
        // 5 stands alone.
        let map = IslandMap::compute(6, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(map.n_islands(), 3);
        assert_eq!(map.members(), vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn island_ids_are_independent_of_edge_order() {
        let a = IslandMap::compute(8, &[(6, 7), (0, 3), (3, 5), (1, 2)]);
        let b = IslandMap::compute(8, &[(1, 2), (3, 5), (0, 3), (7, 6)]);
        assert_eq!(a, b);
        // Ids ordered by smallest member: {0,3,5}=0, {1,2}=1, {4}=2, {6,7}=3.
        assert_eq!(a.shard_of(5), 0);
        assert_eq!(a.shard_of(2), 1);
        assert_eq!(a.shard_of(4), 2);
        assert_eq!(a.shard_of(6), 3);
    }

    #[test]
    fn chain_collapses_to_one_island() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let map = IslandMap::compute(100, &edges);
        assert_eq!(map.n_islands(), 1);
        assert!(map.shard_of.iter().all(|&s| s == 0));
    }

    #[test]
    fn self_loops_are_ignored() {
        let map = IslandMap::compute(3, &[(1, 1)]);
        assert_eq!(map.n_islands(), 3);
    }
}
