//! Generators for time-varying network conditions (the paper's Fig. 9).
//!
//! The dynamic-configuration experiment (paper §V) runs against an unstable
//! network whose **delay follows a Pareto distribution** (Zhang & He, ICIMP
//! 2007) and whose **packet-loss rate is generated from the Gilbert–Elliott
//! model** (Bildea et al., PIMRC 2015). This module samples both processes
//! at a fixed interval and materialises them into a
//! [`ConditionTimeline`] that can be replayed against a
//! [`crate::DuplexChannel`] and fed to the prediction model.

use desim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::loss::{GeState, LossModel};
use crate::netem::{ConditionTimeline, NetCondition};

/// Parameters of the Fig. 9 network generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Total trace duration.
    pub duration: SimDuration,
    /// Resampling interval (one breakpoint per interval).
    pub interval: SimDuration,
    /// Pareto scale (minimum delay).
    pub delay_scale: SimDuration,
    /// Pareto shape; smaller is heavier-tailed.
    pub delay_shape: f64,
    /// Delay cap to keep the simulation finite.
    pub delay_cap: SimDuration,
    /// Gilbert–Elliott: probability of Good → Bad per interval.
    pub p_good_to_bad: f64,
    /// Gilbert–Elliott: probability of Bad → Good per interval.
    pub p_bad_to_good: f64,
    /// Loss-rate range sampled while in the Good state.
    pub loss_good: (f64, f64),
    /// Loss-rate range sampled while in the Bad state.
    pub loss_bad: (f64, f64),
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            duration: SimDuration::from_secs(600),
            interval: SimDuration::from_secs(10),
            delay_scale: SimDuration::from_millis(20),
            delay_shape: 1.8,
            delay_cap: SimDuration::from_millis(400),
            p_good_to_bad: 0.20,
            p_bad_to_good: 0.40,
            loss_good: (0.0, 0.02),
            loss_bad: (0.08, 0.22),
        }
    }
}

impl TraceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration.is_zero() {
            return Err("duration must be positive".into());
        }
        if self.interval.is_zero() || self.interval > self.duration {
            return Err("interval must be positive and no longer than duration".into());
        }
        if self.delay_shape <= 0.0 {
            return Err("delay_shape must be positive".into());
        }
        for (name, p) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1]"));
            }
        }
        for (name, (lo, hi)) in [("loss_good", self.loss_good), ("loss_bad", self.loss_bad)] {
            if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
                return Err(format!("{name} must be an ordered range within [0,1]"));
            }
        }
        Ok(())
    }
}

/// A generated network trace: the condition timeline plus the hidden
/// Gilbert–Elliott state path (useful for plots and debugging).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkTrace {
    /// The piecewise-constant conditions.
    pub timeline: ConditionTimeline,
    /// The Gilbert–Elliott state in force during each interval.
    pub states: Vec<GeState>,
}

impl NetworkTrace {
    /// Time-averaged loss rate of the whole trace.
    #[must_use]
    pub fn mean_loss(&self) -> f64 {
        let end = SimTime::ZERO + duration_of(&self.timeline);
        self.timeline.mean_loss(SimTime::ZERO, end)
    }

    /// Fraction of intervals spent in the Bad state.
    #[must_use]
    pub fn bad_fraction(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        let bad = self.states.iter().filter(|s| **s == GeState::Bad).count();
        bad as f64 / self.states.len() as f64
    }
}

fn duration_of(timeline: &ConditionTimeline) -> SimDuration {
    // Breakpoints mark interval starts; the trace extends one interval past
    // the last breakpoint. Estimate using the median gap.
    let bps = timeline.breakpoints();
    if bps.len() < 2 {
        return SimDuration::ZERO;
    }
    let gap = bps[1].0.saturating_since(bps[0].0);
    bps.last()
        .expect("non-empty")
        .0
        .saturating_since(SimTime::ZERO)
        + gap
}

/// Generates a Fig. 9-style network trace.
///
/// Delay is sampled i.i.d. per interval from a capped Pareto distribution;
/// the loss rate follows a Gilbert–Elliott chain whose per-interval level is
/// drawn uniformly from the state's range.
///
/// # Errors
///
/// Returns the validation error when `config` is inconsistent.
///
/// # Example
///
/// ```
/// use netsim::trace::{generate_trace, TraceConfig};
/// use desim::SimRng;
///
/// let trace = generate_trace(&TraceConfig::default(), &mut SimRng::seed_from_u64(9)).unwrap();
/// assert!(trace.timeline.breakpoints().len() >= 59);
/// ```
pub fn generate_trace(config: &TraceConfig, rng: &mut SimRng) -> Result<NetworkTrace, String> {
    config.validate()?;
    let intervals = (config.duration.as_micros() / config.interval.as_micros()).max(1) as usize;
    let mut loss_chain =
        LossModel::gilbert_elliott(config.p_good_to_bad, config.p_bad_to_good, 0.0, 1.0);
    let mut breakpoints = Vec::with_capacity(intervals);
    let mut states = Vec::with_capacity(intervals);
    for i in 0..intervals {
        let start = SimTime::ZERO + config.interval * i as u64;
        // Advance the hidden chain once per interval; we only use its state.
        let _ = loss_chain.sample(rng);
        let state = loss_chain.ge_state().expect("GE model");
        let (lo, hi) = match state {
            GeState::Good => config.loss_good,
            GeState::Bad => config.loss_bad,
        };
        let loss = rng.uniform(lo, hi);
        let delay_secs = rng.pareto(config.delay_scale.as_secs_f64(), config.delay_shape);
        let delay = SimDuration::from_secs_f64(delay_secs).min(config.delay_cap);
        breakpoints.push((start, NetCondition::new(delay, loss)));
        states.push(state);
    }
    let timeline = ConditionTimeline::new(breakpoints).map_err(|e| e.to_string())?;
    Ok(NetworkTrace { timeline, states })
}

/// Generates a trace whose network **regime shifts** mid-run: conditions in
/// `[0, shift_at)` come from `base`, conditions in `[shift_at,
/// base.duration)` from `shifted`. The result is one spliced
/// [`ConditionTimeline`], so every consumer (the channel replayer, the
/// planner's estimator) sees the shift as ordinary breakpoints — a
/// first-class fault that induces model drift without touching the
/// simulator.
///
/// `base.duration` is the *total* trace length; `shifted.duration` is
/// ignored and both halves are resampled on their own `interval`. The two
/// halves are drawn from a single `rng` stream (base first), so the whole
/// spliced trace is deterministic in the seed.
///
/// # Errors
///
/// Returns the validation error when either config is inconsistent, or when
/// `shift_at` does not fall strictly inside the trace (at least one interval
/// on each side).
///
/// # Example
///
/// ```
/// use netsim::trace::{generate_regime_shift, TraceConfig};
/// use desim::{SimDuration, SimRng};
///
/// let calm = TraceConfig { p_good_to_bad: 0.0, ..TraceConfig::default() };
/// let stormy = TraceConfig { p_bad_to_good: 0.0, ..TraceConfig::default() };
/// let trace = generate_regime_shift(
///     &calm,
///     &stormy,
///     SimDuration::from_secs(300),
///     &mut SimRng::seed_from_u64(9),
/// )
/// .unwrap();
/// assert_eq!(trace.timeline.breakpoints().len(), 60);
/// ```
pub fn generate_regime_shift(
    base: &TraceConfig,
    shifted: &TraceConfig,
    shift_at: SimDuration,
    rng: &mut SimRng,
) -> Result<NetworkTrace, String> {
    base.validate()?;
    shifted.validate()?;
    if shift_at < base.interval {
        return Err("shift_at must leave at least one base interval".into());
    }
    if shift_at + shifted.interval > base.duration {
        return Err("shift_at must leave at least one shifted interval".into());
    }
    let head_cfg = TraceConfig {
        duration: shift_at,
        ..base.clone()
    };
    let tail_cfg = TraceConfig {
        duration: base.duration.saturating_sub(shift_at),
        ..shifted.clone()
    };
    let head = generate_trace(&head_cfg, rng)?;
    let tail = generate_trace(&tail_cfg, rng)?;

    let mut breakpoints: Vec<(SimTime, NetCondition)> = head.timeline.breakpoints().to_vec();
    breakpoints.extend(
        tail.timeline
            .breakpoints()
            .iter()
            .map(|(start, cond)| (*start + shift_at, *cond)),
    );
    let mut states = head.states;
    states.extend(tail.states);
    let timeline = ConditionTimeline::new(breakpoints).map_err(|e| e.to_string())?;
    Ok(NetworkTrace { timeline, states })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_expected_breakpoints() {
        let cfg = TraceConfig {
            duration: SimDuration::from_secs(100),
            interval: SimDuration::from_secs(10),
            ..TraceConfig::default()
        };
        let trace = generate_trace(&cfg, &mut SimRng::seed_from_u64(1)).unwrap();
        assert_eq!(trace.timeline.breakpoints().len(), 10);
        assert_eq!(trace.states.len(), 10);
    }

    #[test]
    fn delays_respect_scale_and_cap() {
        let cfg = TraceConfig::default();
        let trace = generate_trace(&cfg, &mut SimRng::seed_from_u64(2)).unwrap();
        for (_, cond) in trace.timeline.breakpoints() {
            assert!(cond.delay >= cfg.delay_scale);
            assert!(cond.delay <= cfg.delay_cap);
        }
    }

    #[test]
    fn loss_levels_match_hidden_state() {
        let cfg = TraceConfig::default();
        let trace = generate_trace(&cfg, &mut SimRng::seed_from_u64(3)).unwrap();
        for ((_, cond), state) in trace.timeline.breakpoints().iter().zip(&trace.states) {
            match state {
                GeState::Good => assert!(cond.loss_rate <= cfg.loss_good.1),
                GeState::Bad => {
                    assert!(cond.loss_rate >= cfg.loss_bad.0);
                    assert!(cond.loss_rate <= cfg.loss_bad.1);
                }
            }
        }
    }

    #[test]
    fn bad_fraction_near_stationary_probability() {
        let cfg = TraceConfig {
            duration: SimDuration::from_secs(100_000),
            interval: SimDuration::from_secs(10),
            ..TraceConfig::default()
        };
        let trace = generate_trace(&cfg, &mut SimRng::seed_from_u64(4)).unwrap();
        // π_B = 0.2/(0.2+0.4) = 1/3.
        assert!((trace.bad_fraction() - 1.0 / 3.0).abs() < 0.03);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = TraceConfig::default();
        let a = generate_trace(&cfg, &mut SimRng::seed_from_u64(5)).unwrap();
        let b = generate_trace(&cfg, &mut SimRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = TraceConfig {
            interval: SimDuration::ZERO,
            ..TraceConfig::default()
        };
        assert!(generate_trace(&cfg, &mut SimRng::seed_from_u64(6)).is_err());
        let cfg = TraceConfig {
            loss_bad: (0.5, 0.2),
            ..TraceConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = TraceConfig {
            delay_shape: -1.0,
            ..TraceConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn regime_shift_splices_the_two_halves() {
        let calm = TraceConfig {
            p_good_to_bad: 0.0,
            loss_good: (0.0, 0.01),
            ..TraceConfig::default()
        };
        let stormy = TraceConfig {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            loss_bad: (0.3, 0.4),
            ..TraceConfig::default()
        };
        let shift = SimDuration::from_secs(300);
        let trace =
            generate_regime_shift(&calm, &stormy, shift, &mut SimRng::seed_from_u64(8)).unwrap();
        // 30 calm intervals + 30 stormy intervals in one timeline.
        assert_eq!(trace.timeline.breakpoints().len(), 60);
        assert_eq!(trace.states.len(), 60);
        let shift_time = SimTime::ZERO + shift;
        for (start, cond) in trace.timeline.breakpoints() {
            if *start < shift_time {
                assert!(cond.loss_rate <= 0.01, "calm half leaked loss");
            } else {
                assert!(cond.loss_rate >= 0.3, "stormy half too mild");
            }
        }
    }

    #[test]
    fn regime_shift_is_deterministic_for_fixed_seed() {
        let base = TraceConfig::default();
        let shifted = TraceConfig {
            loss_bad: (0.2, 0.3),
            ..TraceConfig::default()
        };
        let shift = SimDuration::from_secs(200);
        let a =
            generate_regime_shift(&base, &shifted, shift, &mut SimRng::seed_from_u64(9)).unwrap();
        let b =
            generate_regime_shift(&base, &shifted, shift, &mut SimRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn regime_shift_rejects_degenerate_split_points() {
        let cfg = TraceConfig::default();
        let mut rng = SimRng::seed_from_u64(10);
        assert!(generate_regime_shift(&cfg, &cfg, SimDuration::ZERO, &mut rng).is_err());
        assert!(generate_regime_shift(&cfg, &cfg, cfg.duration, &mut rng).is_err());
    }

    #[test]
    fn mean_loss_is_sane() {
        let trace = generate_trace(&TraceConfig::default(), &mut SimRng::seed_from_u64(7)).unwrap();
        let mean = trace.mean_loss();
        assert!((0.0..=0.25).contains(&mean), "mean loss {mean}");
    }
}
