//! Propagation-delay processes.
//!
//! The paper models end-to-end network delay with a **Pareto** distribution
//! (Zhang & He, ICIMP 2007) in its dynamic-configuration experiment, and
//! fixed NetEm delays (e.g. `D = 100 ms`) in the static ones. Each variant
//! here samples a one-way propagation delay per packet.

use desim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// A per-packet one-way delay process.
///
/// # Example
///
/// ```
/// use netsim::DelayModel;
/// use desim::{SimDuration, SimRng};
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let model = DelayModel::constant(SimDuration::from_millis(100));
/// assert_eq!(model.sample(&mut rng), SimDuration::from_millis(100));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// The same delay for every packet.
    Constant {
        /// The fixed one-way delay.
        delay: SimDuration,
    },
    /// Uniformly distributed delay in `[low, high]`.
    Uniform {
        /// Minimum delay.
        low: SimDuration,
        /// Maximum delay.
        high: SimDuration,
    },
    /// Normal delay (NetEm's `delay <mean> <jitter>` with normal
    /// distribution), truncated below at `floor`.
    Normal {
        /// Mean delay.
        mean: SimDuration,
        /// Standard deviation (jitter).
        jitter: SimDuration,
        /// Minimum possible delay after truncation.
        floor: SimDuration,
    },
    /// Heavy-tailed Pareto delay: `scale · U^(-1/shape)`, capped at `cap`.
    Pareto {
        /// Scale `x_m` — the minimum delay.
        scale: SimDuration,
        /// Tail index `alpha`; smaller values give heavier tails.
        shape: f64,
        /// Upper cap to keep simulations finite.
        cap: SimDuration,
    },
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Constant {
            delay: SimDuration::from_millis(1),
        }
    }
}

impl DelayModel {
    /// A constant delay.
    #[must_use]
    pub fn constant(delay: SimDuration) -> Self {
        DelayModel::Constant { delay }
    }

    /// A uniform delay in `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    #[must_use]
    pub fn uniform(low: SimDuration, high: SimDuration) -> Self {
        assert!(low <= high, "low must not exceed high");
        DelayModel::Uniform { low, high }
    }

    /// A truncated normal delay (mean ± jitter, never below `floor`).
    #[must_use]
    pub fn normal(mean: SimDuration, jitter: SimDuration, floor: SimDuration) -> Self {
        DelayModel::Normal {
            mean,
            jitter,
            floor,
        }
    }

    /// A capped Pareto delay.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not strictly positive or `scale` is zero.
    #[must_use]
    pub fn pareto(scale: SimDuration, shape: f64, cap: SimDuration) -> Self {
        assert!(shape > 0.0, "shape must be positive");
        assert!(!scale.is_zero(), "scale must be positive");
        DelayModel::Pareto { scale, shape, cap }
    }

    /// Samples the delay for one packet.
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            DelayModel::Constant { delay } => *delay,
            DelayModel::Uniform { low, high } => {
                let secs = rng.uniform(low.as_secs_f64(), high.as_secs_f64());
                SimDuration::from_secs_f64(secs)
            }
            DelayModel::Normal {
                mean,
                jitter,
                floor,
            } => {
                let secs = rng.normal(mean.as_secs_f64(), jitter.as_secs_f64());
                SimDuration::from_secs_f64(secs).max(*floor)
            }
            DelayModel::Pareto { scale, shape, cap } => {
                let secs = rng.pareto(scale.as_secs_f64(), *shape);
                SimDuration::from_secs_f64(secs).min(*cap)
            }
        }
    }

    /// The distribution's mean delay (after truncation for Pareto with an
    /// infinite analytic mean, the cap keeps it finite; this returns the
    /// *untruncated* analytic mean clamped to the cap, a close approximation
    /// for the parameter ranges used here).
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        match self {
            DelayModel::Constant { delay } => *delay,
            DelayModel::Uniform { low, high } => (*low + *high) / 2,
            DelayModel::Normal { mean, floor, .. } => (*mean).max(*floor),
            DelayModel::Pareto { scale, shape, cap } => {
                if *shape <= 1.0 {
                    *cap
                } else {
                    scale.mul_f64(shape / (shape - 1.0)).min(*cap)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(model: &DelayModel, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n)
            .map(|_| model.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let m = DelayModel::constant(SimDuration::from_millis(42));
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(42));
        }
        assert_eq!(m.mean(), SimDuration::from_millis(42));
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let m = DelayModel::uniform(SimDuration::from_millis(10), SimDuration::from_millis(30));
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(10) && d <= SimDuration::from_millis(30));
        }
        assert!((sample_mean(&m, 3, 50_000) - 0.020).abs() < 0.001);
        assert_eq!(m.mean(), SimDuration::from_millis(20));
    }

    #[test]
    fn normal_truncates_at_floor() {
        let m = DelayModel::normal(
            SimDuration::from_millis(5),
            SimDuration::from_millis(10),
            SimDuration::from_millis(1),
        );
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(m.sample(&mut rng) >= SimDuration::from_millis(1));
        }
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let m = DelayModel::pareto(SimDuration::from_millis(20), 2.0, SimDuration::from_secs(1));
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(20));
            assert!(d <= SimDuration::from_secs(1));
        }
        // Analytic mean (untruncated) = scale * shape/(shape-1) = 40ms.
        let mean = sample_mean(&m, 6, 200_000);
        assert!((mean - 0.040).abs() < 0.004, "observed {mean}");
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let m = DelayModel::pareto(
            SimDuration::from_millis(20),
            1.5,
            SimDuration::from_secs(10),
        );
        let mut rng = SimRng::seed_from_u64(7);
        let n = 100_000;
        let over_100ms = (0..n)
            .filter(|_| m.sample(&mut rng) > SimDuration::from_millis(100))
            .count();
        // P(X > 100ms) = (20/100)^1.5 ≈ 0.0894
        let frac = over_100ms as f64 / n as f64;
        assert!((frac - 0.0894).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn pareto_mean_with_small_shape_is_cap() {
        let cap = SimDuration::from_secs(2);
        let m = DelayModel::pareto(SimDuration::from_millis(10), 0.9, cap);
        assert_eq!(m.mean(), cap);
    }

    #[test]
    #[should_panic(expected = "low must not exceed high")]
    fn uniform_rejects_inverted_bounds() {
        let _ = DelayModel::uniform(SimDuration::from_millis(2), SimDuration::from_millis(1));
    }

    #[test]
    fn serde_round_trip() {
        let m = DelayModel::pareto(SimDuration::from_millis(20), 2.5, SimDuration::from_secs(1));
        let json = serde_json::to_string(&m).unwrap();
        let back: DelayModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
