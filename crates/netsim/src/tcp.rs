//! A sans-IO TCP sender/receiver pair.
//!
//! Kafka speaks a binary protocol over TCP, and the paper's reliability
//! curves are shaped by TCP behaviour: retransmissions mask low packet-loss
//! rates (the knee near `L ≈ 8 %` in Fig. 7), acknowledgement traffic
//! contends with retransmissions for bandwidth (Fig. 4), and RTO exponential
//! backoff stalls connections under heavy loss. This module implements the
//! mechanisms that matter at simulation granularity:
//!
//! * cumulative ACKs with out-of-order reassembly,
//! * RTT estimation (RFC 6298) with Karn's algorithm,
//! * retransmission timeout with exponential backoff,
//! * fast retransmit on three duplicate ACKs with NewReno-style partial-ACK
//!   handling,
//! * slow start and AIMD congestion avoidance.
//!
//! The types are *sans-IO*: they never talk to a network. [`TcpSender::emit`]
//! returns segments the caller must carry (e.g. through a [`crate::Link`]),
//! and arrivals are fed back via [`TcpSender::on_ack`] /
//! [`TcpReceiver::on_segment`]. The [`crate::channel`] module wires a pair of
//! these into a full-duplex connection.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static TCP parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment payload in bytes.
    pub mss: u64,
    /// Per-segment header overhead on the wire (Ethernet + IP + TCP).
    pub header_bytes: u64,
    /// Size of a pure acknowledgement packet on the wire.
    pub ack_bytes: u64,
    /// Initial congestion window, in segments (RFC 6928 uses 10).
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, in segments.
    pub initial_ssthresh: f64,
    /// Congestion-window cap, in segments (stands in for the receive
    /// window).
    pub max_cwnd: f64,
    /// Initial retransmission timeout.
    pub rto_initial: SimDuration,
    /// Lower bound on the RTO.
    pub rto_min: SimDuration,
    /// Upper bound on the RTO (backoff stops doubling here).
    pub rto_max: SimDuration,
    /// Send-buffer size in bytes; `offer` accepts no more than this minus
    /// the unacknowledged backlog.
    pub send_buffer: u64,
    /// Enable RFC 5827 early retransmit (lower dupack threshold at small
    /// flight sizes). Modern kernels have it; disabling it reverts to
    /// classic three-dupack Reno, which collapses at small windows.
    pub early_retransmit: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            header_bytes: 66,
            ack_bytes: 66,
            initial_cwnd: 10.0,
            initial_ssthresh: 64.0,
            max_cwnd: 256.0,
            rto_initial: SimDuration::from_millis(1_000),
            rto_min: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(60),
            send_buffer: 128 * 1024,
            early_retransmit: true,
        }
    }
}

/// A segment handed to the caller for transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First payload byte's sequence number.
    pub seq: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// `true` when this is a retransmission.
    pub retransmit: bool,
}

impl Segment {
    /// Bytes this segment occupies on the wire under `cfg`.
    #[must_use]
    pub fn wire_bytes(&self, cfg: &TcpConfig) -> u64 {
        self.len + cfg.header_bytes
    }
}

/// Cumulative sender statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpSenderStats {
    /// Segments emitted, including retransmissions.
    pub segments_sent: u64,
    /// Retransmitted segments (fast retransmit + RTO).
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast retransmits triggered by duplicate ACKs.
    pub fast_retransmits: u64,
    /// Application bytes acknowledged end-to-end.
    pub bytes_acked: u64,
}

#[derive(Debug, Clone, Copy)]
struct SegMeta {
    end: u64,
    sent_at: SimTime,
    retransmitted: bool,
}

/// The sending half of a TCP connection.
///
/// Outstanding segments live in a `VecDeque` kept sorted by start offset:
/// new data is appended at ever-increasing `snd_nxt`, cumulative ACKs pop
/// from the front, and the (at most one) partially-acked segment re-enters
/// at the front. This keeps the per-ACK hot path allocation-free where a
/// map would rebalance and reallocate.
#[derive(Debug, Clone)]
pub struct TcpSender {
    cfg: TcpConfig,
    snd_una: u64,
    snd_nxt: u64,
    app_end: u64,
    outstanding: VecDeque<(u64, SegMeta)>,
    retx_queue: VecDeque<u64>,
    cwnd: f64,
    ssthresh: f64,
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    rto_deadline: Option<SimTime>,
    rto_epoch: u64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    backoffs: u32,
    last_progress: SimTime,
    stats: TcpSenderStats,
}

impl TcpSender {
    /// Creates an idle sender.
    #[must_use]
    pub fn new(cfg: TcpConfig, now: SimTime) -> Self {
        let cwnd = cfg.initial_cwnd;
        let ssthresh = cfg.initial_ssthresh;
        let rto = cfg.rto_initial;
        TcpSender {
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            app_end: 0,
            outstanding: VecDeque::new(),
            retx_queue: VecDeque::new(),
            cwnd,
            ssthresh,
            srtt: None,
            rttvar: 0.0,
            rto,
            rto_deadline: None,
            rto_epoch: 0,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            backoffs: 0,
            last_progress: now,
            stats: TcpSenderStats::default(),
        }
    }

    /// Send-buffer space currently available to the application.
    #[must_use]
    pub fn available(&self) -> u64 {
        self.cfg
            .send_buffer
            .saturating_sub(self.app_end - self.snd_una)
    }

    /// Accepts `bytes` of application data into the send buffer.
    ///
    /// Returns the number of bytes actually accepted (possibly less than
    /// requested when the buffer is nearly full).
    pub fn offer(&mut self, bytes: u64) -> u64 {
        let accepted = bytes.min(self.available());
        self.app_end += accepted;
        accepted
    }

    /// Bytes accepted from the application so far (the stream length).
    #[must_use]
    pub fn stream_end(&self) -> u64 {
        self.app_end
    }

    /// First byte not yet cumulatively acknowledged.
    #[must_use]
    pub fn acked_up_to(&self) -> u64 {
        self.snd_una
    }

    /// Unacknowledged bytes currently buffered or in flight.
    #[must_use]
    pub fn bytes_unacked(&self) -> u64 {
        self.app_end - self.snd_una
    }

    /// `true` when every offered byte has been acknowledged.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.snd_una == self.app_end
    }

    /// Current congestion window in segments.
    #[must_use]
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Smoothed RTT estimate, if one has been sampled.
    #[must_use]
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }

    /// Current retransmission timeout.
    #[must_use]
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Consecutive RTO backoffs without forward progress.
    #[must_use]
    pub fn backoffs(&self) -> u32 {
        self.backoffs
    }

    /// Instant of the last cumulative-ACK progress (or creation).
    #[must_use]
    pub fn last_progress(&self) -> SimTime {
        self.last_progress
    }

    /// The pending retransmission-timer deadline, if any.
    #[must_use]
    pub fn rto_deadline(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// Monotone counter bumped whenever the RTO deadline is rescheduled.
    ///
    /// Event-queue drivers use it to lazily invalidate stale timer events.
    #[must_use]
    pub fn rto_epoch(&self) -> u64 {
        self.rto_epoch
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> TcpSenderStats {
        self.stats
    }

    /// Resets the sender to its freshly-created state in place, keeping the
    /// allocated capacity of the outstanding and retransmission queues.
    ///
    /// State-identical to `TcpSender::new(cfg, now)` — connection resets
    /// reuse the existing buffers instead of allocating a new sender.
    pub fn reset(&mut self, now: SimTime) {
        self.snd_una = 0;
        self.snd_nxt = 0;
        self.app_end = 0;
        self.outstanding.clear();
        self.retx_queue.clear();
        self.cwnd = self.cfg.initial_cwnd;
        self.ssthresh = self.cfg.initial_ssthresh;
        self.srtt = None;
        self.rttvar = 0.0;
        self.rto = self.cfg.rto_initial;
        self.rto_deadline = None;
        self.rto_epoch = 0;
        self.dupacks = 0;
        self.in_recovery = false;
        self.recover = 0;
        self.backoffs = 0;
        self.last_progress = now;
        self.stats = TcpSenderStats::default();
    }

    fn set_rto_deadline(&mut self, deadline: Option<SimTime>) {
        self.rto_deadline = deadline;
        self.rto_epoch += 1;
    }

    /// Index of the outstanding segment starting at `start`, if any.
    fn outstanding_index(&self, start: u64) -> Option<usize> {
        let idx = self.outstanding.partition_point(|&(s, _)| s < start);
        match self.outstanding.get(idx) {
            Some(&(s, _)) if s == start => Some(idx),
            _ => None,
        }
    }

    /// Emits every segment the window currently allows.
    ///
    /// Allocating convenience wrapper around [`TcpSender::emit_into`].
    pub fn emit(&mut self, now: SimTime) -> Vec<Segment> {
        let mut out = Vec::new();
        self.emit_into(now, &mut out);
        out
    }

    /// Emits every segment the window currently allows, appending to `out`.
    ///
    /// Retransmissions queued by loss recovery are sent first and bypass the
    /// congestion-window check (there is always at least one segment's worth
    /// of headroom for recovery). The caller owns (and typically reuses)
    /// `out`; this method never clears it.
    pub fn emit_into(&mut self, now: SimTime, out: &mut Vec<Segment>) {
        // Retransmissions first.
        while let Some(start) = self.retx_queue.pop_front() {
            if let Some(idx) = self.outstanding_index(start) {
                let meta = &mut self.outstanding[idx].1;
                meta.retransmitted = true;
                meta.sent_at = now;
                out.push(Segment {
                    seq: start,
                    len: meta.end - start,
                    retransmit: true,
                });
                self.stats.segments_sent += 1;
                self.stats.retransmits += 1;
            }
        }
        // New data while the window allows.
        let window = self.cwnd.floor().max(1.0) as usize;
        while self.snd_nxt < self.app_end && self.outstanding.len() < window {
            let len = (self.app_end - self.snd_nxt).min(self.cfg.mss);
            // `snd_nxt` exceeds every outstanding start, so appending keeps
            // the deque sorted.
            self.outstanding.push_back((
                self.snd_nxt,
                SegMeta {
                    end: self.snd_nxt + len,
                    sent_at: now,
                    retransmitted: false,
                },
            ));
            out.push(Segment {
                seq: self.snd_nxt,
                len,
                retransmit: false,
            });
            self.snd_nxt += len;
            self.stats.segments_sent += 1;
        }
        if !self.outstanding.is_empty() && self.rto_deadline.is_none() {
            self.set_rto_deadline(Some(now + self.rto));
        }
    }

    /// Processes a cumulative acknowledgement up to byte `ack`.
    ///
    /// Returns `true` when the ACK advanced `snd_una` (forward progress).
    pub fn on_ack(&mut self, ack: u64, now: SimTime) -> bool {
        if ack > self.snd_una {
            self.stats.bytes_acked += ack - self.snd_una;
            self.snd_una = ack;
            // Drop fully-acked segments from the front; sample RTT per
            // Karn's algorithm. Segments are disjoint, so at most one is
            // partially covered and it re-enters at the front (still the
            // smallest start).
            let mut rtt_sample: Option<SimDuration> = None;
            while let Some(&(start, _)) = self.outstanding.front() {
                if start >= ack {
                    break;
                }
                let (_, meta) = self.outstanding.pop_front().expect("front exists");
                if meta.end > ack {
                    self.outstanding.push_front((ack, meta));
                    break;
                } else if !meta.retransmitted {
                    let s = now.saturating_since(meta.sent_at);
                    rtt_sample = Some(rtt_sample.map_or(s, |r: SimDuration| r.max(s)));
                }
            }
            if let Some(sample) = rtt_sample {
                self.update_rtt(sample);
            }
            self.dupacks = 0;
            self.backoffs = 0;
            self.last_progress = now;
            if self.in_recovery {
                if ack >= self.recover {
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ACK: retransmit the next hole.
                    if matches!(self.outstanding.front(), Some(&(s, _)) if s == ack) {
                        self.retx_queue.push_front(ack);
                    }
                }
            } else if self.cwnd < self.ssthresh {
                self.cwnd += 1.0; // slow start
            } else {
                self.cwnd += 1.0 / self.cwnd; // congestion avoidance
            }
            self.cwnd = self.cwnd.min(self.cfg.max_cwnd);
            let deadline = if self.outstanding.is_empty() && self.retx_queue.is_empty() {
                None
            } else {
                Some(now + self.rto)
            };
            self.set_rto_deadline(deadline);
            true
        } else {
            if ack == self.snd_una && !self.outstanding.is_empty() {
                self.dupacks += 1;
                // RFC 5827 early retransmit: with fewer than four segments
                // outstanding, three duplicate ACKs can never arrive, so
                // the dupack threshold shrinks with the flight size. This
                // is what keeps modern TCP responsive at small windows —
                // without it, every small-window loss costs a full RTO.
                let threshold = if self.cfg.early_retransmit {
                    match self.outstanding.len() {
                        0..=1 => u32::MAX, // no dupacks possible
                        2 => 1,
                        3 => 2,
                        _ => 3,
                    }
                } else {
                    3
                };
                if self.dupacks >= threshold && !self.in_recovery {
                    self.in_recovery = true;
                    self.recover = self.snd_nxt;
                    self.ssthresh = (self.cwnd / 2.0).max(2.0);
                    self.cwnd = self.ssthresh;
                    self.retx_queue.push_back(self.snd_una);
                    self.stats.fast_retransmits += 1;
                }
            }
            false
        }
    }

    /// Fires the retransmission timer: collapses the window, backs off the
    /// RTO, and queues the first unacknowledged segment for retransmission.
    ///
    /// The caller is responsible for only invoking this when
    /// [`TcpSender::rto_deadline`] has passed.
    pub fn on_rto(&mut self, now: SimTime) {
        if self.outstanding.is_empty() {
            self.set_rto_deadline(None);
            return;
        }
        self.stats.timeouts += 1;
        self.backoffs += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dupacks = 0;
        self.in_recovery = false;
        self.rto = self
            .rto
            .mul_f64(2.0)
            .min(self.cfg.rto_max)
            .max(self.cfg.rto_min);
        self.retx_queue.clear();
        self.retx_queue.push_back(self.snd_una);
        self.set_rto_deadline(Some(now + self.rto));
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        let r = sample.as_secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let rto = self.srtt.expect("just set") + 4.0 * self.rttvar;
        self.rto = SimDuration::from_secs_f64(rto)
            .max(self.cfg.rto_min)
            .min(self.cfg.rto_max);
    }
}

/// The receiving half of a TCP connection: cumulative ACK generation with
/// out-of-order reassembly.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    rcv_nxt: u64,
    out_of_order: BTreeMap<u64, u64>,
    duplicate_segments: u64,
}

impl TcpReceiver {
    /// Creates a receiver expecting byte 0.
    #[must_use]
    pub fn new() -> Self {
        TcpReceiver::default()
    }

    /// The next in-order byte expected — also the cumulative ACK value.
    #[must_use]
    pub fn contiguous(&self) -> u64 {
        self.rcv_nxt
    }

    /// Segments received that were entirely duplicate data.
    #[must_use]
    pub fn duplicate_segments(&self) -> u64 {
        self.duplicate_segments
    }

    /// Resets the receiver to expect byte 0 again (connection reset).
    pub fn reset(&mut self) {
        self.rcv_nxt = 0;
        self.out_of_order.clear();
        self.duplicate_segments = 0;
    }

    /// Processes an arriving segment `[seq, seq+len)`.
    ///
    /// Returns the cumulative ACK to send back (the new `rcv_nxt`).
    pub fn on_segment(&mut self, seq: u64, len: u64) -> u64 {
        let end = seq + len;
        if end <= self.rcv_nxt {
            self.duplicate_segments += 1;
            return self.rcv_nxt;
        }
        if seq <= self.rcv_nxt {
            self.rcv_nxt = end;
            // Pull any newly-contiguous stashed segments.
            while let Some((&start, &stash_end)) = self.out_of_order.iter().next() {
                if start > self.rcv_nxt {
                    break;
                }
                self.out_of_order.remove(&start);
                self.rcv_nxt = self.rcv_nxt.max(stash_end);
            }
        } else {
            // Future data: stash, merging by start offset.
            let entry = self.out_of_order.entry(seq).or_insert(end);
            *entry = (*entry).max(end);
        }
        self.rcv_nxt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    /// Runs a lossless ping-pong between sender and receiver with a fixed
    /// RTT, returning the time at which everything was acknowledged.
    fn drain_lossless(bytes: u64, rtt: SimDuration) -> (TcpSender, SimTime) {
        let mut snd = TcpSender::new(cfg(), SimTime::ZERO);
        let mut rcv = TcpReceiver::new();
        let mut offered = 0;
        let mut now = SimTime::ZERO;
        loop {
            offered += snd.offer(bytes - offered);
            let segs = snd.emit(now);
            if segs.is_empty() && snd.is_idle() && offered == bytes {
                break;
            }
            now += rtt;
            let mut last_ack = snd.acked_up_to();
            for seg in segs {
                last_ack = rcv.on_segment(seg.seq, seg.len);
            }
            snd.on_ack(last_ack, now);
            assert!(now < SimTime::from_secs(3600), "no progress");
        }
        (snd, now)
    }

    #[test]
    fn lossless_transfer_delivers_all_bytes() {
        let (snd, _) = drain_lossless(1_000_000, SimDuration::from_millis(10));
        assert_eq!(snd.acked_up_to(), 1_000_000);
        assert_eq!(snd.stats().retransmits, 0);
        assert_eq!(snd.stats().timeouts, 0);
    }

    #[test]
    fn slow_start_doubles_window_per_rtt() {
        let mut snd = TcpSender::new(cfg(), SimTime::ZERO);
        let mut rcv = TcpReceiver::new();
        snd.offer(10_000_000);
        let first = snd.emit(SimTime::ZERO);
        assert_eq!(first.len(), 10, "initial cwnd of 10 segments");
        let mut now = SimTime::from_millis(10);
        for seg in &first {
            let ack = rcv.on_segment(seg.seq, seg.len);
            snd.on_ack(ack, now);
        }
        // After 10 ACKs in slow start the window grew by 10.
        assert!((snd.cwnd() - 20.0).abs() < 1e-9);
        now += SimDuration::from_millis(10);
        let second = snd.emit(now);
        assert_eq!(second.len(), 20);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut snd = TcpSender::new(
            TcpConfig {
                initial_cwnd: 10.0,
                initial_ssthresh: 10.0, // start in congestion avoidance
                ..cfg()
            },
            SimTime::ZERO,
        );
        let mut rcv = TcpReceiver::new();
        snd.offer(100_000_000);
        let mut now = SimTime::ZERO;
        let before = snd.cwnd();
        // One full window of ACKs should grow cwnd by about 1 segment.
        let segs = snd.emit(now);
        now += SimDuration::from_millis(10);
        for seg in segs {
            let ack = rcv.on_segment(seg.seq, seg.len);
            snd.on_ack(ack, now);
        }
        assert!(
            (snd.cwnd() - before - 1.0).abs() < 0.1,
            "cwnd {}",
            snd.cwnd()
        );
    }

    #[test]
    fn fast_retransmit_after_three_dupacks() {
        let mut snd = TcpSender::new(cfg(), SimTime::ZERO);
        let mut rcv = TcpReceiver::new();
        snd.offer(1448 * 5);
        let segs = snd.emit(SimTime::ZERO);
        assert_eq!(segs.len(), 5);
        // Lose the first segment; deliver the other four.
        let mut now = SimTime::from_millis(10);
        for seg in &segs[1..] {
            let ack = rcv.on_segment(seg.seq, seg.len);
            assert_eq!(ack, 0, "hole at the front keeps ack at 0");
            snd.on_ack(ack, now);
        }
        assert_eq!(snd.stats().fast_retransmits, 1);
        let retx = snd.emit(now);
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].seq, 0);
        assert!(retx[0].retransmit);
        // Delivering the retransmission acks everything at once.
        now += SimDuration::from_millis(10);
        let ack = rcv.on_segment(retx[0].seq, retx[0].len);
        assert_eq!(ack, 1448 * 5);
        assert!(snd.on_ack(ack, now));
        assert!(snd.is_idle());
    }

    #[test]
    fn rto_collapses_window_and_backs_off() {
        let mut snd = TcpSender::new(cfg(), SimTime::ZERO);
        snd.offer(1448 * 4);
        let _ = snd.emit(SimTime::ZERO);
        let dl1 = snd.rto_deadline().expect("timer armed");
        snd.on_rto(dl1);
        assert_eq!(snd.cwnd(), 1.0);
        assert_eq!(snd.backoffs(), 1);
        let retx = snd.emit(dl1);
        assert_eq!(retx.len(), 1);
        assert!(retx[0].retransmit);
        let dl2 = snd.rto_deadline().expect("timer rearmed");
        assert!(dl2.saturating_since(dl1) >= snd.rto() / 2);
        snd.on_rto(dl2);
        assert_eq!(snd.backoffs(), 2);
        // RTO doubles (until the cap).
        assert!(snd.rto() >= SimDuration::from_secs(2));
    }

    #[test]
    fn rto_caps_at_configured_max() {
        let mut snd = TcpSender::new(
            TcpConfig {
                rto_max: SimDuration::from_secs(4),
                ..cfg()
            },
            SimTime::ZERO,
        );
        snd.offer(1448);
        let _ = snd.emit(SimTime::ZERO);
        for _ in 0..10 {
            let dl = snd.rto_deadline().unwrap();
            snd.on_rto(dl);
            let _ = snd.emit(dl);
        }
        assert_eq!(snd.rto(), SimDuration::from_secs(4));
    }

    #[test]
    fn send_buffer_limits_offer() {
        let mut snd = TcpSender::new(
            TcpConfig {
                send_buffer: 1000,
                ..cfg()
            },
            SimTime::ZERO,
        );
        assert_eq!(snd.offer(600), 600);
        assert_eq!(snd.offer(600), 400);
        assert_eq!(snd.available(), 0);
        assert_eq!(snd.offer(1), 0);
    }

    #[test]
    fn buffer_frees_as_data_is_acked() {
        let mut snd = TcpSender::new(
            TcpConfig {
                send_buffer: 2000,
                mss: 500,
                ..cfg()
            },
            SimTime::ZERO,
        );
        let mut rcv = TcpReceiver::new();
        assert_eq!(snd.offer(2000), 2000);
        let segs = snd.emit(SimTime::ZERO);
        let mut ack = 0;
        for seg in segs {
            ack = rcv.on_segment(seg.seq, seg.len);
        }
        snd.on_ack(ack, SimTime::from_millis(1));
        assert_eq!(snd.available(), 2000);
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut rcv = TcpReceiver::new();
        assert_eq!(rcv.on_segment(1000, 500), 0);
        assert_eq!(rcv.on_segment(500, 500), 0);
        assert_eq!(rcv.on_segment(0, 500), 1500);
    }

    #[test]
    fn receiver_counts_duplicates() {
        let mut rcv = TcpReceiver::new();
        rcv.on_segment(0, 100);
        rcv.on_segment(0, 100);
        assert_eq!(rcv.duplicate_segments(), 1);
        assert_eq!(rcv.contiguous(), 100);
    }

    #[test]
    fn receiver_merges_overlapping_stash() {
        let mut rcv = TcpReceiver::new();
        rcv.on_segment(100, 100);
        rcv.on_segment(100, 200); // longer overlap, same start
        assert_eq!(rcv.on_segment(0, 100), 300);
    }

    #[test]
    fn rtt_estimate_converges() {
        let (snd, _) = drain_lossless(500_000, SimDuration::from_millis(40));
        let srtt = snd.srtt().expect("sampled");
        let ms = srtt.as_millis();
        assert!((35..=45).contains(&ms), "srtt {ms}ms");
    }

    #[test]
    fn karns_algorithm_skips_retransmitted_samples() {
        let mut snd = TcpSender::new(cfg(), SimTime::ZERO);
        snd.offer(1448);
        let _ = snd.emit(SimTime::ZERO);
        let dl = snd.rto_deadline().unwrap();
        snd.on_rto(dl);
        let retx = snd.emit(dl);
        assert!(retx[0].retransmit);
        // Ack arrives much later; no RTT sample should be taken.
        snd.on_ack(1448, dl + SimDuration::from_secs(5));
        assert!(snd.srtt().is_none());
    }

    #[test]
    fn rto_epoch_invalidates_stale_timers() {
        let mut snd = TcpSender::new(cfg(), SimTime::ZERO);
        snd.offer(1448 * 2);
        let _ = snd.emit(SimTime::ZERO);
        let epoch1 = snd.rto_epoch();
        let mut rcv = TcpReceiver::new();
        let ack = rcv.on_segment(0, 1448);
        snd.on_ack(ack, SimTime::from_millis(5));
        assert_ne!(snd.rto_epoch(), epoch1, "progress reschedules the timer");
    }
}
