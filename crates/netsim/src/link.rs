//! A fluid model of a finite-rate, drop-tail network link.
//!
//! Packets offered to the link are serialised one after another at the
//! configured rate; a packet whose queueing delay would exceed the buffer
//! bound is dropped at the tail. After serialisation the packet either is
//! lost (per the link's [`LossModel`]) or arrives after a sampled
//! propagation delay ([`DelayModel`]).
//!
//! Because the link is driven entirely at `transmit` time it needs no
//! internal events: the caller learns the arrival instant immediately and
//! schedules it in its own event queue. This keeps the whole network
//! substrate deterministic and allocation-light.

use desim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::delay::DelayModel;
use crate::loss::LossModel;

/// Static configuration of a [`Link`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Serialisation rate in bytes per second.
    pub rate_bytes_per_sec: f64,
    /// Maximum tolerated queueing (serialisation backlog) delay; packets
    /// that would wait longer are dropped at the tail.
    pub max_queue_delay: SimDuration,
    /// Propagation-delay process.
    pub delay: DelayModel,
    /// Packet-loss process.
    pub loss: LossModel,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            // 100 Mbit/s — a fast LAN, like the paper's Docker bridge.
            rate_bytes_per_sec: 12_500_000.0,
            max_queue_delay: SimDuration::from_millis(200),
            delay: DelayModel::constant(SimDuration::from_micros(100)),
            loss: LossModel::None,
        }
    }
}

/// The verdict for one offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The packet will arrive at the far end at the given instant.
    Delivered(SimTime),
    /// The packet was transmitted but lost in flight.
    Lost,
    /// The packet was dropped at the tail: the queue was full.
    Dropped,
}

/// Cumulative link statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets that arrived at the far end.
    pub delivered: u64,
    /// Packets lost in flight.
    pub lost: u64,
    /// Packets dropped at the tail queue.
    pub dropped: u64,
    /// Total bytes offered (including lost and dropped packets).
    pub bytes_offered: u64,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
}

impl LinkStats {
    /// Fraction of offered packets that did not arrive.
    #[must_use]
    pub fn loss_fraction(&self) -> f64 {
        let total = self.delivered + self.lost + self.dropped;
        if total == 0 {
            0.0
        } else {
            (self.lost + self.dropped) as f64 / total as f64
        }
    }
}

/// A unidirectional link with finite rate, drop-tail queueing, loss and
/// propagation delay.
///
/// # Example
///
/// ```
/// use netsim::{Link, LinkConfig, LinkOutcome};
/// use desim::{SimRng, SimTime};
///
/// let mut link = Link::new(LinkConfig::default());
/// let mut rng = SimRng::seed_from_u64(1);
/// match link.transmit(SimTime::ZERO, 1500, &mut rng) {
///     LinkOutcome::Delivered(at) => assert!(at > SimTime::ZERO),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    busy_until: SimTime,
    stats: LinkStats,
}

impl Link {
    /// Creates an idle link.
    ///
    /// # Panics
    ///
    /// Panics if the configured rate is not strictly positive.
    #[must_use]
    pub fn new(config: LinkConfig) -> Self {
        assert!(
            config.rate_bytes_per_sec > 0.0,
            "link rate must be positive"
        );
        Link {
            config,
            busy_until: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// Offers a packet of `bytes` at `now`.
    ///
    /// Returns where the packet ends up; on [`LinkOutcome::Delivered`] the
    /// caller must schedule the arrival itself.
    pub fn transmit(&mut self, now: SimTime, bytes: u64, rng: &mut SimRng) -> LinkOutcome {
        self.stats.bytes_offered += bytes;
        let start = self.busy_until.max(now);
        let backlog = start.saturating_since(now);
        if backlog > self.config.max_queue_delay {
            self.stats.dropped += 1;
            return LinkOutcome::Dropped;
        }
        let tx_time = SimDuration::from_secs_f64(bytes as f64 / self.config.rate_bytes_per_sec);
        let serialized_at = start + tx_time;
        self.busy_until = serialized_at;
        if self.config.loss.sample(rng) {
            self.stats.lost += 1;
            return LinkOutcome::Lost;
        }
        let arrival = serialized_at + self.config.delay.sample(rng);
        self.stats.delivered += 1;
        self.stats.bytes_delivered += bytes;
        LinkOutcome::Delivered(arrival)
    }

    /// Replaces the loss process (e.g. a NetEm reconfiguration).
    pub fn set_loss(&mut self, loss: LossModel) {
        self.config.loss = loss;
    }

    /// Replaces the propagation-delay process.
    pub fn set_delay(&mut self, delay: DelayModel) {
        self.config.delay = delay;
    }

    /// The current queueing backlog at `now`.
    #[must_use]
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The link's configuration.
    #[must_use]
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_link(rate: f64) -> Link {
        Link::new(LinkConfig {
            rate_bytes_per_sec: rate,
            max_queue_delay: SimDuration::from_millis(100),
            delay: DelayModel::constant(SimDuration::from_millis(10)),
            loss: LossModel::None,
        })
    }

    #[test]
    fn delivery_time_is_serialisation_plus_propagation() {
        let mut link = quiet_link(1_000_000.0); // 1 MB/s
        let mut rng = SimRng::seed_from_u64(1);
        // 1000 bytes → 1ms serialisation + 10ms propagation.
        match link.transmit(SimTime::ZERO, 1000, &mut rng) {
            LinkOutcome::Delivered(at) => assert_eq!(at, SimTime::from_millis(11)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut link = quiet_link(1_000_000.0);
        let mut rng = SimRng::seed_from_u64(2);
        let first = link.transmit(SimTime::ZERO, 1000, &mut rng);
        let second = link.transmit(SimTime::ZERO, 1000, &mut rng);
        let (LinkOutcome::Delivered(a), LinkOutcome::Delivered(b)) = (first, second) else {
            panic!("both should deliver");
        };
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(1));
        assert_eq!(link.backlog(SimTime::ZERO), SimDuration::from_millis(2));
    }

    #[test]
    fn overfull_queue_drops_at_tail() {
        let mut link = quiet_link(1_000_000.0); // 1ms per 1000B, cap 100ms
        let mut rng = SimRng::seed_from_u64(3);
        let mut dropped = 0;
        for _ in 0..200 {
            if link.transmit(SimTime::ZERO, 1000, &mut rng) == LinkOutcome::Dropped {
                dropped += 1;
            }
        }
        // Roughly the first 101 fit (backlog ≤ 100ms), the rest drop.
        assert!(dropped >= 95, "dropped {dropped}");
        assert_eq!(link.stats().dropped, dropped as u64);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut link = quiet_link(1_000_000.0);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..50 {
            let _ = link.transmit(SimTime::ZERO, 1000, &mut rng);
        }
        assert!(link.backlog(SimTime::from_millis(25)) <= SimDuration::from_millis(25));
        assert_eq!(link.backlog(SimTime::from_millis(60)), SimDuration::ZERO);
    }

    #[test]
    fn lossy_link_loses_packets_at_rate() {
        let mut link = Link::new(LinkConfig {
            rate_bytes_per_sec: 1e9,
            max_queue_delay: SimDuration::from_secs(10),
            delay: DelayModel::constant(SimDuration::ZERO),
            loss: LossModel::bernoulli(0.19),
        });
        let mut rng = SimRng::seed_from_u64(5);
        let mut lost = 0u32;
        let n = 100_000;
        for i in 0..n {
            // Space packets out so the queue never fills.
            let t = SimTime::from_micros(i as u64 * 10);
            if link.transmit(t, 100, &mut rng) == LinkOutcome::Lost {
                lost += 1;
            }
        }
        let frac = lost as f64 / n as f64;
        assert!((frac - 0.19).abs() < 0.01, "observed {frac}");
        assert!((link.stats().loss_fraction() - 0.19).abs() < 0.01);
    }

    #[test]
    fn netem_reconfiguration_applies() {
        let mut link = quiet_link(1e9);
        let mut rng = SimRng::seed_from_u64(6);
        link.set_loss(LossModel::bernoulli(1.0));
        assert_eq!(
            link.transmit(SimTime::ZERO, 100, &mut rng),
            LinkOutcome::Lost
        );
        link.set_loss(LossModel::none());
        link.set_delay(DelayModel::constant(SimDuration::from_millis(77)));
        match link.transmit(SimTime::from_secs(1), 100, &mut rng) {
            LinkOutcome::Delivered(at) => {
                assert!(at >= SimTime::from_secs(1) + SimDuration::from_millis(77));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stats_track_bytes() {
        let mut link = quiet_link(1e9);
        let mut rng = SimRng::seed_from_u64(7);
        let _ = link.transmit(SimTime::ZERO, 500, &mut rng);
        let _ = link.transmit(SimTime::ZERO, 300, &mut rng);
        let s = link.stats();
        assert_eq!(s.bytes_offered, 800);
        assert_eq!(s.bytes_delivered, 800);
        assert_eq!(s.delivered, 2);
    }
}
