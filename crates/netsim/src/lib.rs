//! `netsim` — the simulated network substrate of the Kafka-reliability
//! reproduction.
//!
//! The paper ("Learning to Reliably Deliver Streaming Data with Apache
//! Kafka", DSN 2020) runs a real Kafka cluster in Docker and injects network
//! faults with Linux **NetEm**; the shapes of its reliability curves are
//! driven by the interaction between Kafka's producer protocol and **TCP's**
//! retransmission behaviour under loss. This crate provides faithful,
//! deterministic stand-ins for both layers below Kafka:
//!
//! * [`loss`] — per-packet loss processes: i.i.d. Bernoulli and the
//!   two-state **Gilbert–Elliott** Markov model the paper uses for its
//!   dynamic-configuration experiment.
//! * [`delay`] — propagation-delay processes, including the heavy-tailed
//!   **Pareto** distribution the paper cites for end-to-end delay.
//! * [`island`] — connected components of the coupling graph between
//!   simulated nodes; the shard assignment for the parallel sharded engine.
//! * [`link`] — a fluid model of a finite-rate, drop-tail link.
//! * [`netem`] — NetEm-style impairment configuration and time-varying
//!   condition timelines (the Fig. 9 network).
//! * [`tcp`] — a sans-IO TCP sender/receiver pair: cumulative ACKs, RTT
//!   estimation, RTO with exponential backoff, fast retransmit, slow start
//!   and AIMD congestion avoidance.
//! * [`channel`] — a full-duplex channel gluing two links and two TCP
//!   streams together, exposing record-oriented delivery with an internal
//!   event queue (`next_wakeup`/`advance`) so a discrete-event simulation
//!   can drive it deterministically.
//! * [`trace`] — generators for time-varying network conditions
//!   (Pareto-delay + Gilbert–Elliott-loss processes).
//!
//! # Example
//!
//! ```
//! use desim::{SimRng, SimTime};
//! use netsim::channel::{ChannelConfig, DuplexChannel, Endpoint};
//!
//! let mut ch = DuplexChannel::new(ChannelConfig::default(), SimRng::seed_from_u64(1));
//! let now = SimTime::ZERO;
//! ch.send_record(Endpoint::A, 0, 1_000, now).unwrap();
//! // Drive the channel to completion.
//! let mut delivered = Vec::new();
//! while let Some(t) = ch.next_wakeup() {
//!     for ev in ch.advance(t) {
//!         if let netsim::channel::ChannelEvent::RecordDelivered { id, .. } = ev {
//!             delivered.push(id);
//!         }
//!     }
//! }
//! assert_eq!(delivered, vec![0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod delay;
pub mod island;
pub mod link;
pub mod loss;
pub mod netem;
pub mod tcp;
pub mod trace;

pub use channel::{ChannelConfig, ChannelEvent, DuplexChannel, Endpoint};
pub use delay::DelayModel;
pub use island::IslandMap;
pub use link::{Link, LinkConfig, LinkOutcome};
pub use loss::LossModel;
pub use netem::{ConditionTimeline, NetCondition};
