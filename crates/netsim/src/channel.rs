//! A full-duplex, record-oriented channel between two endpoints.
//!
//! [`DuplexChannel`] glues together two [`Link`]s (one per direction) and two
//! [`TcpSender`]/[`TcpReceiver`] pairs (one byte stream per direction) and
//! exposes *records* — length-delimited application messages, like Kafka
//! produce requests and their responses — with an internal event queue.
//!
//! The channel is driven by its owner's discrete-event loop:
//!
//! 1. write records with [`DuplexChannel::send_record`],
//! 2. ask [`DuplexChannel::next_wakeup`] when something will happen,
//! 3. call [`DuplexChannel::advance`] up to that instant and handle the
//!    returned [`ChannelEvent`]s.
//!
//! Everything in between — segmentation, loss, retransmission, congestion
//! control, ACK-vs-data bandwidth contention — happens inside. The channel
//! also models **connection resets** ([`DuplexChannel::reset`]): all
//! undelivered records are discarded, exactly like the bytes sitting in a
//! killed socket's buffers. This is the mechanism by which `acks=0`
//! (at-most-once) producers silently lose data in the paper.

use std::collections::VecDeque;

use desim::minq::MinQueue;
use desim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::link::{Link, LinkConfig, LinkOutcome, LinkStats};
use crate::netem::NetCondition;
use crate::tcp::{Segment, TcpConfig, TcpReceiver, TcpSender, TcpSenderStats};

/// One side of the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The client side (the Kafka producer in this reproduction).
    A,
    /// The server side (the Kafka broker).
    B,
}

impl Endpoint {
    /// The opposite endpoint.
    #[must_use]
    pub fn peer(self) -> Endpoint {
        match self {
            Endpoint::A => Endpoint::B,
            Endpoint::B => Endpoint::A,
        }
    }

    fn dir(self) -> usize {
        match self {
            Endpoint::A => 0,
            Endpoint::B => 1,
        }
    }

    fn from_dir(dir: usize) -> Endpoint {
        if dir == 0 {
            Endpoint::A
        } else {
            Endpoint::B
        }
    }
}

/// Channel configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// TCP parameters shared by both directions.
    pub tcp: TcpConfig,
    /// Link parameters (both directions start identical).
    pub link: LinkConfig,
    /// Time to re-establish the connection after a reset (handshake cost).
    pub reconnect_delay: SimDuration,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            tcp: TcpConfig::default(),
            link: LinkConfig::default(),
            reconnect_delay: SimDuration::from_millis(5),
        }
    }
}

/// Something the channel's owner must react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelEvent {
    /// A record arrived, complete and in order, at `to`.
    RecordDelivered {
        /// Receiving endpoint.
        to: Endpoint,
        /// Caller-assigned record id.
        id: u64,
        /// Arrival instant.
        at: SimTime,
    },
    /// Acknowledgements freed send-buffer space at `endpoint`.
    SendSpaceAvailable {
        /// The endpoint whose buffer drained.
        endpoint: Endpoint,
        /// Instant of the change.
        at: SimTime,
    },
}

/// Error returned when a record cannot be accepted right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendRecordError {
    /// The send buffer lacks space; retry after
    /// [`ChannelEvent::SendSpaceAvailable`].
    BufferFull {
        /// Bytes currently available.
        available: u64,
    },
    /// The connection is re-establishing after a reset; retry after the
    /// instant given.
    Reconnecting {
        /// When the connection reopens.
        until: SimTime,
    },
}

impl core::fmt::Display for SendRecordError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SendRecordError::BufferFull { available } => {
                write!(f, "send buffer full ({available} bytes free)")
            }
            SendRecordError::Reconnecting { until } => {
                write!(f, "connection re-establishing until {until}")
            }
        }
    }
}

impl std::error::Error for SendRecordError {}

/// What happened to in-flight records when a [`DuplexChannel::reset`] tore
/// the connection down.
///
/// Tearing down a TCP connection does not vaporise segments already on the
/// wire: they typically reach the peer (and get processed) before the
/// RST/FIN does. `teardown_delivered_*` lists the records whose bytes were
/// fully in flight and contiguous — the receiver ends up with them even
/// though the sender never learns. This is precisely the race that turns an
/// at-least-once retry into a duplicate, and that makes `acks=0` loss
/// *partial* rather than total.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResetReport {
    /// Record ids offered by A that are definitively gone.
    pub undelivered_from_a: Vec<u64>,
    /// Record ids offered by B that are definitively gone.
    pub undelivered_from_b: Vec<u64>,
    /// Records from A that reached B during teardown (B will process them;
    /// A will never know).
    pub teardown_delivered_to_b: Vec<u64>,
    /// Records from B that reached A during teardown.
    pub teardown_delivered_to_a: Vec<u64>,
}

impl ResetReport {
    /// Empties all four id lists, keeping their capacity — callers that
    /// reuse one report across [`DuplexChannel::reset_into`] calls pay no
    /// allocation per reset.
    pub fn clear(&mut self) {
        self.undelivered_from_a.clear();
        self.undelivered_from_b.clear();
        self.teardown_delivered_to_b.clear();
        self.teardown_delivered_to_a.clear();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Seg { dir: usize, seq: u64, len: u64 },
    Ack { dir: usize, ack: u64 },
    Rto { dir: usize, epoch: u64 },
    Pump,
}

#[derive(Debug)]
struct Stream {
    snd: TcpSender,
    rcv: TcpReceiver,
    /// FIFO of (stream end offset, record id) for records in flight.
    pending: VecDeque<(u64, u64)>,
    last_rto_epoch_pushed: u64,
}

impl Stream {
    fn new(tcp: TcpConfig, now: SimTime) -> Self {
        Stream {
            snd: TcpSender::new(tcp, now),
            rcv: TcpReceiver::new(),
            pending: VecDeque::new(),
            last_rto_epoch_pushed: 0,
        }
    }

    /// Resets to the state of a freshly-built stream, keeping every buffer's
    /// capacity (state-identical to `Stream::new` with the same config).
    fn reset(&mut self, now: SimTime) {
        self.snd.reset(now);
        self.rcv.reset();
        self.pending.clear();
        self.last_rto_epoch_pushed = 0;
    }
}

/// A bidirectional TCP connection carrying records between endpoints A and B.
///
/// See the [module documentation](self) for the driving protocol.
pub struct DuplexChannel {
    cfg: ChannelConfig,
    links: [Link; 2],
    streams: [Stream; 2],
    heap: MinQueue<(u64, Ev)>,
    next_seq: u64,
    generation: u64,
    rng: SimRng,
    open_at: SimTime,
    resets: u64,
    last_advance: SimTime,
    /// Scratch buffer reused by [`DuplexChannel::pump`] so each call avoids
    /// allocating a fresh segment vector.
    seg_buf: Vec<Segment>,
    /// Scratch buffer reused by [`DuplexChannel::reset_into`] for the
    /// drained event-queue entries.
    drain_buf: Vec<(u64, Ev)>,
}

impl core::fmt::Debug for DuplexChannel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DuplexChannel")
            .field("pending_events", &self.heap.len())
            .field("resets", &self.resets)
            .field("open_at", &self.open_at)
            .finish_non_exhaustive()
    }
}

impl DuplexChannel {
    /// Creates an open channel.
    #[must_use]
    pub fn new(cfg: ChannelConfig, rng: SimRng) -> Self {
        let now = SimTime::ZERO;
        DuplexChannel {
            links: [Link::new(cfg.link.clone()), Link::new(cfg.link.clone())],
            streams: [
                Stream::new(cfg.tcp.clone(), now),
                Stream::new(cfg.tcp.clone(), now),
            ],
            cfg,
            heap: MinQueue::new(),
            next_seq: 0,
            generation: 0,
            rng,
            open_at: now,
            resets: 0,
            last_advance: now,
            seg_buf: Vec::new(),
            drain_buf: Vec::new(),
        }
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(at, seq, (self.generation, ev));
    }

    /// The earliest instant at which internal state will change, if any.
    #[must_use]
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.heap.peek().map(|(t, _)| t)
    }

    /// Offers a record of `bytes` from `from` at `now`.
    ///
    /// # Errors
    ///
    /// [`SendRecordError::BufferFull`] when the send buffer cannot take the
    /// whole record, [`SendRecordError::Reconnecting`] while a reset is still
    /// re-establishing the connection.
    pub fn send_record(
        &mut self,
        from: Endpoint,
        id: u64,
        bytes: u64,
        now: SimTime,
    ) -> Result<(), SendRecordError> {
        if now < self.open_at {
            return Err(SendRecordError::Reconnecting {
                until: self.open_at,
            });
        }
        let dir = from.dir();
        let stream = &mut self.streams[dir];
        let available = stream.snd.available();
        if available < bytes {
            return Err(SendRecordError::BufferFull { available });
        }
        let accepted = stream.snd.offer(bytes);
        debug_assert_eq!(accepted, bytes);
        let end = stream.snd.stream_end();
        stream.pending.push_back((end, id));
        self.pump(dir, now);
        Ok(())
    }

    /// Send-buffer space available to `from`.
    #[must_use]
    pub fn writable(&self, from: Endpoint) -> u64 {
        self.streams[from.dir()].snd.available()
    }

    /// Bytes offered by `from` and not yet acknowledged end-to-end.
    #[must_use]
    pub fn bytes_unacked(&self, from: Endpoint) -> u64 {
        self.streams[from.dir()].snd.bytes_unacked()
    }

    /// Records offered by `from` whose delivery has not been reported yet.
    #[must_use]
    pub fn records_in_flight(&self, from: Endpoint) -> usize {
        self.streams[from.dir()].pending.len()
    }

    /// Last instant `from`'s stream made cumulative-ACK progress.
    #[must_use]
    pub fn last_progress(&self, from: Endpoint) -> SimTime {
        self.streams[from.dir()].snd.last_progress()
    }

    /// Consecutive RTO backoffs on `from`'s stream without progress.
    #[must_use]
    pub fn backoffs(&self, from: Endpoint) -> u32 {
        self.streams[from.dir()].snd.backoffs()
    }

    /// `true` when `from` has unacknowledged data and has made no progress
    /// for at least `patience`.
    #[must_use]
    pub fn is_stalled(&self, from: Endpoint, now: SimTime, patience: SimDuration) -> bool {
        let snd = &self.streams[from.dir()].snd;
        snd.bytes_unacked() > 0 && now.saturating_since(snd.last_progress()) >= patience
    }

    /// TCP sender statistics for `from`'s stream.
    #[must_use]
    pub fn sender_stats(&self, from: Endpoint) -> TcpSenderStats {
        self.streams[from.dir()].snd.stats()
    }

    /// Statistics of the link carrying data from `from` to its peer.
    #[must_use]
    pub fn link_stats(&self, from: Endpoint) -> LinkStats {
        self.links[from.dir()].stats()
    }

    /// Smoothed RTT observed by `from`'s sender, if sampled.
    #[must_use]
    pub fn srtt(&self, from: Endpoint) -> Option<SimDuration> {
        self.streams[from.dir()].snd.srtt()
    }

    /// Number of resets performed so far.
    #[must_use]
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// The instant the connection (re)opens; writes before it are rejected.
    #[must_use]
    pub fn open_at(&self) -> SimTime {
        self.open_at
    }

    /// Applies a new network condition at `now`.
    ///
    /// Mirrors reconfiguring NetEm on the Docker bridge between producer
    /// and cluster: the *delay* affects packets in both directions (the
    /// round-trip time becomes `2·D`), while *loss* is injected on the
    /// producer's egress only — transport ACKs and broker responses return
    /// delayed but reliably.
    pub fn set_condition(&mut self, condition: NetCondition, _now: SimTime) {
        self.links[0].set_delay(condition.delay_model());
        self.links[0].set_loss(condition.loss_model());
        self.links[1].set_delay(condition.delay_model());
    }

    /// Tears the connection down and starts a fresh one.
    ///
    /// All records not yet reported delivered are discarded — this is what
    /// happens to the bytes in a real socket's buffers when a client closes
    /// a stalled connection. The new connection becomes writable at
    /// `now + reconnect_delay`.
    pub fn reset(&mut self, now: SimTime) -> ResetReport {
        let mut report = ResetReport::default();
        self.reset_into(now, &mut report);
        report
    }

    /// Tears the connection down like [`DuplexChannel::reset`], writing the
    /// outcome into a caller-owned `report` (cleared first).
    ///
    /// The report's vectors and the channel's internal buffers are reused,
    /// so a steady stream of resets allocates nothing.
    pub fn reset_into(&mut self, now: SimTime, report: &mut ResetReport) {
        report.clear();
        // Segments already in flight still arrive at the peer before the
        // teardown does: feed them to the receivers, then see which records
        // became contiguous.
        let mut events = core::mem::take(&mut self.drain_buf);
        events.clear();
        events.extend(self.heap.drain_unordered());
        for &(generation, ev) in &events {
            if generation != self.generation {
                continue;
            }
            if let Ev::Seg { dir, seq, len } = ev {
                let _ = self.streams[dir].rcv.on_segment(seq, len);
            }
        }
        self.drain_buf = events;
        for (dir, delivered, undelivered) in [
            (
                0usize,
                &mut report.teardown_delivered_to_b,
                &mut report.undelivered_from_a,
            ),
            (
                1usize,
                &mut report.teardown_delivered_to_a,
                &mut report.undelivered_from_b,
            ),
        ] {
            let contiguous = self.streams[dir].rcv.contiguous();
            for (end, id) in self.streams[dir].pending.iter() {
                if *end <= contiguous {
                    delivered.push(*id);
                } else {
                    undelivered.push(*id);
                }
            }
        }
        self.generation += 1;
        self.resets += 1;
        self.streams[0].reset(now);
        self.streams[1].reset(now);
        self.open_at = now + self.cfg.reconnect_delay;
        self.push(self.open_at, Ev::Pump);
    }

    /// Processes every internal event up to and including `now`.
    ///
    /// Returns the application-visible events in causal order. Allocating
    /// convenience wrapper around [`DuplexChannel::advance_into`].
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than a previous `advance` call.
    pub fn advance(&mut self, now: SimTime) -> Vec<ChannelEvent> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    /// Processes every internal event up to and including `now`, appending
    /// the application-visible events to `out` in causal order.
    ///
    /// The caller owns (and typically reuses) `out`; this method never
    /// clears it.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than a previous `advance` call.
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<ChannelEvent>) {
        assert!(
            now >= self.last_advance,
            "advance must move forward in time"
        );
        self.last_advance = now;
        while let Some((t, _)) = self.heap.peek() {
            if t > now {
                break;
            }
            let (t, (generation, ev)) = self.heap.pop().expect("peeked");
            if generation != self.generation {
                continue;
            }
            match ev {
                Ev::Seg { dir, seq, len } => self.on_segment(dir, seq, len, t, out),
                Ev::Ack { dir, ack } => self.on_ack(dir, ack, t, out),
                Ev::Rto { dir, epoch } => {
                    let snd = &mut self.streams[dir].snd;
                    if snd.rto_epoch() == epoch && snd.rto_deadline().is_some_and(|dl| dl <= t) {
                        snd.on_rto(t);
                        self.pump(dir, t);
                    }
                }
                Ev::Pump => {
                    self.pump(0, t);
                    self.pump(1, t);
                }
            }
        }
    }

    fn on_segment(
        &mut self,
        dir: usize,
        seq: u64,
        len: u64,
        t: SimTime,
        out: &mut Vec<ChannelEvent>,
    ) {
        let stream = &mut self.streams[dir];
        let ack = stream.rcv.on_segment(seq, len);
        // Report records whose bytes are now contiguous at the receiver.
        while stream.pending.front().is_some_and(|(end, _)| *end <= ack) {
            let (_, id) = stream.pending.pop_front().expect("checked front");
            out.push(ChannelEvent::RecordDelivered {
                to: Endpoint::from_dir(dir).peer(),
                id,
                at: t,
            });
        }
        // Send the cumulative ACK back over the reverse link.
        let ack_bytes = self.cfg.tcp.ack_bytes;
        match self.links[1 - dir].transmit(t, ack_bytes, &mut self.rng) {
            LinkOutcome::Delivered(at) => self.push(at, Ev::Ack { dir, ack }),
            LinkOutcome::Lost | LinkOutcome::Dropped => {}
        }
    }

    fn on_ack(&mut self, dir: usize, ack: u64, t: SimTime, out: &mut Vec<ChannelEvent>) {
        let advanced = self.streams[dir].snd.on_ack(ack, t);
        self.pump(dir, t);
        if advanced {
            out.push(ChannelEvent::SendSpaceAvailable {
                endpoint: Endpoint::from_dir(dir),
                at: t,
            });
        }
    }

    /// Emits whatever `dir`'s sender can currently send and schedules the
    /// resulting arrivals and timers.
    fn pump(&mut self, dir: usize, now: SimTime) {
        if now < self.open_at {
            return;
        }
        // Reuse the scratch segment buffer across pump calls; `mem::take`
        // sidesteps the borrow of `self` while the sender fills it.
        let mut segments = core::mem::take(&mut self.seg_buf);
        segments.clear();
        self.streams[dir].snd.emit_into(now, &mut segments);
        let header = self.cfg.tcp.header_bytes;
        for seg in &segments {
            match self.links[dir].transmit(now, seg.len + header, &mut self.rng) {
                LinkOutcome::Delivered(at) => self.push(
                    at,
                    Ev::Seg {
                        dir,
                        seq: seg.seq,
                        len: seg.len,
                    },
                ),
                LinkOutcome::Lost | LinkOutcome::Dropped => {}
            }
        }
        self.seg_buf = segments;
        // (Re)arm the retransmission timer event if its deadline moved.
        let stream = &self.streams[dir];
        let epoch = stream.snd.rto_epoch();
        if let Some(deadline) = stream.snd.rto_deadline() {
            if epoch != stream.last_rto_epoch_pushed {
                self.streams[dir].last_rto_epoch_pushed = epoch;
                self.push(deadline, Ev::Rto { dir, epoch });
            }
        }
    }

    /// Drives the channel until both directions are idle or `deadline` hits.
    ///
    /// Convenience for tests and drain phases; returns all events produced.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> Vec<ChannelEvent> {
        let mut out = Vec::new();
        while let Some(t) = self.next_wakeup() {
            if t > deadline {
                break;
            }
            out.extend(self.advance(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use crate::loss::LossModel;

    fn quiet_cfg() -> ChannelConfig {
        ChannelConfig {
            link: LinkConfig {
                rate_bytes_per_sec: 12_500_000.0,
                max_queue_delay: SimDuration::from_millis(500),
                delay: DelayModel::constant(SimDuration::from_millis(5)),
                loss: LossModel::None,
            },
            ..ChannelConfig::default()
        }
    }

    fn drive(ch: &mut DuplexChannel, horizon: SimTime) -> Vec<ChannelEvent> {
        ch.run_until_idle(horizon)
    }

    fn delivered_ids(events: &[ChannelEvent], to: Endpoint) -> Vec<u64> {
        events
            .iter()
            .filter_map(|ev| match ev {
                ChannelEvent::RecordDelivered { to: t, id, .. } if *t == to => Some(*id),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn single_record_delivered() {
        let mut ch = DuplexChannel::new(quiet_cfg(), SimRng::seed_from_u64(1));
        ch.send_record(Endpoint::A, 7, 500, SimTime::ZERO).unwrap();
        let events = drive(&mut ch, SimTime::from_secs(10));
        assert_eq!(delivered_ids(&events, Endpoint::B), vec![7]);
    }

    #[test]
    fn records_delivered_in_order() {
        let mut ch = DuplexChannel::new(quiet_cfg(), SimRng::seed_from_u64(2));
        for id in 0..50 {
            ch.send_record(Endpoint::A, id, 2000, SimTime::ZERO)
                .unwrap();
        }
        let events = drive(&mut ch, SimTime::from_secs(10));
        assert_eq!(
            delivered_ids(&events, Endpoint::B),
            (0..50).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplex_traffic_flows_both_ways() {
        let mut ch = DuplexChannel::new(quiet_cfg(), SimRng::seed_from_u64(3));
        ch.send_record(Endpoint::A, 1, 1000, SimTime::ZERO).unwrap();
        ch.send_record(Endpoint::B, 2, 1000, SimTime::ZERO).unwrap();
        let events = drive(&mut ch, SimTime::from_secs(10));
        assert_eq!(delivered_ids(&events, Endpoint::B), vec![1]);
        assert_eq!(delivered_ids(&events, Endpoint::A), vec![2]);
    }

    #[test]
    fn buffer_full_is_reported_and_recovers() {
        let mut cfg = quiet_cfg();
        cfg.tcp.send_buffer = 4096;
        let mut ch = DuplexChannel::new(cfg, SimRng::seed_from_u64(4));
        ch.send_record(Endpoint::A, 0, 4096, SimTime::ZERO).unwrap();
        let err = ch.send_record(Endpoint::A, 1, 1, SimTime::ZERO);
        assert!(matches!(err, Err(SendRecordError::BufferFull { .. })));
        let events = drive(&mut ch, SimTime::from_secs(10));
        assert!(events.iter().any(|ev| matches!(
            ev,
            ChannelEvent::SendSpaceAvailable {
                endpoint: Endpoint::A,
                ..
            }
        )));
        assert_eq!(ch.writable(Endpoint::A), 4096);
    }

    #[test]
    fn lossy_path_still_delivers_via_retransmission() {
        let mut cfg = quiet_cfg();
        cfg.link.loss = LossModel::bernoulli(0.10);
        let mut ch = DuplexChannel::new(cfg, SimRng::seed_from_u64(5));
        let mut events = Vec::new();
        let mut sent = 0u64;
        let mut now = SimTime::ZERO;
        loop {
            while sent < 100 && ch.writable(Endpoint::A) >= 1500 {
                ch.send_record(Endpoint::A, sent, 1500, now).unwrap();
                sent += 1;
            }
            let Some(t) = ch.next_wakeup() else { break };
            if t > SimTime::from_secs(120) {
                break;
            }
            now = t;
            events.extend(ch.advance(t));
        }
        assert_eq!(
            delivered_ids(&events, Endpoint::B),
            (0..100).collect::<Vec<_>>()
        );
        assert!(ch.sender_stats(Endpoint::A).retransmits > 0);
    }

    #[test]
    fn heavy_loss_stalls_the_connection() {
        let mut cfg = quiet_cfg();
        cfg.link.loss = LossModel::bernoulli(0.95);
        let mut ch = DuplexChannel::new(cfg, SimRng::seed_from_u64(6));
        ch.send_record(Endpoint::A, 0, 1000, SimTime::ZERO).unwrap();
        let _ = drive(&mut ch, SimTime::from_secs(30));
        assert!(ch.is_stalled(
            Endpoint::A,
            SimTime::from_secs(30),
            SimDuration::from_secs(5)
        ));
        assert!(ch.backoffs(Endpoint::A) >= 2);
    }

    #[test]
    fn reset_reports_undelivered_records() {
        let mut cfg = quiet_cfg();
        cfg.link.loss = LossModel::bernoulli(1.0); // nothing gets through
        let mut ch = DuplexChannel::new(cfg, SimRng::seed_from_u64(7));
        ch.send_record(Endpoint::A, 11, 800, SimTime::ZERO).unwrap();
        ch.send_record(Endpoint::A, 12, 800, SimTime::ZERO).unwrap();
        let _ = drive(&mut ch, SimTime::from_secs(5));
        let report = ch.reset(SimTime::from_secs(5));
        assert_eq!(report.undelivered_from_a, vec![11, 12]);
        assert!(report.undelivered_from_b.is_empty());
        assert_eq!(ch.resets(), 1);
    }

    #[test]
    fn reset_then_fresh_connection_works() {
        let mut ch = DuplexChannel::new(quiet_cfg(), SimRng::seed_from_u64(8));
        ch.send_record(Endpoint::A, 0, 500, SimTime::ZERO).unwrap();
        let _ = drive(&mut ch, SimTime::from_secs(1));
        let t = SimTime::from_secs(1);
        let _ = ch.reset(t);
        // Writes during the handshake are rejected.
        let err = ch.send_record(Endpoint::A, 1, 500, t);
        assert!(matches!(err, Err(SendRecordError::Reconnecting { .. })));
        let reopened = ch.open_at();
        ch.send_record(Endpoint::A, 1, 500, reopened).unwrap();
        let events = drive(&mut ch, SimTime::from_secs(10));
        assert_eq!(delivered_ids(&events, Endpoint::B), vec![1]);
    }

    #[test]
    fn in_flight_records_deliver_during_teardown() {
        let mut cfg = quiet_cfg();
        cfg.link.delay = DelayModel::constant(SimDuration::from_millis(100));
        let mut ch = DuplexChannel::new(cfg, SimRng::seed_from_u64(9));
        ch.send_record(Endpoint::A, 0, 500, SimTime::ZERO).unwrap();
        // Reset while the segment is still in flight: the wire does not
        // forget — the record reaches B during teardown, but never produces
        // a RecordDelivered event.
        let report = ch.reset(SimTime::from_millis(1));
        assert_eq!(report.teardown_delivered_to_b, vec![0]);
        assert!(report.undelivered_from_a.is_empty());
        let events = drive(&mut ch, SimTime::from_secs(5));
        assert!(delivered_ids(&events, Endpoint::B).is_empty());
    }

    #[test]
    fn teardown_distinguishes_lost_and_arrived_records() {
        let mut cfg = quiet_cfg();
        cfg.link.delay = DelayModel::constant(SimDuration::from_millis(50));
        // First record's segments get through; then turn the link fully
        // lossy so the second record's segments vanish.
        let mut ch = DuplexChannel::new(cfg, SimRng::seed_from_u64(10));
        ch.send_record(Endpoint::A, 1, 400, SimTime::ZERO).unwrap();
        ch.set_condition(
            NetCondition::new(SimDuration::from_millis(50), 1.0),
            SimTime::ZERO,
        );
        ch.send_record(Endpoint::A, 2, 400, SimTime::ZERO).unwrap();
        let report = ch.reset(SimTime::from_millis(1));
        assert_eq!(report.teardown_delivered_to_b, vec![1]);
        assert_eq!(report.undelivered_from_a, vec![2]);
    }

    #[test]
    fn condition_change_applies_to_forward_link() {
        let mut ch = DuplexChannel::new(quiet_cfg(), SimRng::seed_from_u64(10));
        ch.set_condition(
            NetCondition::new(SimDuration::from_millis(100), 0.0),
            SimTime::ZERO,
        );
        ch.send_record(Endpoint::A, 0, 100, SimTime::ZERO).unwrap();
        let events = drive(&mut ch, SimTime::from_secs(5));
        let at = events
            .iter()
            .find_map(|ev| match ev {
                ChannelEvent::RecordDelivered { at, .. } => Some(*at),
                _ => None,
            })
            .expect("delivered");
        assert!(at >= SimTime::from_millis(100), "one-way delay applied");
    }

    #[test]
    fn throughput_degrades_with_loss() {
        // Goodput under 15% loss should be well below goodput under 0.1%.
        fn goodput(loss: f64, seed: u64) -> f64 {
            let mut cfg = quiet_cfg();
            cfg.link.loss = if loss > 0.0 {
                LossModel::bernoulli(loss)
            } else {
                LossModel::None
            };
            cfg.link.delay = DelayModel::constant(SimDuration::from_millis(20));
            let mut ch = DuplexChannel::new(cfg, SimRng::seed_from_u64(seed));
            let horizon = SimTime::from_secs(20);
            let mut now = SimTime::ZERO;
            let mut sent = 0u64;
            let mut delivered = 0u64;
            loop {
                // Keep the pipe as full as the buffer allows.
                while ch.writable(Endpoint::A) >= 1400 && sent < 100_000 {
                    ch.send_record(Endpoint::A, sent, 1400, now).unwrap();
                    sent += 1;
                }
                let Some(t) = ch.next_wakeup() else { break };
                if t > horizon {
                    break;
                }
                now = t;
                for ev in ch.advance(t) {
                    if matches!(ev, ChannelEvent::RecordDelivered { .. }) {
                        delivered += 1;
                    }
                }
            }
            delivered as f64 / horizon.as_secs_f64()
        }
        let clean = goodput(0.0, 1);
        let lossy = goodput(0.15, 1);
        assert!(
            lossy < clean / 5.0,
            "loss should crush goodput: clean={clean}/s lossy={lossy}/s"
        );
        assert!(lossy > 0.0, "some records still get through");
    }
}
