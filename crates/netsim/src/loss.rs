//! Per-packet loss processes.
//!
//! The paper's testbed injects packet loss with NetEm; its static experiments
//! use an i.i.d. rate (`L`) and its dynamic-configuration experiment draws
//! the loss process from a **Gilbert–Elliott** two-state Markov model, the
//! standard burst-loss model for wireless links (Bildea et al., PIMRC 2015).

use desim::SimRng;
use serde::{Deserialize, Serialize};

/// Hidden state of the Gilbert–Elliott chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeState {
    /// The low-loss state.
    Good,
    /// The high-loss (burst) state.
    Bad,
}

/// A stateful per-packet loss process.
///
/// Construct with one of the constructors and call [`LossModel::sample`]
/// once per packet, in transmission order; the Gilbert–Elliott variant
/// advances its Markov chain on every call.
///
/// # Example
///
/// ```
/// use netsim::LossModel;
/// use desim::SimRng;
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let mut loss = LossModel::bernoulli(0.19);
/// let lost = (0..100_000).filter(|_| loss.sample(&mut rng)).count();
/// assert!((lost as f64 / 100_000.0 - 0.19).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// No loss at all.
    #[default]
    None,
    /// Independent loss with fixed probability per packet.
    Bernoulli {
        /// Probability that any given packet is lost, in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott Markov loss.
    GilbertElliott {
        /// Probability of moving Good → Bad at each packet.
        p_good_to_bad: f64,
        /// Probability of moving Bad → Good at each packet.
        p_bad_to_good: f64,
        /// Loss probability while in the Good state (often 0).
        loss_good: f64,
        /// Loss probability while in the Bad state (often near 1).
        loss_bad: f64,
        /// Current chain state.
        state: GeState,
    },
}

impl LossModel {
    /// A lossless process.
    #[must_use]
    pub fn none() -> Self {
        LossModel::None
    }

    /// An i.i.d. Bernoulli loss process with per-packet probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or not finite.
    #[must_use]
    pub fn bernoulli(p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p must be in [0,1]"
        );
        LossModel::Bernoulli { p }
    }

    /// A Gilbert–Elliott process starting in the Good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn gilbert_elliott(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        for (name, v) in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!(
                v.is_finite() && (0.0..=1.0).contains(&v),
                "{name} must be in [0,1]"
            );
        }
        LossModel::GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
            state: GeState::Good,
        }
    }

    /// Samples whether the next packet is lost, advancing internal state.
    pub fn sample(&mut self, rng: &mut SimRng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.bernoulli(*p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
                state,
            } => {
                // Advance the chain, then sample loss in the new state.
                *state = match *state {
                    GeState::Good if rng.bernoulli(*p_good_to_bad) => GeState::Bad,
                    GeState::Bad if rng.bernoulli(*p_bad_to_good) => GeState::Good,
                    s => s,
                };
                let p = match *state {
                    GeState::Good => *loss_good,
                    GeState::Bad => *loss_bad,
                };
                rng.bernoulli(p)
            }
        }
    }

    /// The long-run average loss probability of the process.
    ///
    /// For Gilbert–Elliott this is the stationary mixture
    /// `π_B·loss_bad + π_G·loss_good` with
    /// `π_B = p_gb / (p_gb + p_bg)`.
    #[must_use]
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
                ..
            } => {
                let denom = p_good_to_bad + p_bad_to_good;
                if denom <= 0.0 {
                    // Chain never moves: stays in its initial (Good) state.
                    return *loss_good;
                }
                let pi_bad = p_good_to_bad / denom;
                pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
            }
        }
    }

    /// Current Gilbert–Elliott state, if this is a Gilbert–Elliott model.
    #[must_use]
    pub fn ge_state(&self) -> Option<GeState> {
        match self {
            LossModel::GilbertElliott { state, .. } => Some(*state),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_loses() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut m = LossModel::none();
        assert!((0..1000).all(|_| !m.sample(&mut rng)));
        assert_eq!(m.mean_loss(), 0.0);
    }

    #[test]
    fn bernoulli_matches_rate() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut m = LossModel::bernoulli(0.3);
        let lost = (0..200_000).filter(|_| m.sample(&mut rng)).count();
        assert!((lost as f64 / 200_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn bernoulli_rejects_invalid() {
        let _ = LossModel::bernoulli(1.5);
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let mut rng = SimRng::seed_from_u64(3);
        // π_B = 0.05/(0.05+0.20) = 0.2; mean loss = 0.2*0.8 + 0.8*0.01 = 0.168
        let mut m = LossModel::gilbert_elliott(0.05, 0.20, 0.01, 0.80);
        assert!((m.mean_loss() - 0.168).abs() < 1e-12);
        let n = 400_000;
        let lost = (0..n).filter(|_| m.sample(&mut rng)).count();
        assert!(
            (lost as f64 / n as f64 - 0.168).abs() < 0.01,
            "observed {}",
            lost as f64 / n as f64
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare run-length structure against a Bernoulli model of equal rate.
        let mut rng = SimRng::seed_from_u64(4);
        let mut ge = LossModel::gilbert_elliott(0.02, 0.10, 0.0, 1.0);
        let rate = ge.mean_loss();
        let mut bern = LossModel::bernoulli(rate);

        fn mean_burst(model: &mut LossModel, rng: &mut SimRng, n: usize) -> f64 {
            let mut bursts = 0u64;
            let mut lost_packets = 0u64;
            let mut in_burst = false;
            for _ in 0..n {
                if model.sample(rng) {
                    lost_packets += 1;
                    if !in_burst {
                        bursts += 1;
                        in_burst = true;
                    }
                } else {
                    in_burst = false;
                }
            }
            if bursts == 0 {
                0.0
            } else {
                lost_packets as f64 / bursts as f64
            }
        }

        let ge_burst = mean_burst(&mut ge, &mut rng, 200_000);
        let bern_burst = mean_burst(&mut bern, &mut rng, 200_000);
        assert!(
            ge_burst > 2.0 * bern_burst,
            "GE bursts ({ge_burst:.2}) should far exceed Bernoulli ({bern_burst:.2})"
        );
    }

    #[test]
    fn frozen_chain_mean_loss_uses_initial_state() {
        let m = LossModel::gilbert_elliott(0.0, 0.0, 0.05, 0.9);
        assert!((m.mean_loss() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ge_state_accessor() {
        let m = LossModel::gilbert_elliott(0.1, 0.1, 0.0, 1.0);
        assert_eq!(m.ge_state(), Some(GeState::Good));
        assert_eq!(LossModel::none().ge_state(), None);
    }

    #[test]
    fn serde_round_trip() {
        let m = LossModel::gilbert_elliott(0.05, 0.2, 0.01, 0.8);
        let json = serde_json::to_string(&m).unwrap();
        let back: LossModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
