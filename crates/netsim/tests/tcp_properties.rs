//! Property-based tests of the TCP substrate: reliability invariants that
//! must hold for arbitrary loss patterns, segment orderings and workloads.

use desim::{SimDuration, SimRng, SimTime};
use netsim::channel::{ChannelConfig, ChannelEvent, DuplexChannel, Endpoint};
use netsim::tcp::{TcpConfig, TcpReceiver, TcpSender};
use netsim::{DelayModel, LossModel};
use proptest::prelude::*;

/// Drives sender → receiver with a scripted per-segment loss pattern and a
/// fixed RTT until everything is acknowledged or the step budget runs out.
fn drive_with_losses(bytes: u64, loss_pattern: &[bool]) -> bool {
    let cfg = TcpConfig::default();
    let mut snd = TcpSender::new(cfg, SimTime::ZERO);
    let mut rcv = TcpReceiver::new();
    snd.offer(bytes);
    let mut now = SimTime::ZERO;
    let rtt = SimDuration::from_millis(20);
    let mut tx = 0usize;
    for _ in 0..10_000 {
        if snd.is_idle() {
            return true;
        }
        let segs = snd.emit(now);
        now += rtt;
        let mut ack = None;
        for seg in segs {
            let lost = loss_pattern.get(tx).copied().unwrap_or(false);
            tx += 1;
            if !lost {
                ack = Some(rcv.on_segment(seg.seq, seg.len));
            }
        }
        if let Some(a) = ack {
            snd.on_ack(a, now);
        }
        // Fire the retransmission timer whenever it is due.
        while let Some(dl) = snd.rto_deadline() {
            if dl <= now {
                snd.on_rto(now);
                break;
            } else if snd.bytes_unacked() > 0 && snd.emit(now).is_empty() && ack.is_none() {
                now = dl; // idle wait for the timer
            } else {
                break;
            }
        }
    }
    snd.is_idle()
}

proptest! {
    /// Whatever (finite) pattern of losses the network applies, every
    /// offered byte is eventually delivered and acknowledged: TCP is
    /// reliable as long as the loss is not permanent.
    #[test]
    fn tcp_delivers_under_arbitrary_finite_loss(
        kilobytes in 1u64..40,
        pattern in proptest::collection::vec(proptest::bool::weighted(0.3), 0..200),
    ) {
        prop_assert!(drive_with_losses(kilobytes * 1024, &pattern));
    }

    /// The receiver reassembles any arrival order of a segmented stream:
    /// the cumulative ACK equals the total length once all segments have
    /// arrived, regardless of permutation and duplication.
    #[test]
    fn receiver_reassembles_any_permutation(
        seg_lens in proptest::collection::vec(1u64..2000, 1..30),
        seed in 0u64..10_000,
        duplicate_every in 2usize..5,
    ) {
        let mut segments: Vec<(u64, u64)> = Vec::new();
        let mut offset = 0;
        for len in &seg_lens {
            segments.push((offset, *len));
            offset += len;
        }
        // Shuffle deterministically and inject duplicates.
        let mut rng = SimRng::seed_from_u64(seed);
        rng.shuffle(&mut segments);
        let dups: Vec<(u64, u64)> = segments
            .iter()
            .step_by(duplicate_every)
            .copied()
            .collect();
        segments.extend(dups);

        let mut rcv = TcpReceiver::new();
        let mut last = 0;
        for (seq, len) in segments {
            last = rcv.on_segment(seq, len);
            prop_assert!(last <= offset, "ack beyond stream end");
        }
        prop_assert_eq!(last, offset, "stream must be fully contiguous");
    }

    /// Sender byte accounting never goes backwards and never exceeds what
    /// was offered, under arbitrary (possibly bogus) ack sequences.
    #[test]
    fn sender_accounting_is_monotone(
        acks in proptest::collection::vec(0u64..100_000, 1..50),
    ) {
        let mut snd = TcpSender::new(TcpConfig::default(), SimTime::ZERO);
        let offered = snd.offer(50_000);
        let _ = snd.emit(SimTime::ZERO);
        let mut high = 0;
        for (i, &ack) in acks.iter().enumerate() {
            // Clamp acks into the valid range: TCP would never see an ack
            // beyond what was sent.
            let ack = ack.min(snd.stream_end());
            snd.on_ack(ack, SimTime::from_millis(i as u64 + 1));
            prop_assert!(snd.acked_up_to() >= high, "snd_una went backwards");
            high = snd.acked_up_to();
            prop_assert!(high <= offered);
            let _ = snd.emit(SimTime::from_millis(i as u64 + 1));
        }
    }
}

#[test]
fn channel_delivers_records_in_order_under_bursty_loss() {
    // Gilbert–Elliott loss on the data path: delivery order must still be
    // exactly the send order (TCP is a stream).
    let mut cfg = ChannelConfig::default();
    cfg.link.loss = LossModel::gilbert_elliott(0.05, 0.3, 0.0, 0.9);
    cfg.link.delay = DelayModel::constant(SimDuration::from_millis(10));
    let mut ch = DuplexChannel::new(cfg, SimRng::seed_from_u64(5));
    let mut delivered = Vec::new();
    let mut sent = 0u64;
    let mut now = SimTime::ZERO;
    loop {
        while sent < 300 && ch.writable(Endpoint::A) >= 500 {
            ch.send_record(Endpoint::A, sent, 500, now).unwrap();
            sent += 1;
        }
        let Some(t) = ch.next_wakeup() else { break };
        if t > SimTime::from_secs(600) {
            break;
        }
        now = t;
        for ev in ch.advance(t) {
            if let ChannelEvent::RecordDelivered { id, .. } = ev {
                delivered.push(id);
            }
        }
        if delivered.len() == 300 {
            break;
        }
    }
    assert_eq!(delivered, (0..300).collect::<Vec<u64>>());
}

#[test]
fn reset_conserves_records() {
    // Every offered record is either delivered, teardown-delivered, or
    // reported undelivered — none vanish, none double-count.
    let mut cfg = ChannelConfig::default();
    cfg.link.loss = LossModel::bernoulli(0.5);
    cfg.link.delay = DelayModel::constant(SimDuration::from_millis(30));
    let mut ch = DuplexChannel::new(cfg, SimRng::seed_from_u64(9));
    let mut now = SimTime::ZERO;
    let mut sent = Vec::new();
    let mut delivered = Vec::new();
    for id in 0..40u64 {
        if ch.writable(Endpoint::A) >= 700 {
            ch.send_record(Endpoint::A, id, 700, now).unwrap();
            sent.push(id);
        }
        if let Some(t) = ch.next_wakeup() {
            now = t;
            for ev in ch.advance(t) {
                if let ChannelEvent::RecordDelivered { id, .. } = ev {
                    delivered.push(id);
                }
            }
        }
    }
    let report = ch.reset(now);
    let mut all: Vec<u64> = delivered;
    all.extend(report.teardown_delivered_to_b.iter());
    all.extend(report.undelivered_from_a.iter());
    all.sort_unstable();
    assert_eq!(all, sent, "partition of offered records must be exact");
}
