//! Single-server queueing formulas.
//!
//! The producer is modelled as a single-server queue fed by the polling
//! process (rate `λ = 1/δ`) and drained by the serialisation service (rate
//! `μ` from [`crate::ServiceModel`]). Two classical service disciplines are
//! provided: exponential service (M/M/1 — matches `kafkasim`'s jittered
//! service) and deterministic service (M/D/1).

use serde::{Deserialize, Serialize};

/// Error for unstable or malformed queue parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueError {
    /// Rates must be finite and strictly positive.
    InvalidRate,
}

impl core::fmt::Display for QueueError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rates must be finite and strictly positive")
    }
}

impl std::error::Error for QueueError {}

/// An M/M/1 queue (Poisson arrivals, exponential service).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MM1Queue {
    /// Arrival rate `λ`.
    pub lambda: f64,
    /// Service rate `μ`.
    pub mu: f64,
}

impl MM1Queue {
    /// Creates the queue.
    ///
    /// # Errors
    ///
    /// [`QueueError::InvalidRate`] when either rate is non-positive or
    /// non-finite.
    pub fn new(lambda: f64, mu: f64) -> Result<Self, QueueError> {
        if !(lambda.is_finite() && mu.is_finite() && lambda > 0.0 && mu > 0.0) {
            return Err(QueueError::InvalidRate);
        }
        Ok(MM1Queue { lambda, mu })
    }

    /// Utilisation `ρ = λ/μ`.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        self.lambda / self.mu
    }

    /// `true` when the queue has a stationary distribution (`ρ < 1`).
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.utilisation() < 1.0
    }

    /// Mean waiting time in queue `W_q = ρ / (μ − λ)`.
    ///
    /// Returns `f64::INFINITY` when unstable.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        self.utilisation() / (self.mu - self.lambda)
    }

    /// Mean sojourn (wait + service) `W = 1 / (μ − λ)`.
    #[must_use]
    pub fn mean_sojourn(&self) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        1.0 / (self.mu - self.lambda)
    }

    /// `P(W > t)` — probability that the *sojourn* time exceeds `t`
    /// seconds: `e^{−(μ−λ)t}` for a stable M/M/1.
    ///
    /// This is the analytic form of the paper's Fig. 5 (loss from
    /// `T_o`-expiry under load). Returns 1 when unstable.
    #[must_use]
    pub fn sojourn_exceeds(&self, t: f64) -> f64 {
        if !self.is_stable() {
            return 1.0;
        }
        (-(self.mu - self.lambda) * t).exp()
    }

    /// The long-run loss fraction when arrivals beyond capacity are shed:
    /// `max(0, 1 − μ/λ)` — the sustained-overload floor of Fig. 6.
    #[must_use]
    pub fn overload_loss(&self) -> f64 {
        (1.0 - self.mu / self.lambda).max(0.0)
    }
}

/// An M/D/1 queue (Poisson arrivals, deterministic service).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MD1Queue {
    /// Arrival rate `λ`.
    pub lambda: f64,
    /// Service rate `μ`.
    pub mu: f64,
}

impl MD1Queue {
    /// Creates the queue.
    ///
    /// # Errors
    ///
    /// [`QueueError::InvalidRate`] when either rate is non-positive or
    /// non-finite.
    pub fn new(lambda: f64, mu: f64) -> Result<Self, QueueError> {
        if !(lambda.is_finite() && mu.is_finite() && lambda > 0.0 && mu > 0.0) {
            return Err(QueueError::InvalidRate);
        }
        Ok(MD1Queue { lambda, mu })
    }

    /// Utilisation `ρ = λ/μ`.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        self.lambda / self.mu
    }

    /// `true` when `ρ < 1`.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.utilisation() < 1.0
    }

    /// Mean waiting time `W_q = ρ / (2μ(1 − ρ))` (Pollaczek–Khinchine).
    ///
    /// Returns `f64::INFINITY` when unstable.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        let rho = self.utilisation();
        rho / (2.0 * self.mu * (1.0 - rho))
    }

    /// Mean sojourn time (wait + deterministic service).
    #[must_use]
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_wait() + 1.0 / self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_values() {
        // λ=8, μ=10: ρ=0.8, Wq = 0.8/2 = 0.4s, W = 0.5s.
        let q = MM1Queue::new(8.0, 10.0).unwrap();
        assert!((q.utilisation() - 0.8).abs() < 1e-12);
        assert!((q.mean_wait() - 0.4).abs() < 1e-12);
        assert!((q.mean_sojourn() - 0.5).abs() < 1e-12);
        assert!(q.is_stable());
    }

    #[test]
    fn mm1_tail_probability() {
        let q = MM1Queue::new(8.0, 10.0).unwrap();
        // P(W > 0.5) = e^{-2·0.5} = e^{-1}
        assert!((q.sojourn_exceeds(0.5) - (-1.0f64).exp()).abs() < 1e-12);
        // Tail decreases with t.
        assert!(q.sojourn_exceeds(1.0) < q.sojourn_exceeds(0.5));
    }

    #[test]
    fn mm1_unstable_behaviour() {
        let q = MM1Queue::new(12.0, 10.0).unwrap();
        assert!(!q.is_stable());
        assert_eq!(q.mean_wait(), f64::INFINITY);
        assert_eq!(q.sojourn_exceeds(10.0), 1.0);
        assert!((q.overload_loss() - (1.0 - 10.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn stable_queue_has_no_overload_loss() {
        let q = MM1Queue::new(5.0, 10.0).unwrap();
        assert_eq!(q.overload_loss(), 0.0);
    }

    #[test]
    fn md1_waits_half_of_mm1() {
        // Classic result: M/D/1 queueing delay is half the M/M/1 delay.
        let mm1 = MM1Queue::new(8.0, 10.0).unwrap();
        let md1 = MD1Queue::new(8.0, 10.0).unwrap();
        assert!((md1.mean_wait() - mm1.mean_wait() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(MM1Queue::new(0.0, 1.0).is_err());
        assert!(MM1Queue::new(1.0, -1.0).is_err());
        assert!(MD1Queue::new(f64::NAN, 1.0).is_err());
        assert!(MD1Queue::new(1.0, f64::INFINITY).is_err());
    }
}
