//! The producer's service-rate model `μ(M, B)`.
//!
//! Ref. \[6\] observes that the producer's serialisation efficiency
//! correlates strongly with the message size `M` ("with larger M the
//! service rate μ is lower") and that batching trades service rate for
//! latency ("larger B results in lower μ"). Both observations follow from
//! a linear cost model with a per-request component amortised over the
//! batch.

use serde::{Deserialize, Serialize};

/// Linear service-cost model of a producer host.
///
/// Mean service time *per message* for batch size `B` and message size `M`:
///
/// ```text
/// s(M, B) = per_request_s / B + per_message_s + per_byte_s · M
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Fixed cost per produce request, in seconds.
    pub per_request_s: f64,
    /// Cost per message, in seconds.
    pub per_message_s: f64,
    /// Cost per payload byte, in seconds.
    pub per_byte_s: f64,
}

impl Default for ServiceModel {
    /// Matches `kafkasim`'s default [`HostModel`] constants (400 µs per
    /// request, 300 µs per message, 60 ns per byte).
    ///
    /// [`HostModel`]: https://docs.rs/kafkasim
    fn default() -> Self {
        ServiceModel {
            per_request_s: 400e-6,
            per_message_s: 300e-6,
            per_byte_s: 60e-9,
        }
    }
}

impl ServiceModel {
    /// Mean service time per message, in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn service_time(&self, message_bytes: u64, batch: usize) -> f64 {
        assert!(batch > 0, "batch size must be positive");
        self.per_request_s / batch as f64
            + self.per_message_s
            + self.per_byte_s * message_bytes as f64
    }

    /// Mean service rate `μ` in messages/second.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn service_rate(&self, message_bytes: u64, batch: usize) -> f64 {
        1.0 / self.service_time(message_bytes, batch)
    }

    /// Service rate normalised to `[0, 1]` against the best achievable rate
    /// (smallest message, infinite batch) — the `μ` term of the weighted
    /// KPI, which must be unit-scaled to combine with probabilities.
    #[must_use]
    pub fn normalized_rate(&self, message_bytes: u64, batch: usize) -> f64 {
        let best = 1.0 / self.per_message_s;
        (self.service_rate(message_bytes, batch) / best).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_falls_with_message_size() {
        let m = ServiceModel::default();
        assert!(m.service_rate(50, 1) > m.service_rate(1_000, 1));
    }

    #[test]
    fn rate_rises_with_batching() {
        let m = ServiceModel::default();
        let mut prev = m.service_rate(200, 1);
        for b in [2, 4, 8] {
            let rate = m.service_rate(200, b);
            assert!(rate > prev, "B={b}");
            prev = rate;
        }
    }

    #[test]
    fn batching_has_diminishing_returns() {
        let m = ServiceModel::default();
        let gain_1_2 = m.service_rate(200, 2) - m.service_rate(200, 1);
        let gain_8_9 = m.service_rate(200, 9) - m.service_rate(200, 8);
        assert!(gain_1_2 > 5.0 * gain_8_9);
    }

    #[test]
    fn service_time_components_add_up() {
        let m = ServiceModel {
            per_request_s: 1e-3,
            per_message_s: 2e-3,
            per_byte_s: 1e-6,
        };
        let s = m.service_time(1_000, 2);
        assert!((s - (0.5e-3 + 2e-3 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn normalized_rate_is_unit_bounded() {
        let m = ServiceModel::default();
        for &(bytes, batch) in &[(50u64, 1usize), (200, 10), (5_000, 1)] {
            let r = m.normalized_rate(bytes, batch);
            assert!((0.0..=1.0).contains(&r), "({bytes},{batch}) → {r}");
        }
        // Large batch of tiny messages approaches the per-message bound.
        assert!(m.normalized_rate(1, 10_000) > 0.95);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        let _ = ServiceModel::default().service_time(100, 0);
    }
}
