//! Network bandwidth utilisation `φ`.
//!
//! The first term of the paper's weighted KPI is "the utilisation of
//! network bandwidth … under normal circumstances": how much of the link's
//! capacity the producer's offered wire traffic uses.

/// Offered wire throughput in bytes/second.
///
/// `message_rate` is in messages/second and `wire_bytes_per_message`
/// includes all protocol overhead (record framing, request headers, TCP/IP
/// headers amortised per message).
#[must_use]
pub fn offered_bytes_per_sec(message_rate: f64, wire_bytes_per_message: f64) -> f64 {
    message_rate.max(0.0) * wire_bytes_per_message.max(0.0)
}

/// Bandwidth utilisation `φ ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `capacity_bytes_per_sec` is not strictly positive.
///
/// # Example
///
/// ```
/// use perfmodel::bandwidth::utilisation;
/// assert_eq!(utilisation(1_000.0, 500.0, 1_000_000.0), 0.5);
/// ```
#[must_use]
pub fn utilisation(
    message_rate: f64,
    wire_bytes_per_message: f64,
    capacity_bytes_per_sec: f64,
) -> f64 {
    assert!(
        capacity_bytes_per_sec > 0.0,
        "link capacity must be positive"
    );
    (offered_bytes_per_sec(message_rate, wire_bytes_per_message) / capacity_bytes_per_sec)
        .clamp(0.0, 1.0)
}

/// Wire bytes per message for a batch of `batch` messages of `payload`
/// bytes, with the given per-request and per-record overheads and the
/// per-packet transport overhead amortised over `mss`-sized segments.
#[must_use]
pub fn wire_bytes_per_message(
    payload: f64,
    batch: usize,
    request_overhead: f64,
    record_overhead: f64,
    packet_header: f64,
    mss: f64,
) -> f64 {
    let batch = batch.max(1) as f64;
    let request_bytes = request_overhead + batch * (record_overhead + payload);
    let packets = (request_bytes / mss).ceil().max(1.0);
    (request_bytes + packets * packet_header) / batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilisation_clamps_to_one() {
        assert_eq!(utilisation(1e9, 1_000.0, 1_000.0), 1.0);
        assert_eq!(utilisation(0.0, 1_000.0, 1_000.0), 0.0);
    }

    #[test]
    fn batching_reduces_wire_bytes_per_message() {
        let single = wire_bytes_per_message(100.0, 1, 94.0, 40.0, 66.0, 1448.0);
        let batched = wire_bytes_per_message(100.0, 10, 94.0, 40.0, 66.0, 1448.0);
        assert!(batched < single);
        // Payload + record overhead is the irreducible floor.
        assert!(batched > 140.0);
    }

    #[test]
    fn utilisation_grows_with_rate() {
        let phi_lo = utilisation(100.0, 300.0, 1e6);
        let phi_hi = utilisation(1_000.0, 300.0, 1e6);
        assert!(phi_hi > phi_lo);
    }

    #[test]
    #[should_panic(expected = "link capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = utilisation(1.0, 1.0, 0.0);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        assert_eq!(offered_bytes_per_sec(-5.0, 100.0), 0.0);
        assert_eq!(utilisation(-5.0, 100.0, 1e6), 0.0);
    }
}
