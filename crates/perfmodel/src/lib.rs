//! `perfmodel` — an analytic queueing model of a Kafka producer.
//!
//! The paper's weighted KPI (Eq. 2) combines the predicted reliability
//! metrics with two *performance* metrics taken from the authors' earlier
//! queueing model (Wu, Shang & Wolter, HPCC 2019, ref. \[6\]): `φ`, the
//! utilisation of network bandwidth, and `μ`, the mean service rate of the
//! producer. This crate reimplements that queueing model analytically:
//!
//! * [`service`] — the producer's mean service time/rate as a function of
//!   message size `M` and batch size `B` (per-request overhead amortised by
//!   batching);
//! * [`queueing`] — M/M/1 and M/D/1 waiting-time formulas and the
//!   deadline-miss probability `P(W > T_o)` used to sanity-check the
//!   simulator's overload behaviour;
//! * [`bandwidth`] — wire throughput and bandwidth utilisation `φ`.
//!
//! # Example
//!
//! ```
//! use perfmodel::ServiceModel;
//! use perfmodel::bandwidth::utilisation;
//!
//! let model = ServiceModel::default();
//! // Batching amortises the per-request cost: service rate grows with B.
//! assert!(model.service_rate(200, 10) > model.service_rate(200, 1));
//! // Bandwidth utilisation of 500 msg/s of 306-wire-byte messages on 1 MB/s.
//! let phi = utilisation(500.0, 306.0, 1_000_000.0);
//! assert!((phi - 0.153).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod queueing;
pub mod service;

pub use queueing::{MD1Queue, MM1Queue};
pub use service::ServiceModel;
