//! Sharded deterministic event engine: parallel macro-steps, bit-identical
//! results at any thread count.
//!
//! The single-heap [`EventSim`](crate::typed::EventSim) processes one event at
//! a time, which caps a fleet-scale run at one core no matter how independent
//! the simulated components are. This module splits the event population into
//! **shards** — one per independent island of the simulated topology — and
//! advances all shards in parallel between **deterministic macro-step
//! barriers**.
//!
//! # Execution model
//!
//! Virtual time is cut into a fixed grid of windows `[k·H, (k+1)·H)` where `H`
//! is the *horizon*. Each macro step:
//!
//! 1. finds the globally earliest pending event and selects the grid window
//!    containing it (empty windows are skipped entirely, so a sparse schedule
//!    fast-forwards rather than spinning);
//! 2. lets every shard process **its own** events with `time < window_end`,
//!    in parallel, each shard using its own heap, sequence counter, and
//!    seed-derived RNG stream;
//! 3. at the barrier, merges all cross-shard sends buffered during the window
//!    into the destination heaps in one fixed total order — sorted by
//!    `(destination, time, source shard, source seq)` — with the delivery
//!    time clamped to no earlier than the *next* window start.
//!
//! # Why results are bit-identical at any thread count
//!
//! * A shard's evolution inside a window depends only on its own state: its
//!   heap, its sequence counter, its RNG stream. Threads never share any of
//!   these, so the partition of shards onto worker threads is unobservable.
//! * Cross-shard events are never injected mid-window. They are buffered and
//!   merged only at the barrier, in an order determined entirely by values
//!   that are themselves thread-invariant (event time, source shard id,
//!   source-local sequence number). Destination sequence numbers are assigned
//!   while walking that sorted order, so tie-breaking on the destination heap
//!   is also thread-invariant.
//! * Window boundaries depend only on the earliest pending event time and the
//!   fixed horizon — again thread-invariant.
//!
//! The price is a latency floor: a cross-shard send takes effect no earlier
//! than the next window boundary. Callers choose a horizon no larger than the
//! minimum cross-shard latency they model (for network-coupled shards, the
//! minimum link delay), in which case the clamp never moves an event and the
//! sharded run is *exactly* the merge of its sequential counterparts.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::minq::MinQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A world advanced by one shard of a [`ShardedSim`].
///
/// Mirrors [`EventWorld`](crate::typed::EventWorld), with the additional
/// ability to `send` events to sibling shards through the context. Worlds are
/// moved onto worker threads during parallel runs, hence the `Send` bound.
pub trait ShardWorld: Send {
    /// The event type this world handles.
    type Event: Send;

    /// Handle one event at its scheduled time.
    fn handle(&mut self, event: Self::Event, ctx: &mut ShardContext<Self::Event>);
}

/// Scheduling and randomness facilities handed to [`ShardWorld::handle`].
///
/// Each shard owns exactly one context for the lifetime of the simulation:
/// its clock, heap, sequence counter, RNG stream, and outgoing mailboxes.
pub struct ShardContext<E> {
    shard: u32,
    n_shards: u32,
    now: SimTime,
    next_seq: u64,
    queue: MinQueue<E>,
    rng: SimRng,
    /// Outgoing mailbox per destination shard; drained at each barrier.
    outbox: Vec<Vec<(SimTime, u64, E)>>,
    fired: u64,
    sent_remote: u64,
}

impl<E> ShardContext<E> {
    fn new(shard: u32, n_shards: u32, rng: SimRng) -> Self {
        ShardContext {
            shard,
            n_shards,
            now: SimTime::ZERO,
            next_seq: 0,
            queue: MinQueue::new(),
            rng,
            outbox: (0..n_shards).map(|_| Vec::new()).collect(),
            fired: 0,
            sent_remote: 0,
        }
    }

    /// This shard's id, in `0..n_shards`.
    #[must_use]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Number of shards in the simulation.
    #[must_use]
    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    /// Current virtual time on this shard's clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This shard's private random-number stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Events fired on this shard so far.
    #[must_use]
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Schedule `event` on this shard at absolute time `at`.
    ///
    /// Times in the past are clamped to `now`, like
    /// [`EventContext::schedule_at`](crate::typed::EventContext::schedule_at).
    /// Ties fire in scheduling order.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(at, seq, event);
    }

    /// Schedule `event` on this shard after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Send `event` to shard `dst` with a target time of `at`.
    ///
    /// A send to the local shard is an ordinary [`schedule_at`]. A send to a
    /// sibling shard is buffered and merged at the next barrier; its delivery
    /// time is `at` clamped to no earlier than the next window boundary
    /// (see the module docs for when the clamp is a no-op).
    ///
    /// [`schedule_at`]: ShardContext::schedule_at
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a valid shard id.
    pub fn send(&mut self, dst: u32, at: SimTime, event: E) {
        assert!(dst < self.n_shards, "send to unknown shard {dst}");
        if dst == self.shard {
            self.schedule_at(at, event);
        } else {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.sent_remote += 1;
            self.outbox[dst as usize].push((at, seq, event));
        }
    }
}

/// One shard: its world plus its private engine state.
struct ShardCore<W: ShardWorld> {
    world: W,
    ctx: ShardContext<W::Event>,
}

impl<W: ShardWorld> ShardCore<W> {
    /// Fire every local event with `time < end` (also `time == end` when
    /// `inclusive`, used only for the saturated final window at
    /// [`SimTime::MAX`]).
    fn run_window(&mut self, end: SimTime, inclusive: bool) {
        while let Some((at, _)) = self.ctx.queue.peek() {
            if at > end || (at == end && !inclusive) {
                break;
            }
            let (at, event) = self.ctx.queue.pop().expect("peeked event vanished");
            self.ctx.now = at;
            self.ctx.fired += 1;
            self.world.handle(event, &mut self.ctx);
        }
    }
}

/// Earliest pending event time across all shards, or `None` when idle.
fn min_pending<W: ShardWorld>(shards: &[Mutex<ShardCore<W>>]) -> Option<SimTime> {
    let mut min: Option<SimTime> = None;
    for cell in shards {
        let core = cell.lock().expect("shard lock poisoned");
        if let Some((at, _)) = core.ctx.queue.peek() {
            min = Some(min.map_or(at, |m| m.min(at)));
        }
    }
    min
}

/// The grid window containing `at`: returns `(end, inclusive)` where the
/// window is `[start, end)` — or `[start, end]` when `end` saturates at
/// [`SimTime::MAX`], so events at the far end of time still fire.
fn window_end(at: SimTime, horizon: SimDuration) -> (SimTime, bool) {
    let h = horizon.as_micros();
    let k = at.as_micros() / h;
    let end = (k * h).saturating_add(h);
    (SimTime::from_micros(end), end == u64::MAX)
}

/// Drain every outgoing mailbox and inject the events into their destination
/// heaps in the fixed merge order `(destination, time, source, seq)`, with
/// delivery clamped to `next_start`. Returns the number of events merged.
fn merge_mailboxes<W: ShardWorld>(shards: &[Mutex<ShardCore<W>>], next_start: SimTime) -> u64 {
    let mut pending: Vec<(u32, SimTime, u32, u64, W::Event)> = Vec::new();
    for (src, cell) in shards.iter().enumerate() {
        let mut core = cell.lock().expect("shard lock poisoned");
        let n = core.ctx.outbox.len();
        for dst in 0..n {
            let drained: Vec<(SimTime, u64, W::Event)> = core.ctx.outbox[dst].drain(..).collect();
            for (at, seq, event) in drained {
                pending.push((dst as u32, at, src as u32, seq, event));
            }
        }
    }
    let merged = pending.len() as u64;
    pending.sort_by_key(|e| (e.0, e.1, e.2, e.3));
    for (dst, at, _src, _seq, event) in pending {
        let mut core = shards[dst as usize].lock().expect("shard lock poisoned");
        core.ctx.schedule_at(at.max(next_start), event);
    }
    merged
}

/// A deterministic parallel discrete-event simulation over N shards.
///
/// See the [module docs](self) for the execution model and the determinism
/// argument. Construct with one world per shard, schedule seed events with
/// [`schedule`](ShardedSim::schedule), then call
/// [`run_until_idle`](ShardedSim::run_until_idle) with any thread count —
/// including 1, which runs inline on the calling thread.
pub struct ShardedSim<W: ShardWorld> {
    shards: Vec<Mutex<ShardCore<W>>>,
    horizon: SimDuration,
    steps: u64,
    cross_shard: u64,
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Build a sharded simulation: one shard per world, macro-step windows of
    /// `horizon`, and per-shard RNG streams forked in shard order from a
    /// master seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `worlds` is empty or `horizon` is zero.
    #[must_use]
    pub fn new(worlds: Vec<W>, horizon: SimDuration, seed: u64) -> Self {
        assert!(!worlds.is_empty(), "a sharded sim needs at least one shard");
        assert!(!horizon.is_zero(), "macro-step horizon must be positive");
        let n = u32::try_from(worlds.len()).expect("shard count fits in u32");
        let mut master = SimRng::seed_from_u64(seed);
        let shards = worlds
            .into_iter()
            .enumerate()
            .map(|(i, world)| {
                Mutex::new(ShardCore {
                    world,
                    ctx: ShardContext::new(i as u32, n, master.fork()),
                })
            })
            .collect();
        ShardedSim {
            shards,
            horizon,
            steps: 0,
            cross_shard: 0,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The macro-step horizon.
    #[must_use]
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// Schedule a seed event on `shard` at absolute time `at`.
    pub fn schedule(&mut self, shard: usize, at: SimTime, event: W::Event) {
        let core = self.shards[shard].get_mut().expect("shard lock poisoned");
        core.ctx.schedule_at(at, event);
    }

    /// Mutable access to one shard's world (between runs).
    pub fn world_mut(&mut self, shard: usize) -> &mut W {
        &mut self.shards[shard]
            .get_mut()
            .expect("shard lock poisoned")
            .world
    }

    /// Total events fired across all shards.
    #[must_use]
    pub fn events_fired(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.lock().expect("shard lock poisoned").ctx.fired)
            .sum()
    }

    /// Macro steps (barriers) executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Cross-shard events merged through mailboxes so far.
    #[must_use]
    pub fn cross_shard_events(&self) -> u64 {
        self.cross_shard
    }

    /// Consume the simulation and return the shard worlds in shard order.
    #[must_use]
    pub fn into_worlds(self) -> Vec<W> {
        self.shards
            .into_iter()
            .map(|c| c.into_inner().expect("shard lock poisoned").world)
            .collect()
    }

    /// Run macro steps until every shard's heap is empty, using `threads`
    /// worker threads (clamped to `[1, n_shards]`). Returns the total number
    /// of events fired during this call.
    ///
    /// The result — every shard world, every RNG stream, every counter — is
    /// bit-identical for every value of `threads`.
    pub fn run_until_idle(&mut self, threads: usize) -> u64 {
        let fired_before = self.events_fired();
        let threads = threads.clamp(1, self.shards.len());
        if threads == 1 {
            self.run_inline();
        } else {
            self.run_parallel(threads);
        }
        self.events_fired() - fired_before
    }

    /// Sequential driver: same window/merge schedule as the parallel path,
    /// executed on the calling thread.
    fn run_inline(&mut self) {
        while let Some(min_at) = min_pending(&self.shards) {
            let (end, inclusive) = window_end(min_at, self.horizon);
            for cell in &self.shards {
                cell.lock()
                    .expect("shard lock poisoned")
                    .run_window(end, inclusive);
            }
            self.steps += 1;
            self.cross_shard += merge_mailboxes(&self.shards, end);
        }
    }

    /// Parallel driver: a worker pool advances shards between two barriers
    /// per macro step; the coordinator picks windows and merges mailboxes
    /// while the workers are parked.
    fn run_parallel(&mut self, threads: usize) {
        let shards = &self.shards;
        let n = shards.len();
        let barrier = Barrier::new(threads + 1);
        // Window end in microseconds for the step the workers are about to
        // run; u64::MAX doubles as the "inclusive final window" marker.
        let end_us = AtomicU64::new(0);
        let quit = AtomicBool::new(false);
        let mut steps = 0u64;
        let mut cross = 0u64;
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let barrier = &barrier;
                let end_us = &end_us;
                let quit = &quit;
                scope.spawn(move || loop {
                    barrier.wait();
                    if quit.load(Ordering::Acquire) {
                        break;
                    }
                    let e = end_us.load(Ordering::Acquire);
                    let end = SimTime::from_micros(e);
                    let inclusive = e == u64::MAX;
                    // Strided shard ownership: shard i belongs to worker
                    // i % threads for this step. Disjoint, so the locks
                    // never contend.
                    let mut i = worker;
                    while i < n {
                        shards[i]
                            .lock()
                            .expect("shard lock poisoned")
                            .run_window(end, inclusive);
                        i += threads;
                    }
                    barrier.wait();
                });
            }
            // Coordinator. Workers are always parked at a barrier while this
            // code touches the shards.
            while let Some(min_at) = min_pending(shards) {
                let (end, _inclusive) = window_end(min_at, self.horizon);
                end_us.store(end.as_micros(), Ordering::Release);
                barrier.wait(); // release workers into the window
                barrier.wait(); // wait for the window to finish
                steps += 1;
                cross += merge_mailboxes(shards, end);
            }
            quit.store(true, Ordering::Release);
            barrier.wait(); // release workers into the quit check
        });
        self.steps += steps;
        self.cross_shard += cross;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that logs every event it sees (time, payload, an RNG draw)
    /// and forwards hops around the shard ring.
    struct Hopper {
        log: Vec<(u64, u64, u64)>,
    }

    #[derive(Clone)]
    enum Ev {
        Hop {
            hops_left: u32,
            payload: u64,
            delay: SimDuration,
        },
        Local {
            payload: u64,
        },
    }

    impl ShardWorld for Hopper {
        type Event = Ev;

        fn handle(&mut self, event: Ev, ctx: &mut ShardContext<Ev>) {
            match event {
                Ev::Hop {
                    hops_left,
                    payload,
                    delay,
                } => {
                    let draw = ctx.rng().next_u64();
                    self.log.push((ctx.now().as_micros(), payload, draw));
                    if hops_left > 0 {
                        let dst = (ctx.shard() + 1) % ctx.n_shards();
                        ctx.send(
                            dst,
                            ctx.now() + delay,
                            Ev::Hop {
                                hops_left: hops_left - 1,
                                payload: payload + 1,
                                delay,
                            },
                        );
                    }
                }
                Ev::Local { payload } => {
                    let draw = ctx.rng().next_u64();
                    self.log.push((ctx.now().as_micros(), payload, draw));
                }
            }
        }
    }

    /// Per-shard log of `(micros, payload, rng draw)` entries.
    type RingLog = Vec<(u64, u64, u64)>;

    /// Build, seed, and run a ring sim; return (per-shard logs, fired,
    /// steps, cross-shard count).
    fn run_ring(n_shards: usize, threads: usize) -> (Vec<RingLog>, u64, u64, u64) {
        let worlds = (0..n_shards).map(|_| Hopper { log: Vec::new() }).collect();
        let mut sim = ShardedSim::new(worlds, SimDuration::from_millis(10), 42);
        // Several interleaved rings starting on different shards at
        // different times, plus local-only noise events.
        for s in 0..n_shards {
            sim.schedule(
                s,
                SimTime::from_millis(1 + s as u64),
                Ev::Hop {
                    hops_left: 23,
                    payload: (s as u64) << 32,
                    delay: SimDuration::from_millis(10),
                },
            );
            for k in 0..5u64 {
                sim.schedule(s, SimTime::from_millis(3 + 7 * k), Ev::Local { payload: k });
            }
        }
        let fired = sim.run_until_idle(threads);
        let steps = sim.steps();
        let cross = sim.cross_shard_events();
        let logs = sim.into_worlds().into_iter().map(|w| w.log).collect();
        (logs, fired, steps, cross)
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let baseline = run_ring(5, 1);
        for threads in [2, 3, 4, 8] {
            let run = run_ring(5, threads);
            assert_eq!(run, baseline, "threads={threads} diverged from threads=1");
        }
        // The rings really did cross shards.
        assert!(baseline.3 > 0, "expected cross-shard traffic");
        // 5 rings x 24 hop events + 5 shards x 5 local events.
        assert_eq!(baseline.1, 5 * 24 + 25);
    }

    #[test]
    fn rng_streams_are_per_shard_and_deterministic() {
        // Two shards never exchanging events: each draws from its own
        // stream; the logs must match a hand-forked pair of RNGs.
        struct Drawer {
            draws: Vec<u64>,
        }
        impl ShardWorld for Drawer {
            type Event = ();
            fn handle(&mut self, (): (), ctx: &mut ShardContext<()>) {
                self.draws.push(ctx.rng().next_u64());
            }
        }
        let worlds = vec![Drawer { draws: Vec::new() }, Drawer { draws: Vec::new() }];
        let mut sim = ShardedSim::new(worlds, SimDuration::from_millis(1), 7);
        for s in 0..2 {
            for k in 0..4u64 {
                sim.schedule(s, SimTime::from_millis(k), ());
            }
        }
        sim.run_until_idle(2);
        let worlds = sim.into_worlds();

        let mut master = SimRng::seed_from_u64(7);
        let mut r0 = master.fork();
        let mut r1 = master.fork();
        let want0: Vec<u64> = (0..4).map(|_| r0.next_u64()).collect();
        let want1: Vec<u64> = (0..4).map(|_| r1.next_u64()).collect();
        assert_eq!(worlds[0].draws, want0);
        assert_eq!(worlds[1].draws, want1);
    }

    #[test]
    fn cross_shard_delivery_clamps_to_next_window() {
        // Horizon 10ms. A send at t=2ms targeting t=3ms on another shard
        // must be clamped to the window boundary at 10ms; a send targeting
        // t=14ms (beyond the boundary) must keep its time.
        struct Probe {
            seen: Vec<u64>,
        }
        #[derive(Clone)]
        enum P {
            Emit,
            Mark,
        }
        impl ShardWorld for Probe {
            type Event = P;
            fn handle(&mut self, event: P, ctx: &mut ShardContext<P>) {
                match event {
                    P::Emit => {
                        ctx.send(1, SimTime::from_millis(3), P::Mark);
                        ctx.send(1, SimTime::from_millis(14), P::Mark);
                    }
                    P::Mark => self.seen.push(ctx.now().as_millis()),
                }
            }
        }
        let worlds = vec![Probe { seen: Vec::new() }, Probe { seen: Vec::new() }];
        let mut sim = ShardedSim::new(worlds, SimDuration::from_millis(10), 1);
        sim.schedule(0, SimTime::from_millis(2), P::Emit);
        sim.run_until_idle(1);
        let worlds = sim.into_worlds();
        assert_eq!(worlds[1].seen, vec![10, 14]);
    }

    #[test]
    fn local_sends_are_not_clamped() {
        struct Probe {
            seen: Vec<u64>,
        }
        #[derive(Clone)]
        enum P {
            Emit,
            Mark,
        }
        impl ShardWorld for Probe {
            type Event = P;
            fn handle(&mut self, event: P, ctx: &mut ShardContext<P>) {
                match event {
                    P::Emit => ctx.send(0, SimTime::from_millis(3), P::Mark),
                    P::Mark => self.seen.push(ctx.now().as_millis()),
                }
            }
        }
        let mut sim = ShardedSim::new(
            vec![Probe { seen: Vec::new() }],
            SimDuration::from_millis(10),
            1,
        );
        sim.schedule(0, SimTime::from_millis(2), P::Emit);
        sim.run_until_idle(1);
        assert_eq!(sim.into_worlds()[0].seen, vec![3]);
    }

    #[test]
    fn empty_windows_fast_forward() {
        // Two events 10 seconds apart with a 1ms horizon: the engine must
        // jump between occupied windows, not grind through 10k empty ones.
        struct Null;
        impl ShardWorld for Null {
            type Event = ();
            fn handle(&mut self, (): (), _ctx: &mut ShardContext<()>) {}
        }
        let mut sim = ShardedSim::new(vec![Null], SimDuration::from_millis(1), 1);
        sim.schedule(0, SimTime::from_secs(1), ());
        sim.schedule(0, SimTime::from_secs(11), ());
        sim.run_until_idle(1);
        assert_eq!(sim.events_fired(), 2);
        assert_eq!(sim.steps(), 2, "one macro step per occupied window");
    }

    #[test]
    fn merge_order_breaks_time_ties_by_source_shard() {
        // Shards 1 and 2 both send to shard 0 at the same target time in the
        // same window. The merge order is (time, src, seq), so shard 1's
        // event must fire first regardless of processing interleave.
        struct Recv {
            order: Vec<u64>,
        }
        #[derive(Clone)]
        enum M {
            Emit(u64),
            Tag(u64),
        }
        impl ShardWorld for Recv {
            type Event = M;
            fn handle(&mut self, event: M, ctx: &mut ShardContext<M>) {
                match event {
                    M::Emit(tag) => ctx.send(0, SimTime::from_millis(50), M::Tag(tag)),
                    M::Tag(tag) => self.order.push(tag),
                }
            }
        }
        for threads in [1, 3] {
            let worlds = vec![
                Recv { order: Vec::new() },
                Recv { order: Vec::new() },
                Recv { order: Vec::new() },
            ];
            let mut sim = ShardedSim::new(worlds, SimDuration::from_millis(100), 9);
            // Schedule the *higher* shard's emit earlier in real processing
            // order to prove merge order is not arrival order.
            sim.schedule(2, SimTime::from_millis(1), M::Emit(2));
            sim.schedule(1, SimTime::from_millis(2), M::Emit(1));
            sim.run_until_idle(threads);
            let worlds = sim.into_worlds();
            assert_eq!(worlds[0].order, vec![1, 2], "threads={threads}");
        }
    }
}
