//! A bounded FIFO queue with drop accounting.
//!
//! Both the network links (drop-tail packet queues) and the Kafka producer
//! (record accumulator) are bounded queues whose overflow behaviour matters
//! to the reliability metrics, so the drop counter is first-class here.

use std::collections::VecDeque;

/// A first-in-first-out queue with a fixed capacity.
///
/// Pushing into a full queue rejects the element and increments the drop
/// counter, mimicking a drop-tail router queue.
///
/// # Example
///
/// ```
/// use desim::BoundedQueue;
/// let mut q = BoundedQueue::new(2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert_eq!(q.push(3), Err(3)); // full: element handed back
/// assert_eq!(q.dropped(), 1);
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    dropped: u64,
    pushed: u64,
    high_watermark: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            pushed: 0,
            high_watermark: 0,
        }
    }

    /// Appends an element, or returns it back if the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity; the drop counter
    /// is incremented.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.pushed += 1;
        self.high_watermark = self.high_watermark.max(self.items.len());
        Ok(())
    }

    /// Removes and returns the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// A reference to the oldest element without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current number of queued elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no elements are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when the queue is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements rejected because the queue was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Elements accepted over the queue's lifetime.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The maximum occupancy ever observed.
    #[must_use]
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Removes all elements, keeping counters.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates over queued elements from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Drains elements from the front while `keep_draining` returns `true`.
    ///
    /// Returns the drained elements in FIFO order.
    pub fn drain_while<F>(&mut self, mut keep_draining: F) -> Vec<T>
    where
        F: FnMut(&T) -> bool,
    {
        let mut out = Vec::new();
        while let Some(front) = self.items.front() {
            if keep_draining(front) {
                out.push(self.items.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_counts_drops_and_returns_item() {
        let mut q = BoundedQueue::new(1);
        q.push("a").unwrap();
        assert_eq!(q.push("b"), Err("b"));
        assert_eq!(q.push("c"), Err("c"));
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.pushed(), 1);
    }

    #[test]
    fn watermark_tracks_peak() {
        let mut q = BoundedQueue::new(10);
        for i in 0..7 {
            q.push(i).unwrap();
        }
        for _ in 0..7 {
            q.pop();
        }
        assert_eq!(q.high_watermark(), 7);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_while_stops_at_predicate() {
        let mut q = BoundedQueue::new(10);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let drained = q.drain_while(|&x| x < 3);
        assert_eq!(drained, vec![0, 1, 2]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek(), Some(&3));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let _ = q.push(3);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.pushed(), 2);
    }
}
