//! Deterministic pseudo-randomness for simulations.
//!
//! [`SimRng`] is a xoshiro256\*\* generator seeded through SplitMix64, the
//! standard construction recommended by the xoshiro authors. It is *not*
//! cryptographically secure — it exists to make simulation runs fast and
//! exactly reproducible from a single `u64` seed.
//!
//! The module also provides the distributions the reproduction needs:
//! uniform, Bernoulli, exponential, normal (Box–Muller), and the
//! **Pareto** distribution the paper uses to model end-to-end network delay
//! (Zhang & He, ICIMP 2007).

use core::fmt;

/// A seeded xoshiro256\*\* pseudo-random number generator.
///
/// # Example
///
/// ```
/// use desim::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // identical streams
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hide the raw state: it is an implementation detail.
        f.debug_struct("SimRng").finish_non_exhaustive()
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators built from the same seed produce identical streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// Derives an independent child generator.
    ///
    /// Useful for giving each simulated component its own stream so that
    /// adding randomness to one component does not perturb another.
    #[must_use]
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is non-finite.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        assert!(low <= high, "low must not exceed high");
        low + (high - low) * self.next_f64()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased for every `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "n must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Rejection zone: retry to remove modulo bias.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in `[low, high]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn range_inclusive(&mut self, low: u64, high: u64) -> u64 {
        assert!(low <= high, "low must not exceed high");
        let span = high - low;
        if span == u64::MAX {
            return self.next_u64();
        }
        low + self.next_below(span + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// An exponentially distributed value with the given rate (`1/mean`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // Inverse CDF; next_f64 < 1 so the log argument is > 0.
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// A standard-normal value via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u in (0,1] to keep ln finite.
        let u = 1.0 - self.next_f64();
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (core::f64::consts::TAU * v).cos()
    }

    /// A normal value with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// A Pareto-distributed value with scale `x_m > 0` and shape `alpha > 0`.
    ///
    /// The Pareto distribution is heavy-tailed; the paper uses it to model
    /// end-to-end network delay. Its CDF is `1 - (x_m/x)^alpha` for
    /// `x >= x_m`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are strictly positive.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(scale > 0.0, "scale must be positive");
        assert!(shape > 0.0, "shape must be positive");
        // Inverse CDF with u in (0,1].
        let u = 1.0 - self.next_f64();
        scale / u.powf(1.0 / shape)
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ almost everywhere");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[rng.next_below(10) as usize] += 1;
        }
        for &count in &buckets {
            let frac = count as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = SimRng::seed_from_u64(6);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut rng = SimRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.19)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.19).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from_u64(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "observed mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn pareto_respects_scale_and_median() {
        let mut rng = SimRng::seed_from_u64(10);
        let scale = 20.0;
        let shape = 3.0;
        let n = 100_000usize;
        let mut below_median = 0usize;
        // Median of Pareto(x_m, a) is x_m * 2^(1/a).
        let median = scale * 2f64.powf(1.0 / shape);
        for _ in 0..n {
            let x = rng.pareto(scale, shape);
            assert!(x >= scale);
            if x < median {
                below_median += 1;
            }
        }
        let frac = below_median as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "median fraction {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = SimRng::seed_from_u64(12);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[9]), Some(&9));
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::seed_from_u64(13);
        let mut child = parent.fork();
        let overlap = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(overlap < 4);
    }
}
