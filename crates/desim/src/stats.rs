//! Streaming statistics: counters, running moments, histograms, and
//! time-weighted averages.
//!
//! All accumulators are O(1) in memory so that million-message experiments
//! (the paper sends 10⁶ messages per data point) stay cheap.

use crate::time::{SimDuration, SimTime};

/// Welford's online algorithm for mean and variance.
///
/// # Example
///
/// ```
/// use desim::stats::RunningMoments;
/// let mut m = RunningMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.record(x);
/// }
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningMoments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (dividing by n), or 0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (dividing by n−1), or 0 with fewer than two samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bucket histogram over `[low, high)` with overflow/underflow bins.
///
/// # Example
///
/// ```
/// use desim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.record(3.5);
/// h.record(3.9);
/// h.record(42.0);
/// assert_eq!(h.bucket_count(3), 2);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `buckets` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `buckets == 0`.
    #[must_use]
    pub fn new(low: f64, high: f64, buckets: usize) -> Self {
        assert!(low < high, "low must be below high");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            low,
            high,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Adds a sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let frac = (x - self.low) / (self.high - self.low);
            let idx = ((frac * self.buckets.len() as f64) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Count in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of buckets.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Samples below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (`q` in `[0,1]`) by linear scan of buckets.
    ///
    /// Returns `None` when empty. Underflow samples count as `low`,
    /// overflow samples as `high`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.low);
        }
        let width = (self.high - self.low) / self.buckets.len() as f64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(self.low + width * (i as f64 + 1.0));
            }
        }
        Some(self.high)
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue length).
///
/// # Example
///
/// ```
/// use desim::stats::TimeWeighted;
/// use desim::SimTime;
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.set(SimTime::from_secs(1), 10.0); // value was 0 for 1s
/// tw.set(SimTime::from_secs(3), 0.0);  // value was 10 for 2s
/// assert!((tw.average(SimTime::from_secs(4)) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    origin: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with the signal at `initial`.
    #[must_use]
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
            origin: start,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let span = now.saturating_since(self.last_change);
        self.weighted_sum += self.current * span.as_secs_f64();
        self.current = value;
        self.last_change = now;
    }

    /// The signal's current value.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The average of the signal from the start to `now`.
    ///
    /// Returns the current value when no time has elapsed.
    #[must_use]
    pub fn average(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.origin).as_secs_f64();
        if elapsed <= 0.0 {
            return self.current;
        }
        let tail = now.saturating_since(self.last_change).as_secs_f64();
        (self.weighted_sum + self.current * tail) / elapsed
    }
}

/// Simple ratio counter: successes out of attempts.
///
/// Used pervasively for the paper's POFOD-style metrics (`P_l`, `P_d`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio.
    #[must_use]
    pub fn new() -> Self {
        Ratio::default()
    }

    /// Records one trial; `hit` marks it as counting toward the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `hits / total`, or 0 when no trials were recorded.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// Converts a duration sample into seconds and records it.
///
/// Convenience so call sites don't repeat the unit conversion.
pub fn record_duration(moments: &mut RunningMoments, d: SimDuration) {
    moments.record(d.as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_closed_form() {
        let mut m = RunningMoments::new();
        for x in 1..=100 {
            m.record(x as f64);
        }
        assert_eq!(m.count(), 100);
        assert!((m.mean() - 50.5).abs() < 1e-9);
        // Variance of 1..=100 (population) = (n^2-1)/12 = 833.25
        assert!((m.population_variance() - 833.25).abs() < 1e-6);
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(100.0));
    }

    #[test]
    fn empty_moments_are_zero() {
        let m = RunningMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.min(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningMoments::new();
        for &x in &data {
            whole.record(x);
        }
        let mut left = RunningMoments::new();
        let mut right = RunningMoments::new();
        for &x in &data[..20] {
            left.record(x);
        }
        for &x in &data[20..] {
            right.record(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        for b in 0..10 {
            assert_eq!(h.bucket_count(b), 10);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 10.0);
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn histogram_overflow_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.5);
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.set(SimTime::from_secs(2), 6.0);
        // 2.0 for 2s, then 6.0 for 2s → average 4.0 at t=4s.
        assert!((tw.average(SimTime::from_secs(4)) - 4.0).abs() < 1e-12);
        assert_eq!(tw.current(), 6.0);
    }

    #[test]
    fn ratio_basis() {
        let mut r = Ratio::new();
        for i in 0..10 {
            r.record(i < 3);
        }
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 10);
        assert!((r.value() - 0.3).abs() < 1e-12);
        assert_eq!(Ratio::new().value(), 0.0);
    }
}
