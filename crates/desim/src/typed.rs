//! The typed-event engine: a zero-allocation alternative to [`crate::Simulation`].
//!
//! The closure engine boxes every event (`Box<dyn FnOnce>`), which puts one
//! heap allocation and one indirect call on the hot path of every scheduled
//! event. For simulations that fire millions of events, that cost dominates.
//!
//! [`EventSim`] removes it: the world declares a plain `enum` of its event
//! kinds ([`EventWorld::Event`]) and a single [`EventWorld::handle`] method
//! that dispatches on it. Events are stored *by value* inside the 4-ary
//! index-min queue, so scheduling is a couple of writes into a `Vec` and
//! firing is a match — no boxes, no virtual calls, no per-event allocation.
//!
//! There is deliberately **no cancellation**: models that need to retire a
//! stale timer guard it with an epoch or flag in the world (the timer fires,
//! notices its epoch is old, and returns). That keeps the queue free of
//! tombstone bookkeeping. Determinism contract is identical to the closure
//! engine: events at equal timestamps fire in insertion order.
//!
//! # Example
//!
//! ```
//! use desim::{EventContext, EventSim, EventWorld, SimDuration, SimTime};
//!
//! struct Counter { ticks: u32 }
//! enum Ev { Tick }
//!
//! impl EventWorld for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, event: Ev, ctx: &mut EventContext<Ev>) {
//!         match event {
//!             Ev::Tick => {
//!                 self.ticks += 1;
//!                 if self.ticks < 5 {
//!                     ctx.schedule_in(SimDuration::from_millis(10), Ev::Tick);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = EventSim::new(Counter { ticks: 0 });
//! sim.schedule_at(SimTime::ZERO, Ev::Tick);
//! sim.run_until_idle();
//! assert_eq!(sim.world().ticks, 5);
//! assert_eq!(sim.now(), SimTime::from_millis(40));
//! ```

use crate::minq::MinQueue;
use crate::time::{SimDuration, SimTime};

/// A world driven by typed events.
///
/// Implementors define an event enum and a dispatch method; the engine owns
/// the clock and the queue.
pub trait EventWorld: Sized {
    /// The event alphabet of this world — typically a plain `enum`.
    type Event;

    /// Fires one event. The clock has already advanced to the event's
    /// timestamp; follow-up events are scheduled through `ctx`.
    fn handle(&mut self, event: Self::Event, ctx: &mut EventContext<Self::Event>);
}

/// Scheduling handle passed to [`EventWorld::handle`].
///
/// Holds the clock and the pending-event queue; generic over the event type
/// only, so a world can hand it to helper functions without naming itself.
pub struct EventContext<E> {
    now: SimTime,
    next_seq: u64,
    queue: MinQueue<E>,
    fired: u64,
}

impl<E> core::fmt::Debug for EventContext<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventContext")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("fired", &self.fired)
            .finish()
    }
}

impl<E> EventContext<E> {
    fn new() -> Self {
        EventContext {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: MinQueue::new(),
            fired: 0,
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// Events scheduled in the past fire "now" (at the current clock value),
    /// after all events already queued for the current instant.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(at, seq, event);
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Number of events that have fired so far.
    #[must_use]
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Handlers that generate their own future work (e.g. a source polled
    /// on a self-scheduled cadence) can use this to *coalesce*: as long as
    /// the next self-generated instant is strictly earlier than every
    /// pending event, processing it inline is order-identical to scheduling
    /// it — the engine would have popped it next anyway.
    #[must_use]
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.queue.peek().map(|(at, _)| at)
    }
}

/// A discrete-event simulation over a typed-event world.
///
/// The counterpart of [`crate::Simulation`] for worlds that implement
/// [`EventWorld`]; scheduling and stepping never allocate per event.
pub struct EventSim<W: EventWorld> {
    world: W,
    ctx: EventContext<W::Event>,
}

impl<W: EventWorld + core::fmt::Debug> core::fmt::Debug for EventSim<W> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventSim")
            .field("world", &self.world)
            .field("ctx", &self.ctx)
            .finish()
    }
}

impl<W: EventWorld> EventSim<W> {
    /// Creates a simulation over `world` with the clock at zero.
    #[must_use]
    pub fn new(world: W) -> Self {
        EventSim {
            world,
            ctx: EventContext::new(),
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Shared access to the world.
    #[must_use]
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Exclusive access to both the world and the scheduling context —
    /// needed when setup code must schedule and mutate in one breath.
    pub fn world_and_ctx(&mut self) -> (&mut W, &mut EventContext<W::Event>) {
        (&mut self.world, &mut self.ctx)
    }

    /// Consumes the simulation, returning the world.
    #[must_use]
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event at an absolute instant. See [`EventContext::schedule_at`].
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        self.ctx.schedule_at(at, event);
    }

    /// Schedules an event after a delay. See [`EventContext::schedule_in`].
    pub fn schedule_in(&mut self, delay: SimDuration, event: W::Event) {
        self.ctx.schedule_in(delay, event);
    }

    /// Fires the next pending event, advancing the clock to its timestamp.
    ///
    /// Returns `false` when the queue is empty (the clock does not move).
    pub fn step(&mut self) -> bool {
        let Some((at, event)) = self.ctx.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.ctx.now, "time must be monotone");
        self.ctx.now = at;
        self.ctx.fired += 1;
        self.world.handle(event, &mut self.ctx);
        true
    }

    /// Runs until no events remain. Returns the number of events fired.
    pub fn run_until_idle(&mut self) -> u64 {
        let before = self.ctx.fired;
        while self.step() {}
        self.ctx.fired - before
    }

    /// Runs until the clock would pass `deadline` or the queue drains.
    ///
    /// Events stamped exactly at `deadline` still fire; the clock never
    /// exceeds `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.ctx.fired;
        while matches!(self.ctx.queue.peek(), Some((at, _)) if at <= deadline) {
            self.step();
        }
        if self.ctx.now < deadline {
            self.ctx.now = deadline;
        }
        self.ctx.fired - before
    }

    /// Fires up to `max_events` events while the clock has not passed
    /// `deadline`, returning how many fired.
    ///
    /// The deadline check mirrors the plain `while now() <= deadline {
    /// step() }` driver loop: it is applied *before* each step, so the
    /// last fired event may carry the clock past `deadline` (exactly as
    /// that loop allows). Calling `run_slice` repeatedly until it
    /// returns `0` is therefore event-for-event identical to the plain
    /// loop — the slicing only adds resumption points, which profilers
    /// and cooperative schedulers use to bound time inside one call.
    pub fn run_slice(&mut self, deadline: SimTime, max_events: u64) -> u64 {
        let mut fired = 0;
        while fired < max_events && self.ctx.now <= deadline {
            if !self.step() {
                break;
            }
            fired += 1;
        }
        fired
    }

    /// Total events fired since construction.
    #[must_use]
    pub fn events_fired(&self) -> u64 {
        self.ctx.events_fired()
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.ctx.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<u32>,
        epoch: u32,
    }

    enum Ev {
        Mark(u32),
        Guarded { epoch: u32, value: u32 },
        Chain,
    }

    impl EventWorld for Recorder {
        type Event = Ev;
        fn handle(&mut self, event: Ev, ctx: &mut EventContext<Ev>) {
            match event {
                Ev::Mark(v) => self.seen.push(v),
                Ev::Guarded { epoch, value } => {
                    if epoch == self.epoch {
                        self.seen.push(value);
                    }
                }
                Ev::Chain => {
                    self.seen.push(ctx.now().as_millis() as u32);
                    if self.seen.len() < 3 {
                        ctx.schedule_in(SimDuration::from_millis(10), Ev::Chain);
                    }
                }
            }
        }
    }

    fn sim() -> EventSim<Recorder> {
        EventSim::new(Recorder {
            seen: Vec::new(),
            epoch: 0,
        })
    }

    #[test]
    fn events_fire_in_time_order_then_fifo() {
        let mut s = sim();
        s.schedule_at(SimTime::from_millis(30), Ev::Mark(3));
        s.schedule_at(SimTime::from_millis(10), Ev::Mark(1));
        s.schedule_at(SimTime::from_millis(10), Ev::Mark(2));
        s.run_until_idle();
        assert_eq!(s.world().seen, vec![1, 2, 3]);
        assert_eq!(s.events_fired(), 3);
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut s = sim();
        s.schedule_at(SimTime::from_millis(5), Ev::Chain);
        s.run_until_idle();
        assert_eq!(s.world().seen, vec![5, 15, 25]);
        assert_eq!(s.now(), SimTime::from_millis(25));
    }

    #[test]
    fn epoch_guard_replaces_cancellation() {
        let mut s = sim();
        s.schedule_at(SimTime::from_millis(10), Ev::Guarded { epoch: 0, value: 7 });
        // Bump the epoch before the timer fires: the stale event is a no-op.
        s.world_mut().epoch = 1;
        s.run_until_idle();
        assert!(s.world().seen.is_empty());
    }

    #[test]
    fn run_until_semantics_match_closure_engine() {
        let mut s = sim();
        for ms in [5u64, 10, 15] {
            s.schedule_at(SimTime::from_millis(ms), Ev::Mark(ms as u32));
        }
        let fired = s.run_until(SimTime::from_millis(10));
        assert_eq!(fired, 2);
        assert_eq!(s.world().seen, vec![5, 10]);
        assert_eq!(s.now(), SimTime::from_millis(10));
        s.run_until(SimTime::from_millis(60));
        assert_eq!(s.now(), SimTime::from_millis(60));
        assert_eq!(s.world().seen, vec![5, 10, 15]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut s = sim();
        s.run_until(SimTime::from_millis(20));
        s.schedule_at(SimTime::from_millis(1), Ev::Chain);
        assert!(s.step());
        assert_eq!(s.world().seen, vec![20]);
    }

    #[test]
    fn step_returns_false_when_idle() {
        let mut s = sim();
        assert!(!s.step());
    }

    #[test]
    fn run_slice_matches_plain_step_loop() {
        let times = [5u64, 10, 15, 20, 40, 41];
        let deadline = SimTime::from_millis(20);

        // Reference: the plain driver loop.
        let mut reference = sim();
        for ms in times {
            reference.schedule_at(SimTime::from_millis(ms), Ev::Mark(ms as u32));
        }
        while reference.now() <= deadline {
            if !reference.step() {
                break;
            }
        }

        // Sliced: repeated run_slice with a tiny budget.
        let mut sliced = sim();
        for ms in times {
            sliced.schedule_at(SimTime::from_millis(ms), Ev::Mark(ms as u32));
        }
        let mut total = 0;
        loop {
            let fired = sliced.run_slice(deadline, 2);
            if fired == 0 {
                break;
            }
            total += fired;
        }

        assert_eq!(sliced.world().seen, reference.world().seen);
        assert_eq!(sliced.now(), reference.now());
        assert_eq!(total, reference.events_fired());
        // The deadline check happens before each step, so the first event
        // past the deadline fires (clock at 40), exactly like the loop.
        assert_eq!(sliced.world().seen, vec![5, 10, 15, 20, 40]);
    }
}
