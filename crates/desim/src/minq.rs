//! The index-min event queue shared by both engines.
//!
//! A 4-ary min-heap keyed by `(timestamp, sequence)`. Sequence numbers are
//! unique and monotone, so keys are totally ordered and equal-time events
//! pop in insertion order — the determinism contract of the engines.
//!
//! A 4-ary layout halves the tree depth of a binary heap and keeps parent
//! and children within one or two cache lines, which matters because the
//! simulation hot loop is push/pop bound.
//!
//! The heap itself stores only fixed-size keys; payloads live in a slot
//! arena indexed by the key ([`MinQueue`] is struct-of-arrays). Sifting an
//! entry up or down therefore moves 24 bytes regardless of the payload
//! type — event enums carrying batch payloads would otherwise be memcpy'd
//! at every level of every sift.
//!
//! The queue is public so other layers with the same access pattern (e.g.
//! `netsim`'s per-channel segment/timer queue) can share it instead of
//! `std`'s binary heap.

use crate::time::SimTime;

#[derive(Clone, Copy)]
struct Key {
    at: SimTime,
    seq: u64,
    slot: u32,
}

/// A 4-ary min-heap of `(SimTime, u64)`-keyed payloads.
pub struct MinQueue<T> {
    keys: Vec<Key>,
    /// Slot arena: `keys[i].slot` indexes the payload. Freed slots are
    /// recycled through `free`, so steady-state push/pop never reallocates.
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for MinQueue<T> {
    fn default() -> Self {
        MinQueue::new()
    }
}

impl<T> MinQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        MinQueue {
            keys: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of queued entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no entries are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn key(&self, i: usize) -> (SimTime, u64) {
        let k = &self.keys[i];
        (k.at, k.seq)
    }

    /// Pushes an entry. `seq` must be unique across live entries.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize] = Some(item);
        self.keys.push(Key { at, seq, slot });
        self.sift_up(self.keys.len() - 1);
    }

    /// The minimum key and a reference to its payload, if any.
    #[must_use]
    pub fn peek(&self) -> Option<(SimTime, &T)> {
        self.keys.first().map(|k| {
            (
                k.at,
                self.slots[k.slot as usize].as_ref().expect("live slot"),
            )
        })
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.keys.is_empty() {
            return None;
        }
        let last = self.keys.len() - 1;
        self.keys.swap(0, last);
        let k = self.keys.pop().expect("non-empty");
        if !self.keys.is_empty() {
            self.sift_down(0);
        }
        let item = self.slots[k.slot as usize].take().expect("live slot");
        self.free.push(k.slot);
        Some((k.at, item))
    }

    /// Empties the queue, yielding the payloads in unspecified (but
    /// deterministic) order. For callers that need to flush every pending
    /// entry without caring about key order.
    pub fn drain_unordered(&mut self) -> impl Iterator<Item = T> + '_ {
        self.keys.clear();
        self.free.clear();
        self.slots.drain(..).flatten()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.key(i) < self.key(parent) {
                self.keys.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.keys.len();
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let mut min = first;
            let end = (first + 4).min(n);
            for c in first + 1..end {
                if self.key(c) < self.key(min) {
                    min = c;
                }
            }
            if self.key(min) < self.key(i) {
                self.keys.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut q = MinQueue::new();
        q.push(SimTime::from_millis(30), 0, 'c');
        q.push(SimTime::from_millis(10), 1, 'a');
        q.push(SimTime::from_millis(20), 2, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_pop_in_sequence_order() {
        let mut q = MinQueue::new();
        for seq in 0..100u64 {
            q.push(SimTime::from_millis(5), seq, seq);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = MinQueue::new();
        let mut seq = 0u64;
        let mut push = |q: &mut MinQueue<u64>, ms: u64| {
            q.push(SimTime::from_millis(ms), seq, ms);
            seq += 1;
        };
        for ms in [50u64, 10, 40, 20, 30] {
            push(&mut q, ms);
        }
        assert_eq!(q.pop().map(|(_, v)| v), Some(10));
        for ms in [5u64, 25, 45] {
            push(&mut q, ms);
        }
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(rest, vec![5, 20, 25, 30, 40, 45, 50]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = MinQueue::new();
        q.push(SimTime::from_millis(7), 0, "x");
        q.push(SimTime::from_millis(3), 1, "y");
        assert_eq!(q.peek(), Some((SimTime::from_millis(3), &"y")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(3), "y")));
    }

    #[test]
    fn drain_unordered_empties_the_queue() {
        let mut q = MinQueue::new();
        for seq in 0..10u64 {
            q.push(SimTime::from_millis(10 - seq), seq, seq);
        }
        let mut drained: Vec<u64> = q.drain_unordered().collect();
        drained.sort_unstable();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn slots_are_recycled_across_push_pop_cycles() {
        let mut q = MinQueue::new();
        let mut seq = 0u64;
        // Steady-state churn: the live population never exceeds 4, so the
        // slot arena must not grow past it.
        for round in 0..100u64 {
            for i in 0..4u64 {
                q.push(SimTime::from_millis(round * 10 + i), seq, seq);
                seq += 1;
            }
            for _ in 0..4 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        assert!(q.slots.len() <= 4, "slot arena grew to {}", q.slots.len());
    }
}
