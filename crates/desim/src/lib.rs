//! `desim` — a small, deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the Kafka-reliability reproduction: every
//! higher layer (the network substrate, the simulated Kafka cluster, the
//! experiment testbed) runs on top of the scheduler, clock, and random-number
//! facilities defined here.
//!
//! # Design
//!
//! * **Virtual time** is a [`SimTime`] measured in integer microseconds, so
//!   event ordering is exact and runs are bit-for-bit reproducible.
//! * **Events** are boxed closures scheduled on a [`Simulation`]; ties are
//!   broken by insertion order (FIFO among simultaneous events), which keeps
//!   causality deterministic.
//! * **Randomness** comes from [`rng::SimRng`], a seeded xoshiro256\*\*
//!   generator with the distribution set the paper needs (uniform,
//!   exponential, **Pareto** for network delay, normal, Bernoulli).
//! * **Statistics** helpers ([`stats`]) accumulate counters, running moments
//!   and time-weighted averages without storing sample vectors.
//!
//! # Example
//!
//! ```
//! use desim::{Simulation, SimDuration};
//!
//! // A world holding a single counter; two chained events increment it.
//! let mut sim = Simulation::new(0u32);
//! sim.schedule_in(SimDuration::from_millis(5), |world: &mut u32, ctx| {
//!     *world += 1;
//!     ctx.schedule_in(SimDuration::from_millis(5), |world: &mut u32, _| {
//!         *world += 1;
//!     });
//! });
//! sim.run_until_idle();
//! assert_eq!(*sim.world(), 2);
//! assert_eq!(sim.now().as_millis(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fasthash;
pub mod minq;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod typed;

pub use engine::{Context, EventId, Simulation};
pub use fasthash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use queue::BoundedQueue;
pub use rng::SimRng;
pub use shard::{ShardContext, ShardWorld, ShardedSim};
pub use time::{SimDuration, SimTime};
pub use typed::{EventContext, EventSim, EventWorld};
